"""Ablation: the bypass threshold tau_0 (Section 5.5 methodology).

The paper sets the bypass threshold first, by exhaustive search, before
randomizing the placement thresholds.  This bench sweeps tau_0 around
the tuned default and reports single-thread MPKI plus the bypass rate,
exposing the tradeoff the ROC analysis of Figure 8(b) describes: too
aggressive bypassing inflates misses, too timid bypassing wastes the
optimization.
"""

from __future__ import annotations

from _shared import header, single_thread_runner, single_thread_suite
from repro import single_thread_config
from repro.core.mpppb import MPPPBPolicy
from repro.util.stats import arithmetic_mean

TAU0_VALUES = (30, 60, 90, 150, 255)
EVAL_BENCHMARKS = ("soplex", "sphinx3", "mcf", "dealII", "lbm", "gamess")


def run_experiment():
    suite = single_thread_suite()
    runner = single_thread_runner()
    segments = [s for name in EVAL_BENCHMARKS for s in suite[name]]
    sweep = {}
    for tau0 in TAU0_VALUES:
        # Keep the placement cascade feasible under the low tau_0
        # settings (tau_0 >= tau_1 > tau_2 > tau_3 is enforced).
        taus = (min(50, int(tau0 * 0.6)), min(20, int(tau0 * 0.25)), -20)
        config = single_thread_config("a", tau_bypass=tau0, taus=taus)
        factory = lambda ns, w: MPPPBPolicy(ns, w, config)
        results = [runner.run_segment(s, factory) for s in segments]
        mpki = arithmetic_mean([r.mpki for r in results])
        bypass_rate = sum(r.llc_bypasses for r in results) / max(
            1, sum(r.llc_misses for r in results)
        )
        sweep[tau0] = (mpki, bypass_rate)
    return sweep


def print_results(sweep) -> None:
    header(
        "Ablation - bypass threshold tau_0",
        "Tuned default tau_0 = 90; bypass rate is bypasses per miss.",
    )
    for tau0, (mpki, rate) in sweep.items():
        print(f"  tau_0={tau0:4d}: {mpki:7.3f} MPKI, bypass rate {rate:.3f}")


def test_ablation_thresholds(benchmark, capsys):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(sweep)

    rates = [rate for _, rate in sweep.values()]
    # Shape: lowering tau_0 monotonically increases the bypass rate.
    assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))
    # The tuned default is no worse than the extremes.
    default_mpki = sweep[90][0]
    assert default_mpki <= sweep[255][0] + 0.5
    assert default_mpki <= sweep[30][0] + 0.5
