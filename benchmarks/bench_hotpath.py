"""Hot-path timing harness: stages in isolation, compare end-to-end.

Unlike the ``bench_fig*`` files (which reproduce paper figures), this
bench measures the *simulator itself*: trace synthesis, Stage-1
filtering, the per-policy Stage-2 replay under both feature pipelines
(``fused`` vs ``legacy``), and a 3-policy compare against cold and
warm artifact caches.  It writes ``BENCH_hotpath.json``, which the CI
perf-smoke job uploads and gates on.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [tiny|small|paper]

or through the CLI (same engine, more knobs)::

    PYTHONPATH=src python -m repro.cli perf --scale tiny --check
"""

from __future__ import annotations

import sys

from repro.perf import (
    DEFAULT_POLICIES,
    build_report,
    check_report,
    format_report,
    write_report,
)


def run_experiment(scale_name: str = ""):
    return build_report(scale_name=scale_name, policies=DEFAULT_POLICIES)


def print_results(report) -> None:
    print()
    print("=" * 78)
    print("Hot-path timings (simulator performance, not paper metrics)")
    print("=" * 78)
    print(format_report(report))


def test_hotpath(capsys):
    report = run_experiment()
    write_report(report)
    with capsys.disabled():
        print_results(report)
    assert check_report(report) == []
    assert report["compare"]["speedup"] >= 1.0


def main(argv) -> int:
    report = run_experiment(argv[0] if argv else "")
    path = write_report(report)
    print_results(report)
    print(f"wrote {path}")
    failures = check_report(report)
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
