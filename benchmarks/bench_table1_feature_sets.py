"""Table 1: the two cross-validated single-thread feature sets
(Section 5.2).

Prints both published sets verbatim and evaluates each on the
single-thread suite (average MPKI), confirming that both halves of the
cross-validation deliver comparable quality — the paper found the
same initial random set won on both workload halves before
hill-climbing diverged them.
"""

from __future__ import annotations

from _shared import SCALE, header, single_thread_runner, single_thread_suite
from repro import single_thread_config
from repro.core.mpppb import MPPPBPolicy
from repro.core.presets import TABLE_1A_SPECS, TABLE_1B_SPECS
from repro.policies import policy_factory
from repro.util.stats import arithmetic_mean

EVAL_BENCHMARKS = ("soplex", "sphinx3", "mcf", "dealII", "wrf", "lbm",
                   "gamess", "omnetpp")


def run_experiment():
    suite = single_thread_suite()
    runner = single_thread_runner()
    segments = [s for name in EVAL_BENCHMARKS for s in suite[name]]

    def avg_mpki(factory):
        return arithmetic_mean(
            [runner.run_segment(s, factory).mpki for s in segments]
        )

    config_a = single_thread_config("a")
    config_b = single_thread_config("b")
    return {
        "lru": avg_mpki(policy_factory("lru")),
        "table_1a": avg_mpki(lambda ns, w: MPPPBPolicy(ns, w, config_a)),
        "table_1b": avg_mpki(lambda ns, w: MPPPBPolicy(ns, w, config_b)),
    }


def print_results(mpkis) -> None:
    header(
        "Table 1 - Single-thread feature sets (cross-validated)",
        f"Evaluated on {len(EVAL_BENCHMARKS)} benchmarks at scale "
        f"{SCALE.name}.",
    )
    print(f"{'set (a)':28s}   {'set (b)':28s}")
    for spec_a, spec_b in zip(TABLE_1A_SPECS, TABLE_1B_SPECS):
        print(f"{spec_a:28s}   {spec_b:28s}")
    print("-" * 60)
    print(f"LRU reference : {mpkis['lru']:.3f} MPKI")
    print(f"Table 1(a)    : {mpkis['table_1a']:.3f} MPKI")
    print(f"Table 1(b)    : {mpkis['table_1b']:.3f} MPKI")


def test_table1_feature_sets(benchmark, capsys):
    mpkis = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(mpkis)

    # Both published sets beat LRU and land within 15% of each other.
    assert mpkis["table_1a"] < mpkis["lru"]
    assert mpkis["table_1b"] < mpkis["lru"]
    ratio = mpkis["table_1a"] / mpkis["table_1b"]
    assert 0.85 < ratio < 1.18
