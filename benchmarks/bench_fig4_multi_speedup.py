"""Figure 4: normalized weighted speedup over LRU for 4-core
multi-programmed workloads (Section 6.1.1).

Paper numbers (900 test mixes, 8 MB shared LLC): geometric-mean
weighted speedup of 8.3% for MPPPB (over SRRIP), 5.8% for Perceptron,
5.2% for Hawkeye; Hawkeye dips below LRU on only 18 workloads versus
201 (Perceptron) and 115 (MPPPB) — it trades peak speedup for
stability.  We reproduce the S-curves at reduced mix count.
"""

from __future__ import annotations

from _shared import (MULTI_TEST_MIXES, header, multi_mixes,
                     multi_results, print_s_curve)
from repro import geometric_mean
from repro.sim.multi import normalized_weighted_speedups

POLICIES = ("lru", "hawkeye", "perceptron", "mpppb-mp")
PAPER_GEOMEANS = {"hawkeye": 1.052, "perceptron": 1.058, "mpppb-mp": 1.083}


def run_experiment():
    results = {policy: multi_results(policy) for policy in POLICIES}
    return normalized_weighted_speedups(results, baseline="lru")


def print_results(normalized) -> None:
    train, test = multi_mixes()
    header(
        "Figure 4 - Normalized weighted speedup, 4-core mixes",
        f"{min(len(test), MULTI_TEST_MIXES)} test mixes (paper: 900); paper geomeans: "
        "Hawkeye 1.052, Perceptron 1.058, MPPPB 1.083.",
    )
    print("S-curves (sampled quantiles, ascending):")
    for policy in POLICIES[1:]:
        print_s_curve(policy, normalized[policy])
    print("-" * 64)
    for policy in POLICIES[1:]:
        values = normalized[policy]
        below = sum(1 for v in values if v < 1.0)
        print(f"{policy:12s} geomean={geometric_mean(values):.4f} "
              f"(paper {PAPER_GEOMEANS[policy]:.3f}); "
              f"below LRU on {below}/{len(values)} mixes")


def test_fig4_multi_speedup(benchmark, capsys):
    normalized = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(normalized)

    geomeans = {p: geometric_mean(normalized[p]) for p in POLICIES[1:]}
    # Shape: MPPPB leads the realistic policies and everything beats LRU.
    assert geomeans["mpppb-mp"] >= geomeans["hawkeye"] - 0.002
    assert geomeans["mpppb-mp"] > 1.0
