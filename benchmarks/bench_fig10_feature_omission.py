"""Figure 10: performance impact of removing each feature (Section 6.4).

The paper removes each of the 16 Table 1(a) features in turn and
re-measures multi-programmed weighted speedup.  Headline findings:
offset(15,1,6,1) is the most valuable feature (speedup drops from
8.0% to 7.6% without it), two pc features and the global bias counter
are similarly valuable, and removing insert(17,1) actually *improves*
performance.  We reproduce the leave-one-out sweep on a few mixes.
"""

from __future__ import annotations

from _shared import (
    SWEEP_MIXES,
    header,
    multi_mixes,
    multi_results,
    run_mixes_with_config,
)
from repro import geometric_mean, single_thread_config


def run_experiment():
    base = single_thread_config("a", default_policy="srrip",
                                placements=(3, 3, 2))
    _, test = multi_mixes()
    mixes = test[:SWEEP_MIXES]
    lru = multi_results("lru")[:SWEEP_MIXES]

    def geomean_ws(results):
        return geometric_mean([
            r.weighted_speedup / b.weighted_speedup
            for r, b in zip(results, lru)
        ])

    original = geomean_ws(run_mixes_with_config(base, mixes))
    omissions = {}
    for index, feature in enumerate(base.features):
        reduced = base.features[:index] + base.features[index + 1:]
        config = base.with_features(reduced)
        omissions[f"{index}:{feature.spec()}"] = geomean_ws(
            run_mixes_with_config(config, mixes)
        )
    return original, omissions


def print_results(original, omissions) -> None:
    header(
        "Figure 10 - Leave-one-feature-out over Table 1(a)",
        "Paper: offset(15,1,6,1) most valuable; insert(17,1) harmful; "
        f"original 1.080 ({SWEEP_MIXES} mixes here).",
    )
    print(f"  original (all 16 features): {original:.4f}")
    for key, ws in sorted(omissions.items(), key=lambda kv: kv[1]):
        delta = ws - original
        print(f"  without {key:22s}: {ws:.4f} ({delta:+.4f})")


def test_fig10_feature_omission(benchmark, capsys):
    original, omissions = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)
    with capsys.disabled():
        print_results(original, omissions)

    values = list(omissions.values())
    # Shape: features matter unevenly — some omissions cost speedup,
    # and the spread across features is measurable.
    assert min(values) < original + 1e-9
    assert max(values) - min(values) > 0.0005
