"""Figure 9: performance impact of uniform per-feature associativity
(Section 6.4).

The paper fixes the A parameter of every feature to the same value
(1..18) and measures multi-programmed weighted speedup: A = 1 gives
6.4%, A = 18 gives 7.8%, and the original variable-associativity set
gives 8.0% — variable associativities help, "but not by as large a
margin as we had expected".  We sweep a subsample of A values over a
few mixes.
"""

from __future__ import annotations

from _shared import (
    SWEEP_MIXES,
    header,
    multi_mixes,
    multi_results,
    run_mixes_with_config,
)
from repro import geometric_mean, single_thread_config
from repro.core.features import with_associativity
from repro.core.mpppb import MPPPBConfig

A_VALUES = (1, 2, 6, 12, 18)


def _sweep_config(uniform_a: int) -> MPPPBConfig:
    base = single_thread_config("a", default_policy="srrip",
                                placements=(3, 3, 2))
    features = tuple(with_associativity(f, uniform_a) for f in base.features)
    return base.with_features(features)


def run_experiment():
    _, test = multi_mixes()
    mixes = test[:SWEEP_MIXES]
    lru = multi_results("lru")[:SWEEP_MIXES]

    def geomean_ws(results):
        return geometric_mean([
            r.weighted_speedup / b.weighted_speedup
            for r, b in zip(results, lru)
        ])

    sweep = {}
    for a in A_VALUES:
        sweep[a] = geomean_ws(run_mixes_with_config(_sweep_config(a), mixes))
    base = single_thread_config("a", default_policy="srrip",
                                placements=(3, 3, 2))
    original = geomean_ws(run_mixes_with_config(base, mixes))
    return sweep, original


def print_results(sweep, original) -> None:
    header(
        "Figure 9 - Uniform feature associativity sweep",
        "Paper: A=1 -> 1.064, A=18 -> 1.078, variable A -> 1.080 "
        f"(Table 1(a) features over SRRIP; {SWEEP_MIXES} mixes here).",
    )
    for a, ws in sweep.items():
        print(f"  uniform A = {a:2d}: weighted speedup {ws:.4f}")
    print(f"  original (variable A): {original:.4f}")


def test_fig9_associativity(benchmark, capsys):
    sweep, original = benchmark.pedantic(run_experiment, rounds=1,
                                         iterations=1)
    with capsys.disabled():
        print_results(sweep, original)

    # Shape: large uniform associativities beat A = 1, and the original
    # variable-associativity feature set is at least competitive with
    # the best uniform setting.
    assert sweep[18] >= sweep[1] - 0.005
    assert original >= sweep[1] - 0.005
