"""Figure 5: MPKI for 4-core multi-programmed workloads (Section 6.1.2).

Paper numbers: arithmetic-mean MPKI of 10.97 for MPPPB, 11.72 for
Hawkeye, 12.49 for Perceptron, 14.1 for LRU — every reuse predictor
removes misses, MPPPB the most.  The figure's S-curves are sorted
descending (worst-to-best); we print sampled quantiles.
"""

from __future__ import annotations

from _shared import (MULTI_TEST_MIXES, header, multi_mixes,
                     multi_results, print_s_curve)
from repro.util.stats import arithmetic_mean

POLICIES = ("lru", "hawkeye", "perceptron", "mpppb-mp")
PAPER_MEANS = {"lru": 14.1, "hawkeye": 11.72, "perceptron": 12.49,
               "mpppb-mp": 10.97}


def run_experiment():
    return {
        policy: [r.mpki for r in multi_results(policy)]
        for policy in POLICIES
    }


def print_results(mpkis) -> None:
    _, test = multi_mixes()
    header(
        "Figure 5 - MPKI, 4-core mixes",
        f"{min(len(test), MULTI_TEST_MIXES)} test mixes (paper: 900); paper means: "
        "MPPPB 10.97 < Hawkeye 11.72 < Perceptron 12.49 < LRU 14.1.",
    )
    print("S-curves (sampled quantiles, descending = worst to best):")
    for policy in POLICIES:
        print_s_curve(policy, sorted(mpkis[policy], reverse=True))
    print("-" * 64)
    for policy in POLICIES:
        print(f"{policy:12s} mean MPKI = {arithmetic_mean(mpkis[policy]):7.3f} "
              f"(paper {PAPER_MEANS[policy]})")


def test_fig5_multi_mpki(benchmark, capsys):
    mpkis = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(mpkis)

    means = {p: arithmetic_mean(mpkis[p]) for p in POLICIES}
    # Shape: every predictor-driven policy removes misses versus LRU.
    assert means["mpppb-mp"] < means["lru"]
    assert means["hawkeye"] < means["lru"]
    assert means["perceptron"] < means["lru"]
