"""Figure 7: misses per 1000 instructions per single-thread benchmark
(Section 6.2.2).

Paper numbers: arithmetic-mean MPKI of 3.5 for MPPPB, 3.7 for
Perceptron, 3.8 for Hawkeye (2 MB LLC; absolute values are not
comparable across substrates — see EXPERIMENTS.md — the target is the
ordering: MPPPB < Perceptron/Hawkeye < LRU, with MIN below everything).
"""

from __future__ import annotations

from _shared import header, single_thread_results
from repro.util.stats import arithmetic_mean

POLICIES = ("lru", "hawkeye", "perceptron", "mpppb", "min")
PAPER_MEANS = {"lru": None, "hawkeye": 3.8, "perceptron": 3.7,
               "mpppb": 3.5, "min": None}


def run_experiment():
    return {policy: single_thread_results(policy) for policy in POLICIES}


def print_results(results) -> None:
    header(
        "Figure 7 - MPKI for single-thread workloads",
        "Paper means: MPPPB 3.5 < Perceptron 3.7 < Hawkeye 3.8.",
    )
    benchmarks = sorted(results["lru"],
                        key=lambda n: -results["lru"][n].mpki)
    print(f"{'benchmark':16s} " + " ".join(f"{p:>11s}" for p in POLICIES))
    for name in benchmarks:
        row = " ".join(f"{results[p][name].mpki:11.3f}" for p in POLICIES)
        print(f"{name:16s} {row}")
    print("-" * 64)
    for policy in POLICIES:
        mean = arithmetic_mean([r.mpki for r in results[policy].values()])
        paper = PAPER_MEANS[policy]
        suffix = f" (paper {paper})" if paper else ""
        print(f"{policy:16s} mean MPKI = {mean:7.3f}{suffix}")


def test_fig7_single_mpki(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(results)

    means = {p: arithmetic_mean([r.mpki for r in results[p].values()])
             for p in POLICIES}
    # Shape: every reuse predictor removes misses relative to LRU, and
    # MIN lower-bounds all of them.
    assert means["mpppb"] < means["lru"]
    assert means["perceptron"] < means["lru"]
    assert means["hawkeye"] < means["lru"]
    assert means["min"] <= min(means[p] for p in POLICIES if p != "min") + 1e-9
