"""Figure 1 / Figure 8: ROC curves for SDBP, Perceptron, and
Multiperspective reuse predictors (Section 6.3).

The paper's claim: in the 25-31% false-positive region where the
bypass optimization operates, the multiperspective predictor provides
a lower false positive rate and higher true positive rate than SDBP
and Perceptron.  We reproduce the measure-only methodology (LRU cache,
predictions logged but not applied), average the curves over a
benchmark sample, and print TPR at fixed FPR operating points plus
AUC.  Hawkeye is excluded exactly as the paper excludes it.
"""

from __future__ import annotations

import numpy as np

from _shared import SCALE, header, single_thread_runner, single_thread_suite
from repro import TrainedMultiperspective, measure_roc, single_thread_config
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.sdbp import SDBPPredictor
from repro.util.stats import auc, roc_curve_fast

ROC_BENCHMARKS = ("sphinx3", "soplex", "mcf", "dealII", "lbm")
OPERATING_FPRS = (0.10, 0.25, 0.28, 0.31, 0.50)


def _predictor(name: str, num_sets: int):
    if name == "sdbp":
        return SDBPPredictor(num_sets)
    if name == "perceptron":
        return PerceptronPredictor(num_sets)
    return TrainedMultiperspective(single_thread_config("a"),
                                   llc_sets=num_sets)


def run_roc_experiment():
    hierarchy = SCALE.hierarchy
    num_sets = hierarchy.llc_bytes // (hierarchy.llc_ways * 64)
    suite = single_thread_suite()
    runner = single_thread_runner()

    curves = {}
    for predictor_name in ("sdbp", "perceptron", "multiperspective"):
        all_conf, all_labels = [], []
        for bench in ROC_BENCHMARKS:
            # One (heaviest-weight) segment per benchmark keeps the
            # pooled measurement tractable; curves are pooled raw.
            for segment in suite[bench][:1]:
                upper = runner.upper_result(segment)
                predictor = _predictor(predictor_name, num_sets)
                result = measure_roc(
                    predictor, upper.llc_stream, segment.trace.pcs,
                    hierarchy.llc_bytes, hierarchy.llc_ways,
                    warmup=len(upper.llc_stream) // 4,
                )
                # Normalize confidences per predictor scale before pooling.
                rng = max(1.0, predictor.confidence_range)
                all_conf.extend(c / rng for c in result.confidences)
                all_labels.extend(result.labels)
        thresholds = np.linspace(-1.05, 1.05, 85)
        curves[predictor_name] = roc_curve_fast(all_conf, all_labels,
                                                list(thresholds))
    return curves


def print_roc(curves) -> None:
    header(
        "Figure 1 / Figure 8 - ROC curves for three reuse predictors",
        f"Averaged over {len(ROC_BENCHMARKS)} benchmarks; "
        "paper: multiperspective dominates in the 25-31% FPR region.",
    )
    print(f"{'predictor':18s} {'AUC':>6s}  "
          + "  ".join(f"TPR@{int(100 * f)}%" for f in OPERATING_FPRS))
    for name, points in curves.items():
        ordered = sorted(points, key=lambda p: p.false_positive_rate)

        def tpr_at(target: float) -> float:
            feasible = [p.true_positive_rate for p in ordered
                        if p.false_positive_rate <= target]
            return max(feasible, default=0.0)

        row = "  ".join(f"{tpr_at(f):7.3f}" for f in OPERATING_FPRS)
        print(f"{name:18s} {auc(points):6.3f}  {row}")


def test_fig1_fig8_roc(benchmark, capsys):
    curves = benchmark.pedantic(run_roc_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_roc(curves)

    def tpr_at(points, target):
        return max((p.true_positive_rate for p in points
                    if p.false_positive_rate <= target), default=0.0)

    # The reproduction target: multiperspective wins the bypass region.
    for fpr in (0.25, 0.28, 0.31):
        multi = tpr_at(curves["multiperspective"], fpr)
        assert multi >= tpr_at(curves["sdbp"], fpr) - 0.02
        assert multi >= tpr_at(curves["perceptron"], fpr) - 0.02
