"""Shared, memoized experiment infrastructure for the bench harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
Experiments that share inputs (the single-thread suite drives both
Figure 6 and Figure 7; the multi-programmed mixes drive Figures 4, 5,
9, and 10) are computed once per pytest session through the caches
below.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``); benches additionally trim mix
counts and sweep granularity so a full ``pytest benchmarks/`` run
stays tractable on a laptop.  Every reduction is printed alongside the
results.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence, Tuple

from repro import (
    MultiProgrammedRunner,
    SingleThreadRunner,
    build_suite,
    cross_validated_configs,
    generate_mixes,
    get_scale,
    split_train_test,
)
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.exec import MixCell, ParallelRunner, SingleCell, SuiteSpec, TraceSpec
from repro.sim.multi import MixResult
from repro.sim.single import BenchmarkResult
from repro.traces.mixes import Mix
from repro.traces.trace import Segment
from repro.traces.workloads import benchmark_names

SCALE = get_scale()

# Bench-level reductions on top of the scale (documented in output).
MULTI_SEGMENT_ACCESSES = max(4_000, SCALE.segment_accesses // 3)
MULTI_TEST_MIXES = 8     # test mixes replayed by Figures 4 and 5
SWEEP_MIXES = 4          # mixes used by the Figure 9/10 ablation sweeps

# One engine per bench session: REPRO_JOBS workers (default serial) and
# the REPRO_CACHE_DIR on-disk result cache (default .repro-cache), so
# results survive process exit the way the lru_caches below survive a
# pytest session.
ENGINE = ParallelRunner()


def header(title: str, notes: str = "") -> None:
    print()
    print("=" * 78)
    print(title)
    if notes:
        print(notes)
    print(f"(scale={SCALE.name}, segment_accesses={SCALE.segment_accesses})")
    print("=" * 78)


@functools.lru_cache(maxsize=None)
def single_thread_suite() -> Dict[str, List[Segment]]:
    return build_suite(SCALE.hierarchy.llc_bytes, SCALE.segment_accesses)


@functools.lru_cache(maxsize=None)
def single_thread_runner() -> SingleThreadRunner:
    return SingleThreadRunner(
        SCALE.hierarchy, warmup_fraction=SCALE.warmup_fraction
    )


def mpppb_cv_factory(config: MPPPBConfig):
    return lambda num_sets, ways: MPPPBPolicy(num_sets, ways, config)


def _single_cell(benchmark: str, policy: str,
                 config: Optional[MPPPBConfig] = None) -> SingleCell:
    return SingleCell(
        trace=TraceSpec(benchmark, SCALE.hierarchy.llc_bytes,
                        SCALE.segment_accesses),
        policy=policy,
        hierarchy=SCALE.hierarchy,
        mpppb_config=config,
        warmup_fraction=SCALE.warmup_fraction,
    )


@functools.lru_cache(maxsize=None)
def single_thread_results(policy: str) -> Dict[str, BenchmarkResult]:
    """Suite results for one policy name (cross-validated for MPPPB)."""
    names = sorted(benchmark_names())
    if policy == "mpppb":
        configs = cross_validated_configs(names)
        cells = [_single_cell(name, "mpppb", configs[name]) for name in names]
    else:
        cells = [_single_cell(name, policy) for name in names]
    results = ENGINE.run(cells, label=f"single/{policy}")
    print(ENGINE.last_report.summary())
    return dict(zip(names, results))


# -- multi-programmed ------------------------------------------------------


@functools.lru_cache(maxsize=None)
def multi_runner() -> MultiProgrammedRunner:
    return MultiProgrammedRunner(
        SCALE.multi_hierarchy, warmup_fraction=SCALE.warmup_fraction
    )


@functools.lru_cache(maxsize=None)
def multi_mixes() -> Tuple[List[Mix], List[Mix]]:
    """(train, test) mixes following the paper's leading-split rule."""
    suite = build_suite(SCALE.hierarchy.llc_bytes, MULTI_SEGMENT_ACCESSES)
    segments = [s for name in sorted(suite) for s in suite[name]]
    mixes = generate_mixes(segments, SCALE.mix_count)
    return split_train_test(mixes, SCALE.train_mix_count)


def _mix_suite_spec() -> SuiteSpec:
    return SuiteSpec(SCALE.hierarchy.llc_bytes, MULTI_SEGMENT_ACCESSES)


def run_mixes(mixes: Sequence[Mix], policy: str,
              config: Optional[MPPPBConfig] = None) -> List[MixResult]:
    """Replay mixes under one policy through the experiment engine."""
    suite_spec = _mix_suite_spec()
    cells = [
        MixCell(
            suite=suite_spec,
            mix_name=mix.name,
            segment_names=tuple(s.name for s in mix.segments),
            policy=policy,
            hierarchy=SCALE.multi_hierarchy,
            mpppb_config=config,
            warmup_fraction=SCALE.warmup_fraction,
        )
        for mix in mixes
    ]
    results = ENGINE.run(cells, label=f"mix/{policy}")
    print(ENGINE.last_report.summary())
    return results


@functools.lru_cache(maxsize=None)
def multi_results(policy: str) -> List[MixResult]:
    """Test-mix results for one policy name (capped for bench runtime)."""
    _, test = multi_mixes()
    return run_mixes(test[:MULTI_TEST_MIXES], policy)


def run_mixes_with_config(config: MPPPBConfig, mixes: Sequence[Mix]) -> List[MixResult]:
    return run_mixes(mixes, "mpppb", config)


def print_s_curve(name: str, values: Sequence[float], buckets: int = 12) -> None:
    """Print an S-curve as evenly sampled quantiles."""
    ordered = sorted(values)
    samples = []
    for i in range(buckets):
        idx = min(len(ordered) - 1, int(i * (len(ordered) - 1) / max(1, buckets - 1)))
        samples.append(ordered[idx])
    series = " ".join(f"{v:6.3f}" for v in samples)
    print(f"  {name:12s} {series}")
