"""Table 3: which feature contributes the most per workload
(Section 6.4).

The paper runs the leave-one-out experiment of Figure 10 per SPEC CPU
2017 simpoint with the Table 1(b) features — SPEC 2017 having played
no role in feature development — and reports, for 15 of 16 features, a
simpoint where that feature contributes the most MPKI reduction (e.g.
pc(15,14,32,6,0) improves an mcf simpoint by 18.88%).

We mirror the discipline with the *holdout suite*
(:mod:`repro.traces.holdout`): a separate set of SPEC-2017-named
synthetic benchmarks never used for tuning.  For each, every Table
1(b) feature is removed in turn and the feature whose removal hurts
MPKI most is reported.
"""

from __future__ import annotations

from _shared import SCALE, header, single_thread_runner
from repro import single_thread_config
from repro.core.mpppb import MPPPBPolicy
from repro.traces.holdout import build_holdout_suite

HOLDOUT_SAMPLE = ("mcf_17", "gcc_17", "xalancbmk_17", "wrf_17", "xz_17",
                  "lbm_17")


def run_experiment():
    runner = single_thread_runner()
    suite = build_holdout_suite(
        SCALE.hierarchy.llc_bytes, max(4_000, SCALE.segment_accesses // 2),
        names=HOLDOUT_SAMPLE,
    )
    base = single_thread_config("b")

    def mpki_for(bench, config):
        factory = lambda ns, w: MPPPBPolicy(ns, w, config)
        return runner.run_benchmark(bench, suite[bench], factory).mpki

    rows = []
    for bench in HOLDOUT_SAMPLE:
        with_all = mpki_for(bench, base)
        worst_feature, worst_mpki = None, with_all
        for index, feature in enumerate(base.features):
            reduced = base.features[:index] + base.features[index + 1:]
            without = mpki_for(bench, base.with_features(reduced))
            if without > worst_mpki:
                worst_mpki = without
                worst_feature = feature.spec()
        increase = (100.0 * (worst_mpki - with_all) / with_all
                    if with_all > 0 else 0.0)
        rows.append((bench, worst_feature or "(none)", with_all, worst_mpki,
                     increase))
    return rows


def print_results(rows) -> None:
    header(
        "Table 3 - Most valuable Table 1(b) feature per holdout workload",
        f"{len(HOLDOUT_SAMPLE)} holdout benchmarks x 16 leave-one-out runs "
        "(paper: 95 SPEC CPU 2017 simpoints, untouched by feature search).",
    )
    print(f"{'benchmark':14s} {'feature':22s} {'with':>8s} {'without':>8s} "
          f"{'increase':>9s}")
    for bench, feature, with_all, without, increase in rows:
        print(f"{bench:14s} {feature:22s} {with_all:8.2f} {without:8.2f} "
              f"{increase:8.2f}%")


def test_table3_feature_contribution(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(rows)

    # Shape: different workloads are dominated by different features,
    # and at least one workload shows a measurable single-feature
    # contribution — the paper's core observation.
    features = {feature for _, feature, _, _, _ in rows}
    assert len(features) >= 2
    assert any(increase > 0.5 for *_, increase in rows)
