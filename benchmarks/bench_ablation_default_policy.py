"""Ablation: MPPPB's default replacement substrate (Section 3.7).

The paper runs MPPPB over static MDPP for single-thread workloads and
over SRRIP for multi-programmed ones, noting that "SRRIP provides
performance comparable to MDPP" while being simpler to tune.  This
bench runs the same features over both substrates (and the substrates
alone, without prediction) on the single-thread suite sample.
"""

from __future__ import annotations

from _shared import header, single_thread_runner, single_thread_suite
from repro import policy_factory, single_thread_config
from repro.core.mpppb import MPPPBPolicy
from repro.util.stats import arithmetic_mean

EVAL_BENCHMARKS = ("soplex", "sphinx3", "mcf", "dealII", "wrf", "lbm",
                   "omnetpp", "gamess")


def run_experiment():
    suite = single_thread_suite()
    runner = single_thread_runner()
    segments = [s for name in EVAL_BENCHMARKS for s in suite[name]]

    def avg(factory):
        return arithmetic_mean(
            [runner.run_segment(s, factory).mpki for s in segments]
        )

    mdpp_config = single_thread_config("a")
    srrip_config = single_thread_config(
        "a", default_policy="srrip", placements=(3, 3, 2)
    )
    return {
        "lru (no prediction)": avg(policy_factory("lru")),
        "mdpp (no prediction)": avg(policy_factory("mdpp")),
        "srrip (no prediction)": avg(policy_factory("srrip")),
        "mpppb over mdpp": avg(lambda ns, w: MPPPBPolicy(ns, w, mdpp_config)),
        "mpppb over srrip": avg(lambda ns, w: MPPPBPolicy(ns, w, srrip_config)),
    }


def print_results(sweep) -> None:
    header(
        "Ablation - MPPPB default replacement substrate",
        "Paper: MDPP (single-thread) vs SRRIP (multi-core) are comparable.",
    )
    for name, mpki in sweep.items():
        print(f"  {name:24s}: {mpki:.3f} MPKI")


def test_ablation_default_policy(benchmark, capsys):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(sweep)

    # Shape: prediction helps over both substrates, and the two MPPPB
    # variants land in the same neighborhood (the paper's
    # "comparable performance" claim).
    assert sweep["mpppb over mdpp"] < sweep["lru (no prediction)"]
    assert sweep["mpppb over srrip"] < sweep["lru (no prediction)"]
    ratio = sweep["mpppb over mdpp"] / sweep["mpppb over srrip"]
    assert 0.8 < ratio < 1.25
