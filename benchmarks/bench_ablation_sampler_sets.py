"""Ablation: sampler coverage (DESIGN.md design-choice bench).

The paper chooses 64 sampled sets per core (Section 4.4) as a
hardware/accuracy tradeoff.  This bench sweeps the sampler set count
and reports single-thread MPKI: too few sets starve training; beyond
the knee, more sampler hardware buys little.
"""

from __future__ import annotations

from _shared import SCALE, header, single_thread_runner, single_thread_suite
from repro import single_thread_config
from repro.core.mpppb import MPPPBPolicy
from repro.util.stats import arithmetic_mean

SAMPLER_SETS = (4, 16, 64, 128)
EVAL_BENCHMARKS = ("soplex", "sphinx3", "mcf", "dealII", "wrf", "lbm")


def run_experiment():
    suite = single_thread_suite()
    runner = single_thread_runner()
    segments = [s for name in EVAL_BENCHMARKS for s in suite[name]]
    sweep = {}
    for sampler_sets in SAMPLER_SETS:
        config = single_thread_config("a", sampler_sets=sampler_sets)
        factory = lambda ns, w: MPPPBPolicy(ns, w, config)
        sweep[sampler_sets] = arithmetic_mean(
            [runner.run_segment(s, factory).mpki for s in segments]
        )
    return sweep


def print_results(sweep) -> None:
    header(
        "Ablation - sampler set count",
        f"Paper default: 64 sampled sets per core ({SCALE.name} scale).",
    )
    for sets, mpki in sweep.items():
        print(f"  sampler_sets={sets:4d}: {mpki:.3f} MPKI")


def test_ablation_sampler_sets(benchmark, capsys):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(sweep)

    # Shape: heavy sampling is not catastrophically different from the
    # default, and starved sampling (4 sets) never beats the default by
    # a wide margin — the knee behavior the paper's choice relies on.
    assert sweep[64] <= sweep[4] * 1.10
    assert abs(sweep[128] - sweep[64]) <= max(0.5, 0.15 * sweep[64])
