"""Table 2: the multi-programmed feature set (Section 5.3).

Prints the published set and validates the paper's train/test
discipline: the Table 2 features were developed on the first 100
mixes and reported on the remaining 900; here we evaluate MPPPB with
Table 2 features on both the training and test mixes and check the
speedup generalizes (no train-only artifact).
"""

from __future__ import annotations

from _shared import SWEEP_MIXES, header, multi_mixes, multi_runner, run_mixes_with_config
from repro import geometric_mean, multi_programmed_config, policy_factory
from repro.core.presets import TABLE_2_SPECS


def run_experiment():
    train, test = multi_mixes()
    train = train[:SWEEP_MIXES]
    test = test[:SWEEP_MIXES]
    runner = multi_runner()
    config = multi_programmed_config()

    def geomean_ws(mixes):
        lru = [runner.run_mix(m, policy_factory("lru")) for m in mixes]
        mp = run_mixes_with_config(config, mixes)
        return geometric_mean([
            r.weighted_speedup / b.weighted_speedup for r, b in zip(mp, lru)
        ])

    return {"train": geomean_ws(train), "test": geomean_ws(test)}


def print_results(ws) -> None:
    header(
        "Table 2 - Multi-programmed feature set",
        "Developed on training mixes, reported on test mixes "
        "(paper: 100 train / 900 test).",
    )
    for spec in TABLE_2_SPECS:
        print(f"  {spec}")
    print("-" * 60)
    print(f"weighted speedup on training mixes: {ws['train']:.4f}")
    print(f"weighted speedup on test mixes    : {ws['test']:.4f}")


def test_table2_mp_features(benchmark, capsys):
    ws = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(ws)

    # The Table 2 configuration must generalize from train to test:
    # no train-only artifact (the two sides track each other).  Note
    # EXPERIMENTS.md: Table 2's address-heavy features carry less
    # signal under the synthetic address layout, so absolute speedup
    # is modest here; the tuned multi-core preset (mpppb-mp) is what
    # Figure 4 evaluates.
    assert 0.9 < ws["test"] / ws["train"] < 1.1
    assert ws["test"] > 0.97
