"""Figure 3: developing feature sets by random search + hill-climbing
(Section 5.2).

The paper evaluates 4000 randomly chosen sets of 16 features on the 99
single-thread segments, plots them sorted by average MPKI between the
LRU and MIN reference lines, and shows that hill-climbing improves the
best random set but "most of the benefit comes from the initial random
search".  We reproduce the experiment with a reduced population.
"""

from __future__ import annotations

from _shared import SCALE, header, single_thread_runner, single_thread_suite
from repro import policy_factory
from repro.search import FeatureSetEvaluator, hill_climb, random_search
from repro.search.random_search import mpki_distribution

SEARCH_BENCHMARKS = ("soplex", "sphinx3", "lbm", "gamess")


def run_experiment():
    suite = single_thread_suite()
    segments = [s for name in SEARCH_BENCHMARKS for s in suite[name][:1]]
    evaluator = FeatureSetEvaluator(
        segments, SCALE.hierarchy, warmup_fraction=SCALE.warmup_fraction
    )
    evaluator.runner._stage1_cache = single_thread_runner()._stage1_cache

    lru = evaluator.baseline_mpki(policy_factory("lru"))
    optimal = evaluator.baseline_mpki(policy_factory("min"))
    candidates = random_search(
        evaluator, num_sets=SCALE.random_feature_sets, seed=2017
    )
    refined = hill_climb(
        evaluator, candidates[0].features, steps=SCALE.hillclimb_steps, seed=50
    )
    return {
        "lru": lru,
        "min": optimal,
        "distribution": mpki_distribution(candidates),
        "best_random": candidates[0].mpki,
        "hill_climbed": refined.mpki,
        "improvements": refined.improvements,
        "features": [f.spec() for f in refined.features],
    }


def print_results(r) -> None:
    header(
        "Figure 3 - Random feature search + hill-climbing",
        f"{len(r['distribution'])} random sets of 16 features "
        f"(paper: 4000), {SCALE.hillclimb_steps} hill-climb steps.",
    )
    dist = r["distribution"]
    samples = [dist[min(len(dist) - 1, int(i * (len(dist) - 1) / 9))]
               for i in range(10)]
    print("random sets sorted by MPKI (descending, sampled): "
          + " ".join(f"{v:.2f}" for v in samples))
    print(f"LRU reference          : {r['lru']:.3f} MPKI")
    print(f"worst random set       : {dist[0]:.3f} MPKI")
    print(f"best random set        : {r['best_random']:.3f} MPKI")
    print(f"hill-climbed           : {r['hill_climbed']:.3f} MPKI "
          f"({r['improvements']} accepted moves)")
    print(f"MIN reference          : {r['min']:.3f} MPKI")
    print("hill-climbed feature set:")
    for spec in r["features"]:
        print(f"  {spec}")


def test_fig3_feature_search(benchmark, capsys):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(r)

    # Shape: the random population spans a wide MPKI range, the best
    # random set already sits well below the worst (most of the
    # benefit), hill-climbing never hurts, and MIN bounds everything.
    assert r["hill_climbed"] <= r["best_random"] + 1e-9
    assert r["best_random"] < r["distribution"][0]
    assert r["min"] <= r["hill_climbed"]
