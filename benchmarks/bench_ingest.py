"""Streaming trace-decode throughput bench (repro.traces.ingest).

Times a full streamed decode of one synthetic fixture per real-trace
format — ChampSim-style binary, gzip'd plain text, and CSV — and holds
every reader above the ``INGEST_MIN_RECORDS_PER_S`` floor the CI
perf-smoke gate enforces.  The full harness (``bench_hotpath`` / the
``perf`` CLI command) embeds the same section in its report; this
standalone entry point exists for quick iteration on the readers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_ingest.py [records]
"""

from __future__ import annotations

import sys

from repro.perf import INGEST_MIN_RECORDS_PER_S, bench_ingest


def run_experiment(records: int = 50_000, repeats: int = 3):
    return bench_ingest(repeats=repeats, records=records)


def print_results(section) -> None:
    print()
    print("=" * 78)
    print("Streamed trace-decode throughput (records/s, best-of-N)")
    print("=" * 78)
    for fmt in sorted(section["formats"]):
        stats = section["formats"][fmt]
        print(f"  {fmt:10s} {stats['records_per_s']:>12,.0f} rec/s   "
              f"decode {stats['decode_s']:.4f}s   "
              f"file {stats['file_bytes'] / 1024:.0f} KiB")
    print(f"  floor      {INGEST_MIN_RECORDS_PER_S:>12,.0f} rec/s")


def check(section):
    return [
        f"ingest: {fmt} decode "
        f"{section['formats'][fmt]['records_per_s']:,.0f} records/s under "
        f"the {INGEST_MIN_RECORDS_PER_S:,.0f} floor"
        for fmt in sorted(section["formats"])
        if section["formats"][fmt]["records_per_s"]
        < INGEST_MIN_RECORDS_PER_S
    ]


def test_ingest_throughput(capsys):
    section = run_experiment(records=20_000, repeats=2)
    with capsys.disabled():
        print_results(section)
    assert check(section) == []


def main(argv) -> int:
    records = int(argv[0]) if argv else 50_000
    section = run_experiment(records=records)
    print_results(section)
    failures = check(section)
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
