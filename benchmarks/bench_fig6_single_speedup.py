"""Figure 6: single-thread speedup over LRU per benchmark (Section 6.2.1).

Paper numbers (33 benchmarks, 2 MB LLC, prefetching on):
geometric-mean speedup over LRU of 9.0% for MPPPB, 6.3% for
Perceptron, 5.1% for Hawkeye, and 13.6% for Belady's MIN; MPPPB is
best of the realistic policies on 22 of 33 benchmarks and never falls
below 95% of LRU.  MPPPB uses the cross-validated Table 1 feature
sets over static MDPP.
"""

from __future__ import annotations

from _shared import header, single_thread_results
from repro import geometric_mean
from repro.sim.single import speedups_over_lru

POLICIES = ("hawkeye", "perceptron", "mpppb", "min")
PAPER_GEOMEANS = {"hawkeye": 1.051, "perceptron": 1.063,
                  "mpppb": 1.090, "min": 1.136}


def run_experiment():
    lru = single_thread_results("lru")
    speedups = {
        policy: speedups_over_lru(single_thread_results(policy), lru)
        for policy in POLICIES
    }
    return speedups


def print_results(speedups) -> None:
    header(
        "Figure 6 - Speedup over LRU for single-thread workloads",
        "Paper geomeans: Hawkeye 1.051, Perceptron 1.063, MPPPB 1.090, "
        "MIN 1.136.",
    )
    benchmarks = sorted(speedups["mpppb"],
                        key=lambda n: speedups["mpppb"][n])
    print(f"{'benchmark':16s} " + " ".join(f"{p:>11s}" for p in POLICIES))
    for name in benchmarks:
        row = " ".join(f"{speedups[p][name]:11.3f}" for p in POLICIES)
        print(f"{name:16s} {row}")
    print("-" * 64)
    best_counts = {p: 0 for p in POLICIES if p != "min"}
    for name in benchmarks:
        realistic = {p: speedups[p][name] for p in best_counts}
        best = max(realistic, key=realistic.get)
        best_counts[best] += 1
    for policy in POLICIES:
        gm = geometric_mean(list(speedups[policy].values()))
        print(f"{policy:16s} geomean={gm:.4f} (paper {PAPER_GEOMEANS[policy]:.3f})")
    print(f"best-realistic-policy counts: {best_counts} "
          f"(paper: MPPPB best on 22 of 33)")


def test_fig6_single_speedup(benchmark, capsys):
    speedups = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print_results(speedups)

    geomeans = {p: geometric_mean(list(speedups[p].values()))
                for p in POLICIES}
    # Shape assertions: ordering of the paper's headline result.
    assert geomeans["mpppb"] > geomeans["perceptron"] > geomeans["hawkeye"]
    assert geomeans["min"] > geomeans["mpppb"]
    assert geomeans["mpppb"] > 1.0
    # MPPPB never falls far below LRU (paper: never below 95%).
    assert min(speedups["mpppb"].values()) > 0.93
