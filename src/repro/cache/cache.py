"""Set-associative cache structures.

Two containers serve different layers of the hierarchy:

* :class:`FastLRUCache` — a minimal, dictionary-based LRU cache used for
  the L1 and L2 levels in the hot upper-level simulation loop.  Python
  dictionaries preserve insertion order, so delete-and-reinsert gives
  O(1) LRU promotion and ``next(iter(...))`` O(1) victim selection.
* :class:`SetAssociativeCache` — an explicit way-array structure for the
  last-level cache, where replacement policies need per-way metadata,
  victim callbacks, and recency introspection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class FastLRUCache:
    """LRU cache over block addresses; optimized for the inner loop.

    Addresses must already be block-aligned indices (byte address
    shifted right by the block-offset width).  The cache stores block
    numbers only — contents are irrelevant to a reuse-prediction study.
    """

    __slots__ = ("num_sets", "ways", "_sets", "hits", "misses")

    def __init__(self, capacity_bytes: int, ways: int, block_bytes: int = 64) -> None:
        if capacity_bytes % (ways * block_bytes) != 0:
            raise ValueError("capacity must be a whole number of sets")
        self.num_sets = capacity_bytes // (ways * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.ways = ways
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, block: int) -> bool:
        """Touch ``block``; return True on hit.  Misses allocate."""
        cache_set = self._sets[block & (self.num_sets - 1)]
        if block in cache_set:
            del cache_set[block]
            cache_set[block] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            del cache_set[next(iter(cache_set))]
        cache_set[block] = None
        return False

    def probe(self, block: int) -> bool:
        """Check residency without updating recency or statistics."""
        return block in self._sets[block & (self.num_sets - 1)]

    def fill(self, block: int) -> None:
        """Install ``block`` (as MRU) without counting a demand access.

        Used for prefetch fills, which must not perturb hit statistics.
        """
        cache_set = self._sets[block & (self.num_sets - 1)]
        if block in cache_set:
            return
        if len(cache_set) >= self.ways:
            del cache_set[next(iter(cache_set))]
        cache_set[block] = None


class SetAssociativeCache:
    """Explicit way-array cache for the LLC.

    Tags are full block addresses (no truncation — aliasing belongs in
    predictor samplers, not the cache model).  Replacement decisions
    live in policy objects; this class only stores and looks up.
    """

    __slots__ = ("num_sets", "ways", "tags", "valid", "_where")

    def __init__(self, capacity_bytes: int, ways: int, block_bytes: int = 64) -> None:
        if capacity_bytes % (ways * block_bytes) != 0:
            raise ValueError("capacity must be a whole number of sets")
        self.num_sets = capacity_bytes // (ways * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self.ways = ways
        self.tags: List[List[int]] = [[-1] * ways for _ in range(self.num_sets)]
        self.valid: List[List[bool]] = [[False] * ways for _ in range(self.num_sets)]
        # Per-set tag -> way index: lookup is the single hottest cache
        # operation of a stage-2 replay, and a dict probe is O(1) where
        # the way scan was O(associativity).  tags/valid remain the
        # source of truth for introspection; the index mirrors them.
        self._where: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]

    def set_index(self, block: int) -> int:
        return block & (self.num_sets - 1)

    def lookup(self, set_idx: int, block: int) -> int:
        """Return the way holding ``block`` in ``set_idx``, or -1."""
        return self._where[set_idx].get(block, -1)

    def invalid_way(self, set_idx: int) -> int:
        """Return the lowest invalid way in ``set_idx``, or -1 if full."""
        valid = self.valid[set_idx]
        for way in range(self.ways):
            if not valid[way]:
                return way
        return -1

    def install(self, set_idx: int, way: int, block: int) -> Optional[int]:
        """Place ``block`` in ``way``; return the evicted tag, if any."""
        where = self._where[set_idx]
        evicted = self.tags[set_idx][way] if self.valid[set_idx][way] else None
        if evicted is not None and where.get(evicted) == way:
            del where[evicted]
        self.tags[set_idx][way] = block
        self.valid[set_idx][way] = True
        where[block] = way
        return evicted

    def invalidate(self, set_idx: int, way: int) -> None:
        if self.valid[set_idx][way]:
            where = self._where[set_idx]
            tag = self.tags[set_idx][way]
            if where.get(tag) == way:
                del where[tag]
        self.valid[set_idx][way] = False
        self.tags[set_idx][way] = -1

    def resident_blocks(self, set_idx: int) -> List[Tuple[int, int]]:
        """(way, tag) pairs for every valid way of a set."""
        return [
            (way, self.tags[set_idx][way])
            for way in range(self.ways)
            if self.valid[set_idx][way]
        ]
