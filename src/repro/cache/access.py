"""The access context shared by replacement policies and predictors.

Every LLC access is described by an :class:`AccessContext`.  The
hierarchy driver fills in the static fields (PC, address, PC history);
the LLC simulator and policies fill in the dynamic fields that depend
on cache state (insertion, MRU hit, per-set last-miss bit) just before
consulting a predictor.  These dynamic fields are exactly the inputs of
the paper's single-bit features (Section 3.2): ``insert``, ``burst``,
and ``lastmiss``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

PREFETCH_PC = 0x0BADC0DE
"""The "fake PC" carried by hardware prefetches (Section 3.2, pc feature)."""


@dataclass(slots=True)
class AccessContext:
    """One LLC access with everything a reuse predictor may inspect.

    Slotted: one context object is reused across an entire LLC replay
    with every field rewritten per access, so attribute access speed
    (and the absence of a per-instance ``__dict__``) matters.
    """

    pc: int
    address: int
    block: int
    offset: int
    is_write: bool = False
    is_prefetch: bool = False
    stream_index: int = 0
    pc_history: Sequence[int] = ()
    history_index: int = 0
    is_insert: bool = False
    is_mru_hit: bool = False
    last_was_miss: bool = False


class PCHistory:
    """Per-core shift register of recent memory-access PCs.

    The pc feature indexes the W-th most recent memory access
    instruction (W = 0 is the current access); the published feature
    tables use W up to 17, so the register holds 18 entries.
    """

    DEPTH = 18

    __slots__ = ("_history",)

    def __init__(self) -> None:
        self._history = [0] * self.DEPTH

    def push(self, pc: int) -> None:
        history = self._history
        history.insert(0, pc)
        history.pop()

    def get(self, w: int) -> int:
        """PC of the w-th most recent memory access (0 = most recent)."""
        if 0 <= w < self.DEPTH:
            return self._history[w]
        return 0

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self._history)
