"""Replacement policies for the last-level cache."""

from repro.cache.replacement.base import PolicyStats, ReplacementPolicy
from repro.cache.replacement.belady import NEVER, BeladyPolicy, compute_next_uses
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.mdpp import MDPPPolicy
from repro.cache.replacement.plru import PLRUTree, TreePLRUPolicy
from repro.cache.replacement.random_ import RandomPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy

__all__ = [
    "PolicyStats",
    "ReplacementPolicy",
    "NEVER",
    "BeladyPolicy",
    "compute_next_uses",
    "LRUPolicy",
    "MDPPPolicy",
    "PLRUTree",
    "TreePLRUPolicy",
    "RandomPolicy",
    "BRRIPPolicy",
    "DRRIPPolicy",
    "SRRIPPolicy",
]
