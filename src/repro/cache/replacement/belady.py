"""Belady's MIN optimal replacement, extended with optimal bypass.

MIN [Belady 1966] evicts the block whose next use lies farthest in the
future.  The paper simulates MIN "adapted to also provide optimal
bypass" as the single-thread upper bound (Section 4.3): when the
incoming block's own next use is at least as far as every resident
block's, the fill is bypassed instead of displacing a more useful
block.

The policy is offline: the LLC simulator precomputes, for every access
in the LLC stream, the stream index of the next access to the same
block (``NEVER`` when there is none) and hands it over via
:meth:`prepare` before the run.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy

NEVER = 1 << 62
"""Next-use sentinel for blocks that are never referenced again."""


def compute_next_uses(blocks: Sequence[int]) -> List[int]:
    """For each access, the stream index of that block's next access."""
    next_uses = [NEVER] * len(blocks)
    last_seen = {}
    for index in range(len(blocks) - 1, -1, -1):
        block = blocks[index]
        next_uses[index] = last_seen.get(block, NEVER)
        last_seen[block] = index
    return next_uses


class BeladyPolicy(ReplacementPolicy):
    """MIN with optimal bypass."""

    name = "min"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._next_uses: Sequence[int] = ()
        self._way_next_use: List[List[int]] = [
            [NEVER] * ways for _ in range(num_sets)
        ]

    @property
    def needs_future(self) -> bool:
        return True

    def prepare(self, next_uses: Sequence[int]) -> None:
        self._next_uses = next_uses

    def _incoming_next_use(self, ctx: AccessContext) -> int:
        if not self._next_uses:
            raise RuntimeError("BeladyPolicy.prepare was not called")
        return self._next_uses[ctx.stream_index]

    def should_bypass(self, set_idx: int, ctx: AccessContext) -> bool:
        incoming = self._incoming_next_use(ctx)
        if incoming >= NEVER:
            return True
        farthest = max(self._way_next_use[set_idx])
        return incoming >= farthest

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        uses = self._way_next_use[set_idx]
        victim = 0
        farthest = uses[0]
        for way in range(1, self.ways):
            if uses[way] > farthest:
                farthest = uses[way]
                victim = way
        return victim

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._way_next_use[set_idx][way] = self._incoming_next_use(ctx)

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._way_next_use[set_idx][way] = self._incoming_next_use(ctx)

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        self._way_next_use[set_idx][way] = NEVER
