"""Re-Reference Interval Prediction replacement: SRRIP, BRRIP, DRRIP.

RRIP [Jaleel et al., ISCA 2010] groups blocks into recency categories
by a small re-reference prediction value (RRPV).  Static RRIP inserts
every block with a "long" interval (RRPV = max - 1), promotes to
"near-immediate" (RRPV = 0) on a hit, and evicts the first block with a
"distant" interval (RRPV = max), aging the whole set when none exists.
Bimodal RRIP inserts with "distant" most of the time, and Dynamic RRIP
set-duels the two (Qureshi's set dueling, Section 2).

The paper uses two-bit SRRIP as the default multi-core replacement
policy under MPPPB (Section 3.7); MPPPB overrides the insertion RRPV
per block through :meth:`SRRIPPolicy.place`.
"""

from __future__ import annotations

import random
from typing import List

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with ``rrpv_bits``-bit re-reference values."""

    name = "srrip"

    def __init__(self, num_sets: int, ways: int, rrpv_bits: int = 2) -> None:
        super().__init__(num_sets, ways)
        if rrpv_bits < 1:
            raise ValueError("rrpv_bits must be >= 1")
        self.rrpv_max = (1 << rrpv_bits) - 1
        self.insert_rrpv = self.rrpv_max - 1
        self.rrpvs: List[List[int]] = [
            [self.rrpv_max] * ways for _ in range(num_sets)
        ]

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        rrpvs = self.rrpvs[set_idx]
        rrpv_max = self.rrpv_max
        while True:
            for way in range(self.ways):
                if rrpvs[way] >= rrpv_max:
                    return way
            for way in range(self.ways):
                rrpvs[way] += 1

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self.rrpvs[set_idx][way] = self._insertion_rrpv(set_idx, ctx)

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self.rrpvs[set_idx][way] = 0

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self.rrpvs[set_idx][way] == 0

    def place(self, set_idx: int, way: int, rrpv: int) -> None:
        """Direct RRPV override for prediction-driven policies."""
        if not 0 <= rrpv <= self.rrpv_max:
            raise ValueError(f"rrpv {rrpv} out of range 0..{self.rrpv_max}")
        self.rrpvs[set_idx][way] = rrpv

    def position(self, set_idx: int, way: int) -> int:
        return self.rrpvs[set_idx][way]

    def _insertion_rrpv(self, set_idx: int, ctx: AccessContext) -> int:
        return self.insert_rrpv


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP: distant insertion except once every 32 fills."""

    name = "brrip"

    LONG_PROBABILITY = 1 / 32

    def __init__(self, num_sets: int, ways: int, rrpv_bits: int = 2,
                 seed: int = 0xB121) -> None:
        super().__init__(num_sets, ways, rrpv_bits)
        self._rng = random.Random(seed)

    def _insertion_rrpv(self, set_idx: int, ctx: AccessContext) -> int:
        if self._rng.random() < self.LONG_PROBABILITY:
            return self.rrpv_max - 1
        return self.rrpv_max


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-dueling between SRRIP and BRRIP insertion.

    A handful of leader sets are hard-wired to each insertion policy;
    their misses steer a saturating policy-selection counter (PSEL),
    and follower sets obey its sign.
    """

    name = "drrip"

    PSEL_BITS = 10
    LEADER_PERIOD = 32

    def __init__(self, num_sets: int, ways: int, rrpv_bits: int = 2,
                 seed: int = 0xD121) -> None:
        super().__init__(num_sets, ways, rrpv_bits)
        self._rng = random.Random(seed)
        self._psel = (1 << self.PSEL_BITS) // 2
        self._psel_max = (1 << self.PSEL_BITS) - 1

    def _leader_kind(self, set_idx: int) -> str:
        slot = set_idx % self.LEADER_PERIOD
        if slot == 0:
            return "srrip"
        if slot == self.LEADER_PERIOD // 2:
            return "brrip"
        return "follower"

    def _insertion_rrpv(self, set_idx: int, ctx: AccessContext) -> int:
        kind = self._leader_kind(set_idx)
        if kind == "srrip":
            self._psel = min(self._psel_max, self._psel + 1)
            use_brrip = False
        elif kind == "brrip":
            self._psel = max(0, self._psel - 1)
            use_brrip = True
        else:
            use_brrip = self._psel < (1 << self.PSEL_BITS) // 2
        if use_brrip:
            if self._rng.random() < BRRIPPolicy.LONG_PROBABILITY:
                return self.rrpv_max - 1
            return self.rrpv_max
        return self.rrpv_max - 1
