"""True LRU replacement with explicit recency-stack positions.

LRU is both the paper's performance baseline (every speedup is reported
relative to it, Section 4.5) and the replacement policy of every
predictor sampler (Section 3.8: "only true LRU is used in the
sampler").  Positions are explicit — position 0 is MRU — because the
multiperspective features reason about recency-stack positions.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement.

    Each set keeps a recency stack of ways: ``stack[0]`` is the MRU
    way and ``stack[-1]`` the LRU victim.  Ways absent from the stack
    have never been filled.
    """

    name = "lru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._stacks: List[List[int]] = [[] for _ in range(num_sets)]

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        stack = self._stacks[set_idx]
        if not stack:
            raise RuntimeError("choose_victim called on an empty set")
        return stack[-1]

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        stack = self._stacks[set_idx]
        if way in stack:
            stack.remove(way)
        stack.insert(0, way)

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.insert(0, way)

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        stack = self._stacks[set_idx]
        if way in stack:
            stack.remove(way)

    def is_mru(self, set_idx: int, way: int) -> bool:
        stack = self._stacks[set_idx]
        return bool(stack) and stack[0] == way

    def position(self, set_idx: int, way: int) -> int:
        """Recency-stack position of ``way`` (0 = MRU); -1 if absent."""
        stack = self._stacks[set_idx]
        try:
            return stack.index(way)
        except ValueError:
            return -1

    def stack(self, set_idx: int) -> Sequence[int]:
        """The recency stack (MRU first) — read-only view for tests."""
        return tuple(self._stacks[set_idx])
