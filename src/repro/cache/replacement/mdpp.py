"""Static Minimal Disturbance Placement and Promotion (MDPP).

MDPP [Teran et al., HPCA 2016] enhances tree PLRU by allowing
insertion and promotion into any of the 16 distinct positions a 16-way
tree encodes, using only the 15 tree bits per set (the paper's quoted
15-bits-per-set / 3.75 KB overhead, Section 4.4).  *Static* MDPP fixes
one insertion position and one promotion position for all blocks; it is
the default single-thread replacement policy underneath MPPPB
(Section 3.7).

Promotion is monotone: a block is never demoted by its own hit — if it
already sits at a better (smaller) position than the static promotion
target, its bits are left alone.
"""

from __future__ import annotations

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.plru import PLRUTree


class MDPPPolicy(ReplacementPolicy):
    """Static MDPP with configurable insertion/promotion positions.

    The defaults (insert near the middle of the stack, promote most of
    the way up) follow the static-MDPP observation that inserting at
    MRU wastes protection on never-reused blocks.  They can be
    overridden; MPPPB overrides per block via :meth:`place`.
    """

    name = "mdpp"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        insert_position: int = None,
        promote_position: int = None,
    ) -> None:
        super().__init__(num_sets, ways)
        if insert_position is None:
            # Default: three quarters down the stack (position 11 of 16).
            insert_position = ways - ways // 4 - 1
        if promote_position is None:
            promote_position = min(1, ways - 1)
        if not 0 <= insert_position < ways:
            raise ValueError("insert_position out of range")
        if not 0 <= promote_position < ways:
            raise ValueError("promote_position out of range")
        self.insert_position = insert_position
        self.promote_position = promote_position
        self.trees = [PLRUTree(ways) for _ in range(num_sets)]

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        return self.trees[set_idx].victim()

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self.trees[set_idx].place(way, self.insert_position)

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        tree = self.trees[set_idx]
        if tree.position(way) > self.promote_position:
            tree.place(way, self.promote_position)

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self.trees[set_idx].position(way) == 0

    def place(self, set_idx: int, way: int, position: int) -> None:
        """Direct placement hook for prediction-driven policies."""
        self.trees[set_idx].place(way, position)

    def position(self, set_idx: int, way: int) -> int:
        return self.trees[set_idx].position(way)
