"""Random replacement — the simplest possible baseline.

Not evaluated in the paper, but invaluable as a sanity bound in tests:
any recency-aware policy should beat it on workloads with temporal
locality.
"""

from __future__ import annotations

import random

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way."""

    name = "random"

    def __init__(self, num_sets: int, ways: int, seed: int = 0xDECAF) -> None:
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        return self._rng.randrange(self.ways)

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        pass

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        pass
