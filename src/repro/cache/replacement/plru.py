"""Tree-based pseudo-LRU and its position-addressable generalization.

Tree PLRU keeps ``ways - 1`` direction bits per set, arranged as a
complete binary tree whose leaves are the ways.  Each bit points toward
the subtree holding the pseudo-LRU victim; following the bits from the
root reaches the victim way, and protecting a way flips every bit on
its root path away from it.

The generalization (used by static MDPP, Section 3.7) is to treat the
root-path bits of a way as a binary number: the way's *position*.  Bit
``k`` of the position (``k = 0`` for the deepest level) is 1 when the
node at that level points **toward** the way.  Position 0 is the most
protected (classic MRU insertion); position ``ways - 1`` is the
immediate victim.  Placing or promoting a block to position ``p``
writes only the ``log2(ways)`` bits on its root path — the "minimal
disturbance" property: other subtrees are untouched.
"""

from __future__ import annotations

from typing import List

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy


class PLRUTree:
    """Direction bits for one cache set."""

    __slots__ = ("ways", "levels", "bits")

    def __init__(self, ways: int) -> None:
        if ways < 2 or ways & (ways - 1):
            raise ValueError("tree PLRU needs a power-of-two way count >= 2")
        self.ways = ways
        self.levels = ways.bit_length() - 1
        self.bits: List[int] = [0] * (ways - 1)

    def victim(self) -> int:
        """Follow the direction bits from the root to the victim way."""
        node = 0
        for _ in range(self.levels):
            node = 2 * node + 1 + self.bits[node]
        return node - (self.ways - 1)

    def position(self, way: int) -> int:
        """Read ``way``'s position from its root-path bits."""
        node = 0
        position = 0
        for level in range(self.levels):
            direction = (way >> (self.levels - 1 - level)) & 1
            toward = int(self.bits[node] == direction)
            position = (position << 1) | toward
            node = 2 * node + 1 + direction
        return position

    def place(self, way: int, position: int) -> None:
        """Write ``way``'s root-path bits so it occupies ``position``."""
        if not 0 <= position < self.ways:
            raise ValueError(f"position {position} out of range 0..{self.ways - 1}")
        node = 0
        for level in range(self.levels):
            direction = (way >> (self.levels - 1 - level)) & 1
            toward = (position >> (self.levels - 1 - level)) & 1
            self.bits[node] = direction if toward else 1 - direction
            node = 2 * node + 1 + direction

    def promote(self, way: int) -> None:
        """Classic PLRU touch: point every root-path bit away."""
        self.place(way, 0)


class TreePLRUPolicy(ReplacementPolicy):
    """Plain tree PLRU: MRU insertion, MRU promotion."""

    name = "plru"

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self.trees = [PLRUTree(ways) for _ in range(num_sets)]

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        return self.trees[set_idx].victim()

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self.trees[set_idx].promote(way)

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self.trees[set_idx].promote(way)

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self.trees[set_idx].position(way) == 0
