"""Replacement-policy interface for the last-level cache.

The LLC simulator drives policies through four events:

1. ``should_bypass(set_idx, ctx)`` — asked on every miss; True keeps
   the block out of the LLC entirely (it is still serviced to the core).
2. ``choose_victim(set_idx, ctx)`` — asked on a miss in a full set.
3. ``on_fill(set_idx, way, ctx)`` — the block was installed; the policy
   sets its placement state (recency position, RRPV, tree bits...).
4. ``on_hit(set_idx, way, ctx)`` — the block was re-referenced; the
   policy applies its promotion rule.

``on_evict`` notifies about evictions (for predictors that train on
them) and ``prepare`` hands future knowledge to offline policies
(Belady's MIN).  ``is_mru`` exposes the policy's notion of the
most-recently-used position, which the ``burst`` feature needs
(Section 3.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.cache.access import AccessContext


class ReplacementPolicy(ABC):
    """Base class for LLC management policies."""

    name = "base"

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways

    def on_access(
        self, set_idx: int, ctx: AccessContext, hit: bool, way: int
    ) -> None:
        """First hook on *every* access, before any other event.

        Prediction-driven policies compute their confidence and train
        their samplers here, then reuse the result in the subsequent
        ``should_bypass`` / ``on_hit`` / ``on_fill`` calls for the same
        access.  ``way`` is -1 on a miss.
        """

    def should_bypass(self, set_idx: int, ctx: AccessContext) -> bool:
        """Whether to bypass the fill after a miss.  Default: never."""
        return False

    @abstractmethod
    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        """Pick the way to evict from a full set."""

    @abstractmethod
    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        """Apply the placement rule for a newly installed block."""

    @abstractmethod
    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        """Apply the promotion rule for a re-referenced block."""

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        """Notification that ``block`` was evicted from ``way``."""

    def is_mru(self, set_idx: int, way: int) -> bool:
        """Whether ``way`` currently sits in the policy's MRU position."""
        return False

    def prepare(self, next_uses: Sequence[int]) -> None:
        """Receive future-knowledge metadata (offline policies only)."""

    @property
    def needs_future(self) -> bool:
        """True if :meth:`prepare` must be called before simulation."""
        return False


class PolicyStats:
    """Optional bypass/decision counters policies may expose."""

    __slots__ = ("bypasses", "dead_placements", "promotions_suppressed")

    def __init__(self) -> None:
        self.bypasses = 0
        self.dead_placements = 0
        self.promotions_suppressed = 0
