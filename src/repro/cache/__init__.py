"""Cache structures, access contexts, and replacement policies."""

from repro.cache.access import PREFETCH_PC, AccessContext, PCHistory
from repro.cache.cache import FastLRUCache, SetAssociativeCache

__all__ = [
    "PREFETCH_PC",
    "AccessContext",
    "PCHistory",
    "FastLRUCache",
    "SetAssociativeCache",
]
