"""Registry of all cache management policies under study (Section 4.3).

Gives benches, examples, and the runners a single place to construct a
policy by name with the right geometry.  MPPPB policies accept an
explicit :class:`~repro.core.mpppb.MPPPBConfig` via ``mpppb_config``;
the convenience names ``mpppb-1a`` / ``mpppb-1b`` / ``mpppb-mp`` use
the published presets.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.belady import BeladyPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.mdpp import MDPPPolicy
from repro.cache.replacement.plru import TreePLRUPolicy
from repro.cache.replacement.random_ import RandomPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.presets import multi_core_tuned_config, single_thread_config
from repro.predictors.hawkeye import HawkeyePolicy
from repro.predictors.perceptron import PerceptronPolicy
from repro.predictors.sdbp import SDBPPolicy
from repro.predictors.ship import SHiPPolicy

PolicyFactory = Callable[[int, int], ReplacementPolicy]

_SIMPLE: Dict[str, PolicyFactory] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "plru": TreePLRUPolicy,
    "srrip": SRRIPPolicy,
    "brrip": BRRIPPolicy,
    "drrip": DRRIPPolicy,
    "mdpp": MDPPPolicy,
    "min": BeladyPolicy,
    "sdbp": SDBPPolicy,
    "ship": SHiPPolicy,
    "perceptron": PerceptronPolicy,
    "hawkeye": HawkeyePolicy,
}


def policy_names() -> list:
    """All registered policy names."""
    return sorted(_SIMPLE) + ["mpppb", "mpppb-1a", "mpppb-1b", "mpppb-mp"]


def make_policy(
    name: str,
    num_sets: int,
    ways: int,
    mpppb_config: Optional[MPPPBConfig] = None,
) -> ReplacementPolicy:
    """Construct a policy by registry name."""
    if name in _SIMPLE:
        return _SIMPLE[name](num_sets, ways)
    if name == "mpppb":
        if mpppb_config is None:
            raise ValueError("policy 'mpppb' requires an explicit mpppb_config")
        return MPPPBPolicy(num_sets, ways, mpppb_config)
    if name == "mpppb-1a":
        return MPPPBPolicy(num_sets, ways, mpppb_config or single_thread_config("a"))
    if name == "mpppb-1b":
        return MPPPBPolicy(num_sets, ways, mpppb_config or single_thread_config("b"))
    if name == "mpppb-mp":
        return MPPPBPolicy(num_sets, ways, mpppb_config or multi_core_tuned_config())
    raise ValueError(f"unknown policy {name!r}; choose from {policy_names()}")


def policy_factory(
    name: str, mpppb_config: Optional[MPPPBConfig] = None
) -> PolicyFactory:
    """Curry :func:`make_policy` into a geometry-taking factory."""

    def factory(num_sets: int, ways: int) -> ReplacementPolicy:
        return make_policy(name, num_sets, ways, mpppb_config)

    factory.__name__ = f"factory_{name}"
    return factory
