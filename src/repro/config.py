"""Scale configuration for the reproduction.

The paper simulates one-billion-instruction simpoints on a C++
simulator; a pure-Python reproduction must scale trace lengths, mix
counts and search budgets down while keeping the *ratios* that drive
policy behavior (working-set size relative to cache capacity, sampler
coverage relative to set count) intact.  ``ReproScale`` centralizes
every such knob; named presets cover unit tests (``tiny``), the
benchmark harness (``small``, the default) and full-fidelity runs
(``paper``).

Benches honor the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.sim.hierarchy import HierarchyConfig


@dataclass(frozen=True)
class ReproScale:
    """Every knob that trades fidelity for runtime.

    Attributes:
        name: preset name.
        hierarchy: cache geometry for single-thread runs.
        multi_hierarchy: cache geometry for 4-core shared-LLC runs.
        segment_accesses: memory accesses per workload segment.
        warmup_fraction: leading fraction of each segment used to warm
            structures before measurement begins (the paper warms with
            500 M of 1.5 B instructions, i.e. one third).
        mix_count: total multi-programmed mixes generated.
        train_mix_count: leading mixes reserved for parameter training
            (the paper uses 100 of 1000).
        random_feature_sets: feature sets sampled in the Figure 3
            random search.
        hillclimb_steps: hill-climbing iterations per run.
    """

    name: str
    hierarchy: HierarchyConfig
    multi_hierarchy: HierarchyConfig
    segment_accesses: int
    warmup_fraction: float
    mix_count: int
    train_mix_count: int
    random_feature_sets: int
    hillclimb_steps: int

    def with_segment_accesses(self, accesses: int) -> "ReproScale":
        return replace(self, segment_accesses=accesses)


def _single_thread_hierarchy(llc_kib: int) -> HierarchyConfig:
    return HierarchyConfig(
        l1_kib=32,
        l1_ways=8,
        l2_kib=256,
        l2_ways=8,
        llc_kib=llc_kib,
        llc_ways=16,
        block_bytes=64,
    )


TINY = ReproScale(
    name="tiny",
    hierarchy=HierarchyConfig(
        l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8, llc_kib=64, llc_ways=16, block_bytes=64
    ),
    multi_hierarchy=HierarchyConfig(
        l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8, llc_kib=256, llc_ways=16, block_bytes=64
    ),
    segment_accesses=4_000,
    warmup_fraction=0.25,
    mix_count=6,
    train_mix_count=2,
    random_feature_sets=8,
    hillclimb_steps=4,
)

SMALL = ReproScale(
    name="small",
    hierarchy=HierarchyConfig(
        l1_kib=8, l1_ways=8, l2_kib=64, l2_ways=8, llc_kib=512, llc_ways=16, block_bytes=64
    ),
    multi_hierarchy=HierarchyConfig(
        l1_kib=8, l1_ways=8, l2_kib=64, l2_ways=8, llc_kib=2048, llc_ways=16, block_bytes=64
    ),
    segment_accesses=60_000,
    warmup_fraction=0.25,
    mix_count=24,
    train_mix_count=4,
    random_feature_sets=24,
    hillclimb_steps=12,
)

PAPER = ReproScale(
    name="paper",
    hierarchy=_single_thread_hierarchy(llc_kib=2048),
    multi_hierarchy=_single_thread_hierarchy(llc_kib=8192),
    segment_accesses=400_000,
    warmup_fraction=0.33,
    mix_count=1000,
    train_mix_count=100,
    random_feature_sets=4000,
    hillclimb_steps=500,
)

_SCALES = {"tiny": TINY, "small": SMALL, "paper": PAPER}


def get_scale(name: str = "") -> ReproScale:
    """Resolve a scale by name, falling back to ``REPRO_SCALE`` or ``small``."""
    if not name:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
