"""Command-line interface.

Four subcommands cover the library's main entry points::

    python -m repro.cli compare  --benchmarks soplex mcf --policies lru mpppb-1a
    python -m repro.cli roc      --benchmark sphinx3
    python -m repro.cli search   --candidates 20 --steps 10
    python -m repro.cli mix      --mixes 4 --policies lru mpppb-mp

All commands honor ``--scale`` (or the ``REPRO_SCALE`` environment
variable) and print the same table layouts the bench harness uses.

``compare``, ``search``, and ``mix`` run through the ``repro.exec``
engine: ``--jobs N`` (or ``REPRO_JOBS``) fans independent experiment
cells across worker processes, and ``--cache-dir`` (or
``REPRO_CACHE_DIR``; default ``.repro-cache``, ``off`` to disable)
reuses results across invocations via the on-disk cache.

Failure handling (DESIGN.md section 11): ``--retries`` re-runs failing
cells, ``--cell-timeout`` bounds per-cell wall time, and ``--on-error``
picks between completing with partial results (``collect``, the
default) and failing fast (``raise``).  Interrupted or failed runs are
recorded in run manifests; ``repro.cli resume`` lists them and
re-drives the unfinished cells.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import obs
from repro import (
    TrainedMultiperspective,
    build_suite,
    generate_mixes,
    get_scale,
    measure_roc,
    normalized_weighted_speedups,
    policy_names,
    single_thread_config,
)
from repro.exec import (
    CellExecutionError,
    ConfigError,
    MixCell,
    ParallelRunner,
    SingleCell,
    SuiteSpec,
    TraceSpec,
    list_runs,
    resolve_store,
)
from repro.report import (
    mpki_table,
    speedup_table,
    weighted_speedup_summary,
)
from repro.search.evaluator import FeatureSetEvaluator
from repro.traces.ingest import (
    DEFAULT_CHUNK,
    FORMATS,
    IngestSpec,
    parse_weights,
    resolve_ingest,
)
from repro.traces.workloads import benchmark_names


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="",
                        help="tiny / small / paper (default: $REPRO_SCALE)")


def _add_trace(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-file", default=None, metavar="PATH",
                        help="ingest a real trace file as an extra workload "
                             "(gzip transparent; default: $REPRO_TRACE_FILE)")
    parser.add_argument("--trace-format", default=None, choices=FORMATS,
                        help="trace format (default: $REPRO_TRACE_FORMAT, "
                             "else inferred from the file name)")
    parser.add_argument("--trace-name", default=None, metavar="NAME",
                        help="workload name for the ingested trace "
                             "(default: $REPRO_TRACE_NAME or the file stem)")
    parser.add_argument("--trace-skip", type=int, default=None, metavar="N",
                        help="records to skip before the measured window "
                             "(default: $REPRO_TRACE_SKIP or 0)")
    parser.add_argument("--trace-accesses", type=int, default=None,
                        metavar="N",
                        help="records per segment window (default: "
                             "$REPRO_TRACE_ACCESSES or the --scale budget)")
    parser.add_argument("--trace-segments", type=int, default=None,
                        metavar="K",
                        help="consecutive SimPoint-style segment windows "
                             "(default: $REPRO_TRACE_SEGMENTS or 1)")
    parser.add_argument("--trace-weights", default=None, metavar="W1,W2,...",
                        help="per-segment weights (default: "
                             "$REPRO_TRACE_WEIGHTS or equal)")


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"{name} must be an integer, got {raw!r}") from None


def _resolve_trace(args: argparse.Namespace,
                   default_accesses: int) -> Optional[IngestSpec]:
    """Merge --trace-* flags with REPRO_TRACE_* knobs into a spec.

    Resolution happens once, here: the content digest is computed (or
    revalidated from its sidecar) before any cell is scheduled, so
    workers — local, fleet, or ssh — receive a finished recipe and only
    ever re-open the file to decode it.
    """
    path = getattr(args, "trace_file", None) \
        or os.environ.get("REPRO_TRACE_FILE", "")
    if not path:
        return None
    fmt = (getattr(args, "trace_format", None)
           or os.environ.get("REPRO_TRACE_FORMAT", "") or None)
    name = (getattr(args, "trace_name", None)
            or os.environ.get("REPRO_TRACE_NAME", "") or None)
    skip = getattr(args, "trace_skip", None)
    if skip is None:
        skip = _int_env("REPRO_TRACE_SKIP", 0)
    accesses = getattr(args, "trace_accesses", None)
    if accesses is None:
        accesses = _int_env("REPRO_TRACE_ACCESSES", default_accesses)
    segments = getattr(args, "trace_segments", None)
    if segments is None:
        segments = _int_env("REPRO_TRACE_SEGMENTS", 1)
    weights_raw = (getattr(args, "trace_weights", None)
                   or os.environ.get("REPRO_TRACE_WEIGHTS", ""))
    weights = parse_weights(weights_raw) if weights_raw else ()
    chunk = _int_env("REPRO_TRACE_CHUNK", DEFAULT_CHUNK)
    return resolve_ingest(
        path, fmt=fmt, name=name, skip=skip, accesses=accesses,
        segments=segments, weights=weights, chunk=chunk,
        reserved=benchmark_names(),
    )


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: $REPRO_JOBS or 1; "
                             "0 = one per CPU)")
    parser.add_argument("--cache-dir", default="", metavar="DIR",
                        help="on-disk result cache (default: $REPRO_CACHE_DIR "
                             "or .repro-cache; 'off' disables)")
    parser.add_argument("--on-error", default=None,
                        choices=("collect", "raise"),
                        help="on cell failure: finish with partial results "
                             "('collect', default) or fail fast ('raise'); "
                             "default: $REPRO_ON_ERROR")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-run a failing cell up to N times "
                             "(default: $REPRO_RETRIES or 0)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="abandon cells running longer than this "
                             "(default: $REPRO_CELL_TIMEOUT; off)")
    parser.add_argument("--telemetry", action="store_true",
                        help="record spans and metrics to "
                             "<cache>/runs/<run-id>.events.jsonl "
                             "(also: REPRO_TELEMETRY=1); inspect with "
                             "'repro.cli stats'")
    parser.add_argument("--backend", default=None,
                        choices=("local", "fleet", "ssh"),
                        help="execution backend: in-process pool "
                             "('local', default), long-lived worker "
                             "subprocesses ('fleet'), or remote workers "
                             "over ssh ('ssh'); default: $REPRO_BACKEND")
    parser.add_argument("--workers", default=None, metavar="SPEC",
                        help="worker spec: a count for the fleet backend "
                             "('4'), or 'host[:slots],...' for ssh "
                             "(default: $REPRO_WORKERS or --jobs)")
    parser.add_argument("--shared-store", default=None, metavar="DIR",
                        help="shared read-through result-store tier "
                             "(default: $REPRO_SHARED_STORE; 'off' "
                             "disables)")
    parser.add_argument("--hedge", type=float, default=None, metavar="MULT",
                        help="duplicate cells running MULT times longer "
                             "than the observed median onto idle workers; "
                             "first completion wins (default: $REPRO_HEDGE; "
                             "off)")


#: Engine backing the currently dispatched command, so the top-level
#: KeyboardInterrupt handler can report partial progress.
_ACTIVE_ENGINE: Optional[ParallelRunner] = None


def _engine(args: argparse.Namespace) -> ParallelRunner:
    global _ACTIVE_ENGINE
    # The telemetry switch is process-global; decide it both ways here
    # so back-to-back main() calls in one process never leak state.
    if getattr(args, "telemetry", False) or obs.telemetry_default():
        obs.enable()
    else:
        obs.disable()
    _ACTIVE_ENGINE = ParallelRunner.from_options(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        on_error=getattr(args, "on_error", None),
        retries=getattr(args, "retries", None),
        cell_timeout=getattr(args, "cell_timeout", None),
        command=getattr(args, "argv", None),
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
        shared_store=getattr(args, "shared_store", None) or "",
        hedge=getattr(args, "hedge", None),
    )
    return _ACTIVE_ENGINE


def _resume_hint(engine: Optional[ParallelRunner]) -> Optional[str]:
    manifest = engine.last_manifest if engine is not None else None
    if manifest is None or manifest.is_complete:
        return None
    return (f"resume with: python -m repro.cli resume "
            f"{manifest.run_id[:12]}")


def _report_failures(engine: ParallelRunner) -> bool:
    """Print terminal cell failures (if any); True when the run failed."""
    report = engine.last_report
    if report is None or not report.failures:
        return False
    print(report.failures_table(), file=sys.stderr)
    print(f"error: {len(report.failures)} cell(s) failed; "
          f"partial results were cached", file=sys.stderr)
    hint = _resume_hint(engine)
    if hint:
        print(hint, file=sys.stderr)
    return True


def cmd_compare(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    ingest = _resolve_trace(args, scale.segment_accesses)
    if args.benchmarks:
        names = list(args.benchmarks)
    elif ingest is not None:
        names = []  # --trace-file alone compares just the ingested workload
    else:
        names = ["soplex", "mcf", "lbm", "gamess"]
    unknown = set(names) - set(benchmark_names())
    if unknown:
        print(f"unknown benchmarks: {sorted(unknown)}", file=sys.stderr)
        return 2
    if ingest is not None:
        names.append(ingest.name)
    ordered = sorted(dict.fromkeys(names))

    def _trace_spec(name: str) -> TraceSpec:
        spec = TraceSpec(name, scale.hierarchy.llc_bytes,
                         scale.segment_accesses)
        if ingest is not None and name == ingest.name:
            spec = TraceSpec(name, scale.hierarchy.llc_bytes,
                             scale.segment_accesses, ingest=ingest)
        return spec

    engine = _engine(args)
    results = {}
    failed = False
    for policy in args.policies:
        cells = [
            SingleCell(
                trace=_trace_spec(name),
                policy=policy,
                hierarchy=scale.hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for name in ordered
        ]
        results[policy] = dict(
            zip(ordered, engine.run(cells, label=f"compare/{policy}"))
        )
        print(engine.last_report.summary())
        failed = _report_failures(engine) or failed
    if failed:
        return 1
    print(mpki_table(results))
    if "lru" in results and len(results) > 1:
        print()
        print(speedup_table(results, baseline="lru"))
    return 0


def cmd_roc(args: argparse.Namespace) -> int:
    from repro.predictors.perceptron import PerceptronPredictor
    from repro.predictors.sdbp import SDBPPredictor
    from repro.sim.hierarchy import UpperLevels
    from repro.traces.workloads import build_segments
    from repro.util.stats import auc

    scale = get_scale(args.scale)
    hierarchy = scale.hierarchy
    num_sets = hierarchy.llc_bytes // (hierarchy.llc_ways * 64)
    ingest = _resolve_trace(args, scale.segment_accesses)
    if ingest is not None:
        segment = ingest.build()[0]
    else:
        segment = build_segments(args.benchmark, hierarchy.llc_bytes,
                                 scale.segment_accesses)[0]
    upper = UpperLevels(hierarchy).run(segment.trace)
    predictors = {
        "sdbp": SDBPPredictor(num_sets),
        "perceptron": PerceptronPredictor(num_sets),
        "multiperspective": TrainedMultiperspective(
            single_thread_config("a"), llc_sets=num_sets),
    }
    print(f"{'predictor':18s} {'AUC':>6s}")
    for name, predictor in predictors.items():
        result = measure_roc(predictor, upper.llc_stream, segment.trace.pcs,
                             hierarchy.llc_bytes, hierarchy.llc_ways,
                             warmup=len(upper.llc_stream) // 4)
        points = result.curve(result.default_thresholds(49))
        print(f"{name:18s} {auc(points):6.3f}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.search import hill_climb, random_search

    scale = get_scale(args.scale)
    accesses = max(2_000, scale.segment_accesses // 4)
    ingest = _resolve_trace(args, accesses)
    spec = SuiteSpec(
        scale.hierarchy.llc_bytes, accesses,
        names=("soplex", "lbm", "gamess"),
        ingest=() if ingest is None else (ingest,),
    )
    engine = _engine(args)
    evaluator = FeatureSetEvaluator.from_spec(
        spec, scale.hierarchy, warmup_fraction=scale.warmup_fraction,
        executor=engine, batch_size=args.batch_size,
    )
    candidates = random_search(evaluator, args.candidates, seed=args.seed)
    if engine.last_report is not None:
        print(engine.last_report.summary())
    print(f"best random set: {candidates[0].mpki:.3f} MPKI "
          f"(worst {candidates[-1].mpki:.3f})")
    refined = hill_climb(evaluator, candidates[0].features, steps=args.steps,
                         seed=args.seed)
    print(f"hill-climbed:    {refined.mpki:.3f} MPKI")
    for feature in refined.features:
        print(f"  {feature.spec()}")
    return 0


def cmd_mix(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    accesses = max(2_000, scale.segment_accesses // 3)
    ingest = _resolve_trace(args, accesses)
    suite_spec = SuiteSpec(scale.hierarchy.llc_bytes, accesses,
                           ingest=() if ingest is None else (ingest,))
    if ingest is None:
        suite = build_suite(scale.hierarchy.llc_bytes, accesses)
        segments = [s for name in sorted(suite) for s in suite[name]]
    else:
        segments = suite_spec.build()
    mixes = generate_mixes(segments, args.mixes)
    engine = _engine(args)
    results = {}
    failed = False
    for policy in args.policies:
        cells = [
            MixCell(
                suite=suite_spec,
                mix_name=mix.name,
                segment_names=tuple(s.name for s in mix.segments),
                policy=policy,
                hierarchy=scale.multi_hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for mix in mixes
        ]
        results[policy] = engine.run(cells, label=f"mix/{policy}")
        print(engine.last_report.summary())
        failed = _report_failures(engine) or failed
    if failed:
        return 1
    if "lru" not in results:
        print("note: add 'lru' to --policies for normalized speedups")
        for policy, mix_results in results.items():
            ws = [r.weighted_speedup for r in mix_results]
            print(f"{policy}: raw weighted speedups {[round(v, 3) for v in ws]}")
        return 0
    normalized = normalized_weighted_speedups(results, baseline="lru")
    print(weighted_speedup_summary(
        {p: v for p, v in normalized.items() if p != "lru"}
    ))
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_POLICIES,
        build_report,
        check_report,
        format_report,
        write_report,
    )

    policies = tuple(args.policies) if args.policies else DEFAULT_POLICIES
    report = build_report(
        scale_name=args.scale,
        benchmark=args.benchmark,
        benchmarks=tuple(args.compare_benchmarks),
        policies=policies,
        repeats=args.repeats,
    )
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"wrote {path}")
    if args.check:
        failures = check_report(report, tolerance=args.tolerance)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def _span_rows(events, wall_s: float, top: int):
    """Aggregate span events into tree-ordered table rows."""
    totals = {}
    for event in events:
        if event.get("type") != "span":
            continue
        path = event.get("path", event.get("name", "?"))
        count, total = totals.get(path, (0, 0.0))
        totals[path] = (count + 1, total + float(event.get("dur_s", 0.0)))
    rows = []
    for path in sorted(totals):
        count, total = totals[path]
        depth = path.count("/")
        name = "  " * depth + path.rsplit("/", 1)[-1]
        share = total / wall_s if wall_s > 0 else 0.0
        rows.append([name, count, total, 1000.0 * total / count,
                     f"{share:.0%}"])
    return rows[: top if top > 0 else None]


def _coverage(events, wall_s: float) -> float:
    """Fraction of run wall time covered by top-level spans."""
    drive = sum(float(e.get("dur_s", 0.0)) for e in events
                if e.get("type") == "span" and e.get("cell") is None
                and e.get("path") == "drive")
    if drive <= 0.0:
        drive = sum(float(e.get("dur_s", 0.0)) for e in events
                    if e.get("type") == "span" and e.get("path") == "cell")
    return min(1.0, drive / wall_s) if wall_s > 0 else 0.0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.events import list_event_logs, read_events
    from repro.obs.metrics import Histogram
    from repro.report import format_table

    store = resolve_store(args.cache_dir)
    if store is None:
        print("error: stats needs the result cache "
              "(--cache-dir / REPRO_CACHE_DIR is disabled)", file=sys.stderr)
        return 2
    logs = list(list_event_logs(store.root))
    if not args.run_id:
        if not logs:
            print("no recorded telemetry (run a command with --telemetry)")
            return 0
        rows = []
        for run_id, path in logs:
            events = read_events(path)
            run = events[0] if events and events[0].get("type") == "run" else {}
            spans = sum(1 for e in events if e.get("type") == "span")
            rows.append([run_id[:12], run.get("label", "?"),
                         run.get("cells", "?"), spans,
                         float(run.get("wall_s", 0.0))])
        print(format_table(["run id", "label", "cells", "spans", "wall s"],
                           rows))
        return 0

    matches = [(run_id, path) for run_id, path in logs
               if run_id.startswith(args.run_id)]
    if not matches:
        print(f"error: no telemetry matches {args.run_id!r}", file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(f"error: run id {args.run_id!r} is ambiguous "
              f"({len(matches)} matches); use more digits", file=sys.stderr)
        return 2
    run_id, path = matches[0]
    events = read_events(path)
    if not events:
        print(f"error: telemetry for {run_id[:12]} is unreadable",
              file=sys.stderr)
        return 2
    run = events[0] if events[0].get("type") == "run" else {}
    wall_s = float(run.get("wall_s", 0.0))
    print(f"run {run_id[:12]}  label={run.get('label', '?')}  "
          f"jobs={run.get('jobs', '?')}  "
          f"cells={run.get('cells', '?')}/{run.get('planned', '?')}  "
          f"wall={wall_s:.2f}s")
    print(f"span coverage: {_coverage(events, wall_s):.0%} of wall time")

    span_rows = _span_rows(events, wall_s, args.top)
    if span_rows:
        print()
        print(format_table(["span", "count", "total s", "mean ms", "wall"],
                           span_rows))

    counters = {}
    for event in events:
        if event.get("type") == "counter":
            name = event.get("name", "?")
            counters[name] = counters.get(name, 0) + int(event.get("value", 0))
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        print()
        print(format_table(["counter", "value"],
                           [[name, value] for name, value
                            in ranked[: args.top if args.top > 0 else None]]))

    hists = {}
    for event in events:
        if event.get("type") != "hist":
            continue
        name = event.get("name", "?")
        try:
            if name in hists:
                hists[name].merge(event)
            else:
                hists[name] = Histogram.from_dict(event)
        except (KeyError, ValueError, TypeError):
            continue
    if hists:
        rows = []
        for name in sorted(hists):
            hist = hists[name]
            rows.append([name, hist.count, hist.mean,
                         0.0 if hist.min is None else float(hist.min),
                         0.0 if hist.max is None else float(hist.max),
                         "/".join(str(c) for c in hist.counts)])
        print()
        print(format_table(
            ["histogram", "count", "mean", "min", "max", "buckets"], rows))
    return 0


def _parse_size(text: str) -> int:
    """``500M``/``2G``-style sizes to bytes (plain ints pass through)."""
    units = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    text = text.strip().lower().rstrip("b")
    if text and text[-1] in units:
        return int(float(text[:-1]) * units[text[-1]])
    return int(text)


def _format_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec.artifacts import peek_kind
    from repro.obs.events import list_event_logs, read_events
    from repro.report import format_table

    store = resolve_store(args.cache_dir)
    if store is None:
        print("error: cache maintenance needs the result cache "
              "(--cache-dir / REPRO_CACHE_DIR is disabled)", file=sys.stderr)
        return 2

    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} blobs from {store.root}")
        return 0

    if args.action == "gc":
        if args.max_entries is None and args.max_bytes is None:
            print("error: cache gc needs --max-entries and/or --max-bytes",
                  file=sys.stderr)
            return 2
        max_bytes = _parse_size(args.max_bytes) if args.max_bytes else None
        before = store.usage()
        removed = store.gc(max_entries=args.max_entries, max_bytes=max_bytes)
        after = store.usage()
        print(f"gc: removed {removed} blobs "
              f"({_format_bytes(before['bytes'] - after['bytes'])}); "
              f"{after['entries']} blobs "
              f"({_format_bytes(after['bytes'])}) remain")
        return 0

    # stats: usage totals, per-kind breakdown, recorded hit counters.
    usage = store.usage()
    print(f"cache {store.root}")
    print(f"  {usage['entries']} blobs, {_format_bytes(usage['bytes'])}  "
          f"(results: {usage['results']} / "
          f"{_format_bytes(usage['result_bytes'])}, artifacts: "
          f"{usage['artifacts']} / {_format_bytes(usage['artifact_bytes'])})")

    kinds: dict = {}
    for path in store._blobs():
        if path.suffix == ".json":
            continue
        kind = peek_kind(path) or "?"
        count, total = kinds.get(kind, (0, 0))
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        kinds[kind] = (count + 1, total + size)
    if kinds:
        rows = [[kind, count, _format_bytes(total)]
                for kind, (count, total) in sorted(kinds.items())]
        print(format_table(["artifact kind", "blobs", "bytes"], rows))

    # Hit/miss counters live in per-run telemetry, not the store
    # itself (lookups must stay write-free): sum the recorded runs.
    counters: dict = {}
    runs = 0
    for _, path in list_event_logs(store.root):
        events = read_events(path)
        if not events:
            continue
        runs += 1
        for event in events:
            if event.get("type") == "counter" and event.get("cell") is None:
                name = event.get("name", "?")
                counters[name] = counters.get(name, 0) + int(
                    event.get("value", 0))
    wanted = [name for name in sorted(counters)
              if name.startswith(("exec/", "store/"))]
    if wanted:
        print(f"counters over {runs} recorded runs:")
        print(format_table(
            ["counter", "total"],
            [[name, counters[name]] for name in wanted]))
    elif runs == 0:
        print("no recorded telemetry (run a command with --telemetry "
              "to record hit counters)")
    return 0


def _override_exec_args(command: List[str],
                        args: argparse.Namespace) -> List[str]:
    """Apply ``resume`` execution overrides to a recorded argv.

    Any override given to ``resume`` (``--jobs`` / ``--backend`` /
    ``--workers`` / ``--shared-store`` / ``--hedge``) replaces the
    recorded flag,
    whether the original used the space or ``=`` form.  Flags not
    overridden pass through untouched.  Exec flags never enter the
    run id (see :data:`repro.exec.manifest.EXEC_FLAGS`), so the
    re-driven command reopens the same manifest.
    """
    overrides = {}
    if args.jobs is not None:
        overrides["--jobs"] = str(args.jobs)
    if args.backend is not None:
        overrides["--backend"] = args.backend
    if args.workers is not None:
        overrides["--workers"] = args.workers
    if args.shared_store is not None:
        overrides["--shared-store"] = args.shared_store
    if getattr(args, "hedge", None) is not None:
        overrides["--hedge"] = str(args.hedge)
    if not overrides:
        return list(command)
    rebuilt: List[str] = []
    skip = False
    for part in command:
        if skip:
            skip = False
            continue
        if part in overrides:
            skip = True
            continue
        if any(part.startswith(f"{flag}=") for flag in overrides):
            continue
        rebuilt.append(part)
    for flag, value in sorted(overrides.items()):
        rebuilt.extend([flag, value])
    return rebuilt


def cmd_resume(args: argparse.Namespace) -> int:
    store = resolve_store(args.cache_dir)
    if store is None:
        print("error: resume needs the result cache "
              "(--cache-dir / REPRO_CACHE_DIR is disabled)", file=sys.stderr)
        return 2
    manifests = list_runs(store.root)
    if not args.run_id:
        if not manifests:
            print("no recorded runs")
            return 0
        print(f"{'run id':12s} {'state':>10s} {'progress':>14s}  command")
        for manifest in manifests:
            state = "complete" if manifest.is_complete else "resumable"
            done = len(manifest.completed())
            command = " ".join(manifest.command) or f"<library: {manifest.label}>"
            print(f"{manifest.run_id[:12]:12s} {state:>10s} "
                  f"{done:>6d}/{len(manifest.cells):<7d}  {command}")
        return 0
    matches = [manifest for manifest in manifests
               if manifest.run_id.startswith(args.run_id)]
    if not matches:
        print(f"error: no recorded run matches {args.run_id!r}",
              file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(f"error: run id {args.run_id!r} is ambiguous "
              f"({len(matches)} matches); use more digits", file=sys.stderr)
        return 2
    manifest = matches[0]
    if manifest.is_complete:
        print(f"run {manifest.run_id[:12]} is already complete "
              f"({manifest.progress()})")
        return 0
    if not manifest.command:
        print(f"error: run {manifest.run_id[:12]} was launched from the "
              f"library, not the CLI; re-run it from its caller",
              file=sys.stderr)
        return 2
    command = _override_exec_args(list(manifest.command), args)
    print(f"resuming {manifest.run_id[:12]} ({manifest.progress()}): "
          f"{' '.join(command)}")
    # Completed cells are store hits, so only unfinished cells recompute.
    return main(command)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiperspective Reuse Prediction reproduction CLI",
        epilog="Accelerator knobs (all bit-identical to the reference "
               "simulator): REPRO_STAGE2_KERNEL=off|numpy|numba selects "
               "the columnar Stage-2 replay backend (default: best "
               "available), REPRO_STAGE2_BATCH=off disables shared-context "
               "batching, REPRO_STAGE3_VECTOR=off disables vectorized "
               "timing, REPRO_GRAPH=off disables the cost-aware "
               "experiment-graph scheduler.  --stage2-kernel and --graph "
               "override their knobs for one invocation.  Real traces: "
               "--trace-file/--trace-format (or REPRO_TRACE_FILE, "
               "REPRO_TRACE_FORMAT, REPRO_TRACE_NAME, REPRO_TRACE_SKIP, "
               "REPRO_TRACE_ACCESSES, REPRO_TRACE_SEGMENTS, "
               "REPRO_TRACE_WEIGHTS, REPRO_TRACE_CHUNK) ingest a "
               "ChampSim-style binary, text, or CSV trace as a workload.",
    )
    parser.add_argument(
        "--stage2-kernel", default=None,
        choices=["off", "numpy", "numba", "auto"], metavar="BACKEND",
        help="Stage-2 replay kernel backend (off|numpy|numba|auto); "
             "overrides REPRO_STAGE2_KERNEL for this invocation")
    parser.add_argument(
        "--graph", default=None, choices=["on", "off"],
        help="cost-aware experiment-graph scheduler (default: on); "
             "overrides REPRO_GRAPH for this invocation")
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="compare policies on benchmarks")
    compare.add_argument("--benchmarks", nargs="*", default=None,
                         metavar="NAME")
    compare.add_argument("--policies", nargs="*",
                         default=["lru", "mpppb-1a", "min"],
                         choices=policy_names(), metavar="POLICY")
    _add_scale(compare)
    _add_trace(compare)
    _add_exec(compare)
    compare.set_defaults(func=cmd_compare)

    roc = sub.add_parser("roc", help="predictor ROC accuracy (Fig. 1/8)")
    roc.add_argument("--benchmark", default="sphinx3",
                     choices=benchmark_names())
    _add_scale(roc)
    _add_trace(roc)
    roc.set_defaults(func=cmd_roc)

    search = sub.add_parser("search", help="feature search (Section 5)")
    search.add_argument("--candidates", type=int, default=10)
    search.add_argument("--steps", type=int, default=10)
    search.add_argument("--seed", type=int, default=2017)
    search.add_argument("--batch-size", type=int, default=None, metavar="K",
                        help="candidates per shared-context Stage-2 replay "
                             "(default: whole generation; "
                             "REPRO_STAGE2_BATCH=off disables batching)")
    _add_scale(search)
    _add_trace(search)
    _add_exec(search)
    search.set_defaults(func=cmd_search)

    mix = sub.add_parser("mix", help="4-core mixes (Fig. 4)")
    mix.add_argument("--mixes", type=int, default=3)
    mix.add_argument("--policies", nargs="*",
                     default=["lru", "mpppb-mp"],
                     choices=policy_names(), metavar="POLICY")
    _add_scale(mix)
    _add_trace(mix)
    _add_exec(mix)
    mix.set_defaults(func=cmd_mix)

    perf = sub.add_parser("perf", help="hot-path timings (BENCH_hotpath.json)")
    perf.add_argument("--benchmark", default="soplex",
                      choices=benchmark_names(),
                      help="workload for the per-stage micro-benchmarks")
    perf.add_argument("--compare-benchmarks", nargs="*",
                      default=["gamess", "hmmer", "povray"], metavar="NAME",
                      help="workloads for the cold/warm compare")
    perf.add_argument("--policies", nargs="*", default=None,
                      choices=policy_names(), metavar="POLICY")
    perf.add_argument("--repeats", type=int, default=3,
                      help="best-of-N repetitions per timing")
    perf.add_argument("--output", default="BENCH_hotpath.json",
                      metavar="PATH")
    perf.add_argument("--check", action="store_true",
                      help="exit 1 if the fused pipeline is slower than "
                           "the legacy path")
    perf.add_argument("--tolerance", type=float, default=1.0,
                      help="allowed fused/legacy ratio for --check")
    _add_scale(perf)
    perf.set_defaults(func=cmd_perf)

    cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk result/artifact cache")
    cache.add_argument("action", choices=["stats", "gc", "clear"],
                       help="stats: entry/byte totals, artifact kinds, and "
                            "recorded hit counters; gc: LRU-evict to the "
                            "given targets; clear: remove every blob")
    cache.add_argument("--cache-dir", default="", metavar="DIR",
                       help="cache to operate on (default: $REPRO_CACHE_DIR "
                            "or .repro-cache)")
    cache.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="gc target: keep at most N blobs")
    cache.add_argument("--max-bytes", default=None, metavar="SIZE",
                       help="gc target: keep at most SIZE bytes "
                            "(suffixes K/M/G)")
    cache.set_defaults(func=cmd_cache)

    resume = sub.add_parser(
        "resume", help="list or re-drive interrupted runs")
    resume.add_argument("run_id", nargs="?", default="",
                        help="run-id prefix to resume (omit to list runs)")
    resume.add_argument("--cache-dir", default="", metavar="DIR",
                        help="result cache holding the run manifests "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    resume.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="override the recorded --jobs for this resume")
    resume.add_argument("--backend", default=None,
                        choices=("local", "fleet", "ssh"),
                        help="override the recorded execution backend")
    resume.add_argument("--workers", default=None, metavar="SPEC",
                        help="override the recorded worker spec")
    resume.add_argument("--shared-store", default=None, metavar="DIR",
                        help="override the recorded shared store tier")
    resume.add_argument("--hedge", type=float, default=None, metavar="MULT",
                        help="override the recorded straggler-hedge multiple")
    resume.set_defaults(func=cmd_resume)

    stats = sub.add_parser(
        "stats", help="inspect recorded run telemetry (events.jsonl)")
    stats.add_argument("run_id", nargs="?", default="",
                       help="run-id prefix to inspect (omit to list runs "
                            "with telemetry)")
    stats.add_argument("--cache-dir", default="", metavar="DIR",
                       help="result cache holding the event logs "
                            "(default: $REPRO_CACHE_DIR or .repro-cache)")
    stats.add_argument("--top", type=int, default=12, metavar="K",
                       help="rows per span/metric table (0 = all)")
    stats.set_defaults(func=cmd_stats)
    return parser


def _finish_telemetry(engine: Optional[ParallelRunner]) -> None:
    """Flush trailing engine-level spans and point at the event log."""
    if engine is None or not obs.enabled():
        return
    path = engine.flush_telemetry()
    if path is not None:
        run_id = path.name.split(".", 1)[0]
        print(f"telemetry: {path}\n"
              f"inspect with: python -m repro.cli stats {run_id[:12]}",
              file=sys.stderr)


def _handle_interrupt() -> int:
    engine = _ACTIVE_ENGINE
    print("\ninterrupted", file=sys.stderr)
    if engine is not None and engine.last_report is not None:
        report = engine.last_report
        print(report.summary(), file=sys.stderr)
        print(f"interrupted: {report.cells - report.failed} cells done, "
              f"{report.failed} failed, {report.pending} pending "
              f"(completed results are cached)", file=sys.stderr)
    hint = _resume_hint(engine)
    if hint:
        print(hint, file=sys.stderr)
    return 130


def main(argv: Optional[List[str]] = None) -> int:
    global _ACTIVE_ENGINE
    parser = build_parser()
    args = parser.parse_args(argv)
    # Record the launching argv (for run manifests / `resume`) exactly
    # as the subcommand received it.
    args.argv = list(argv) if argv is not None else list(sys.argv[1:])
    if getattr(args, "stage2_kernel", None):
        os.environ["REPRO_STAGE2_KERNEL"] = args.stage2_kernel
    if getattr(args, "graph", None):
        os.environ["REPRO_GRAPH"] = args.graph
    _ACTIVE_ENGINE = None
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CellExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        hint = _resume_hint(_ACTIVE_ENGINE)
        if hint:
            print(hint, file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return _handle_interrupt()
    finally:
        _finish_telemetry(_ACTIVE_ENGINE)
        # The telemetry switch is process-global; a finished command
        # must never leave it on for whoever calls main() next.
        obs.disable()


if __name__ == "__main__":
    raise SystemExit(main())
