"""repro — a from-scratch reproduction of *Multiperspective Reuse
Prediction* (Jimenez & Teran, MICRO 2017).

The package provides:

* ``repro.core`` — the multiperspective reuse predictor and the MPPPB
  placement/promotion/bypass policy (the paper's contribution),
  including the published Table 1/2 feature sets.
* ``repro.cache`` — set-associative cache structures and replacement
  policies (LRU, tree-PLRU, SRRIP/BRRIP/DRRIP, static MDPP, Belady's
  MIN with optimal bypass).
* ``repro.predictors`` — the SDBP, Perceptron, and Hawkeye baselines.
* ``repro.cpu`` / ``repro.sim`` — stream prefetcher, analytic
  out-of-order timing, the three-stage trace-driven simulator, and the
  single-thread / multi-programmed runners.
* ``repro.traces`` — synthetic SPEC-like workloads and FIESTA-style
  multi-programmed mixes.
* ``repro.search`` — the random-search + hill-climbing feature
  exploration of Section 5.
* ``repro.exec`` — the parallel experiment engine: cache-aware fan-out
  of experiment cells across worker processes with a content-addressed
  on-disk result cache (``REPRO_JOBS`` / ``REPRO_CACHE_DIR``).

See ``examples/quickstart.py`` for a complete runnable example.
"""

from repro.config import PAPER, SMALL, TINY, ReproScale, get_scale
from repro.core import (
    MPPPBConfig,
    MPPPBPolicy,
    MultiperspectivePredictor,
    multi_core_tuned_config,
    multi_programmed_config,
    parse_feature,
    parse_feature_set,
    single_thread_config,
    table_1a_features,
    table_1b_features,
    table_2_features,
)
from repro.exec import (
    MixCell,
    ParallelRunner,
    ResultStore,
    SearchCell,
    SingleCell,
    SuiteSpec,
    TraceSpec,
    default_store,
    resolve_jobs,
)
from repro.policies import make_policy, policy_factory, policy_names
from repro.sim import (
    HierarchyConfig,
    MixResult,
    MultiProgrammedRunner,
    SingleThreadRunner,
    TrainedMultiperspective,
    cross_validated_configs,
    measure_roc,
    normalized_weighted_speedups,
    speedups_over_lru,
)
from repro.traces import (
    Segment,
    Trace,
    all_segments,
    benchmark_names,
    build_segments,
    build_suite,
    generate_mixes,
    split_train_test,
)
from repro.util import geometric_mean, mpki, weighted_speedup

__version__ = "1.0.0"

__all__ = [
    "PAPER",
    "SMALL",
    "TINY",
    "ReproScale",
    "get_scale",
    "MPPPBConfig",
    "MPPPBPolicy",
    "MultiperspectivePredictor",
    "multi_core_tuned_config",
    "multi_programmed_config",
    "parse_feature",
    "parse_feature_set",
    "single_thread_config",
    "table_1a_features",
    "table_1b_features",
    "table_2_features",
    "MixCell",
    "ParallelRunner",
    "ResultStore",
    "SearchCell",
    "SingleCell",
    "SuiteSpec",
    "TraceSpec",
    "default_store",
    "resolve_jobs",
    "make_policy",
    "policy_factory",
    "policy_names",
    "HierarchyConfig",
    "MixResult",
    "MultiProgrammedRunner",
    "SingleThreadRunner",
    "TrainedMultiperspective",
    "cross_validated_configs",
    "measure_roc",
    "normalized_weighted_speedups",
    "speedups_over_lru",
    "Segment",
    "Trace",
    "all_segments",
    "benchmark_names",
    "build_segments",
    "build_suite",
    "generate_mixes",
    "split_train_test",
    "geometric_mean",
    "mpki",
    "weighted_speedup",
    "__version__",
]
