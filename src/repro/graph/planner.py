"""Lower a batch of experiment cells into one planned artifact graph.

The planner walks the cells a run is about to execute (result-cache
misses only — hits never reach it), derives every artifact node each
cell depends on *without building anything* (segment names come from
the benchmark registry, keys from the same helpers the artifact cache
hashes with), deduplicates shared nodes across cells, stats the store
for what is already materialized, and runs the cost-model passes.

The output drives two execution-side mechanisms:

* **prelude groups** — shared nodes planned for compute are
  materialized once, up front, by dedicated materialize tasks; the
  dependent cells then load them instead of each recomputing
  (K-way fan-out pays Stage-1 exactly once per node).  A shared node
  only joins the prelude when loading it back is predicted cheaper
  than every consumer recomputing it.
* **deny set** — materialized nodes whose plan says *compute* (load
  would be slower, e.g. a cache on cold storage) are exempted from
  artifact-cache lookups, so execution follows the plan instead of
  blindly preferring whatever exists on disk.

Planning is advisory: every decision changes only *where bytes come
from*, never their values, and any planner failure degrades to the
unplanned path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.artifacts import scope_payload, stage1_key, trace_key
from repro.exec.cachekey import stable_hash
from repro.exec.store import ResultStore
from repro.graph.costs import CostModel
from repro.graph.model import ExperimentGraph, GraphNode
from repro.traces.workloads import benchmark_names, get_benchmark, segment_names


@dataclass(frozen=True)
class PreludeGroup:
    """Shared artifacts to materialize once before the cell wave.

    ``trace`` is the runner's ``TraceSpec`` (passed through opaquely);
    ``segments`` the qualified segment names whose Stage-1 results the
    group computes (may be empty when only the trace is shared).
    """

    trace: Any
    segments: Tuple[str, ...]
    hierarchy: Any
    prefetch: bool


@dataclass
class GraphPlan:
    """A planned batch: the graph plus its execution-side digests."""

    graph: ExperimentGraph
    deny: frozenset = frozenset()
    prelude: Tuple[PreludeGroup, ...] = ()
    counts: Dict[str, int] = field(default_factory=dict)


def _cell_inputs(cell: Any) -> Optional[List[Tuple[Any, Any, bool, List[str]]]]:
    """(trace_spec, hierarchy, prefetch, segment names) per benchmark.

    Duck-typed on ``cell.kind`` so the planner never imports the runner
    (which imports the planner).  Unknown kinds return ``None`` and are
    executed unplanned.
    """
    kind = getattr(cell, "kind", None)
    if kind == "single":
        spec = cell.trace
        return [(spec, cell.hierarchy, cell.prefetch, _spec_segments(spec))]
    if kind == "mix":
        by_benchmark: Dict[str, List[str]] = {}
        for name in cell.segment_names:
            benchmark = name.rsplit(".", 1)[0]
            by_benchmark.setdefault(benchmark, []).append(name)
        return [
            (cell.suite.trace_spec(benchmark), cell.hierarchy, cell.prefetch,
             names)
            for benchmark, names in sorted(by_benchmark.items())
        ]
    if kind in ("search", "search-batch"):
        suite = cell.suite
        workloads = getattr(suite, "workloads", None)
        names = (workloads() if workloads is not None
                 else sorted(suite.names or benchmark_names()))
        return [
            (suite.trace_spec(benchmark), cell.hierarchy, cell.prefetch,
             _spec_segments(suite.trace_spec(benchmark)))
            for benchmark in sorted(names)
        ]
    return None


def _spec_segments(spec: Any) -> List[str]:
    """Static segment names for a trace spec, registry or ingested."""
    names = getattr(spec, "segment_names", None)
    if names is not None:
        return names()
    return segment_names(spec.benchmark)


def _spec_scope(spec: Any) -> Dict[str, Any]:
    """Stage-1 scope for a trace spec, hashed exactly as the runner's."""
    scope = getattr(spec, "stage1_scope", None)
    if scope is not None:
        return scope()
    return scope_payload(spec.llc_bytes, spec.accesses, spec.seed)


def _spec_trace_accesses(spec: Any) -> int:
    """Total accesses the spec's trace node covers (cost-model input)."""
    ingest = getattr(spec, "ingest", None)
    if ingest is not None:
        return ingest.accesses * ingest.segments
    return spec.accesses * len(get_benchmark(spec.benchmark).segments)


def _spec_segment_accesses(spec: Any) -> int:
    """Accesses per segment (Stage-1 node cost-model input)."""
    ingest = getattr(spec, "ingest", None)
    if ingest is not None:
        return ingest.accesses
    return spec.accesses


def plan_cells(items: Sequence[Tuple[Any, str]], store: ResultStore,
               costs: CostModel) -> GraphPlan:
    """Build, cost, and plan the artifact graph for ``items``.

    ``items`` pairs each cell with its (already computed) result cache
    key.  The store is only ``stat``-ed, never read.
    """
    graph = ExperimentGraph()
    # Prelude bookkeeping: group key -> (group fields, stage1 node keys).
    groups: Dict[Tuple[str, str, bool], Dict[str, Any]] = {}

    for cell, cell_key in items:
        inputs = _cell_inputs(cell)
        if inputs is None:
            continue
        parent_keys: List[str] = []
        for spec, hierarchy, prefetch, seg_names in inputs:
            trace_payload = spec.payload()
            tkey = trace_key(trace_payload)
            tnode = graph.add(GraphNode(
                key=tkey, kind="trace", label=f"{spec.benchmark} trace",
                accesses=_spec_trace_accesses(spec),
            ))
            scope = _spec_scope(spec)
            hpayload = dataclasses.asdict(hierarchy)
            hkey = stable_hash(hpayload)
            group = groups.setdefault((tkey, hkey, prefetch), {
                "trace": spec, "hierarchy": hierarchy, "prefetch": prefetch,
                "stage1": {},
            })
            snode_keys: List[str] = []
            for name in seg_names:
                skey = stage1_key(scope, name, hpayload, prefetch)
                graph.add(GraphNode(
                    key=skey, kind="stage1", label=f"{name} stage1",
                    parents=(tkey,), accesses=_spec_segment_accesses(spec),
                ))
                group["stage1"][skey] = name
                snode_keys.append(skey)
            if tkey not in parent_keys:
                parent_keys.append(tkey)
            parent_keys.extend(snode_keys)
        cell_node = GraphNode(
            key=cell_key, kind="cell", label=cell.label(),
            parents=tuple(parent_keys),
        )
        if cell_key in graph.nodes:
            # Two distinct cells never share a result key, but guard
            # anyway: fold into the existing node's consumer count.
            cell_node = graph.nodes[cell_key]
        else:
            graph.add(cell_node)
        for key in dict.fromkeys(parent_keys):
            graph.nodes[key].consumers += 1

    # Stat the store for materialized blobs + sizes, then run the
    # passes.  A tiered store reports which tier holds each blob, so
    # loads from the shared directory are priced at the shared tier's
    # measured throughput.
    stat_tier = getattr(store, "stat_bytes_tier", None)
    for node in graph.artifact_nodes():
        if stat_tier is not None:
            stat = stat_tier(node.key)
            if stat is not None:
                node.materialized = True
                node.blob_bytes, node.tier = stat
        else:
            size = store.stat_bytes(node.key)
            if size is not None:
                node.materialized = True
                node.blob_bytes = size
    graph.plan(costs)

    deny = frozenset(
        node.key for node in graph.artifact_nodes()
        if node.materialized and node.needed and node.action == "compute"
    )

    prelude: List[PreludeGroup] = []
    for (tkey, hkey, prefetch), group in sorted(
        groups.items(), key=lambda item: item[0]
    ):
        def _shared_compute_pays(key: str) -> bool:
            node = graph.nodes[key]
            if not (node.needed and node.action == "compute"
                    and node.consumers > 1 and not node.materialized):
                # A materialized compute node is in the deny set: the
                # plan already judged loading it back a loss, so
                # re-materializing it up front would not help either.
                return False
            # Materializing once only pays if the K-1 follow-up loads
            # beat K-1 recomputes.
            est = costs.load_cost(costs.estimate_bytes(node.kind,
                                                       node.accesses))
            return est < node.compute_cost
        seg_keys = [key for key in group["stage1"] if _shared_compute_pays(key)]
        if not seg_keys and not _shared_compute_pays(tkey):
            continue
        prelude.append(PreludeGroup(
            trace=group["trace"],
            segments=tuple(sorted(group["stage1"][key] for key in seg_keys)),
            hierarchy=group["hierarchy"],
            prefetch=prefetch,
        ))

    return GraphPlan(graph=graph, deny=deny, prelude=tuple(prelude),
                     counts=graph.counts())
