"""Experiment graph: artifact nodes plus the linear-time reuse pass.

A batch of experiment cells lowers into one DAG whose nodes are the
content-addressed artifacts the pipeline produces:

* ``trace`` — one benchmark's synthesized segments (sources);
* ``stage1`` — one segment's L1/L2+prefetcher stream (parent: trace);
* ``cell`` — one Stage-2 replay + Stage-3 timing result (sinks; always
  computed here, since cells whose results sit in the result cache
  never reach the planner).

Nodes shared by several cells appear exactly once — the planner
deduplicates by cache key — so the graph makes cross-cell sharing
explicit *before* execution instead of discovering it through ad hoc
per-worker cache lookups.

Planning runs the two linear passes from the collaborative-ML workload
optimizer (SIGMOD 2020): a **forward pass** in topological order that
chooses, for every materialized vertex ``v``, to load iff

    C_l(v) < C_i(v) + sum(recreation_cost(p) for p in parents(v))

(where ``C_l`` is the load cost, ``C_i`` the vertex's own compute cost,
and a loaded vertex's recreation cost collapses to ``C_l``), and a
**backward prune** from the sinks that unmarks vertices nothing needs:
a planned load cuts recomputation off above it, so its parents are
only needed if some *other* computed vertex still requires them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.costs import CostModel


@dataclass
class GraphNode:
    """One artifact vertex with its measured-cost annotations."""

    key: str                       # content-addressed cache key
    kind: str                      # "trace" | "stage1" | "cell"
    label: str                     # human-readable ("gamess.p0 stage1")
    parents: Tuple[str, ...] = ()  # keys of recreation inputs
    accesses: int = 0              # work proxy: trace accesses covered
    consumers: int = 0             # number of cells referencing the node
    materialized: bool = False     # blob present in the store at plan time
    blob_bytes: int = 0            # size of the materialized blob
    tier: str = "local"            # store tier holding the blob
    compute_cost: float = 0.0      # C_i(v), filled by plan()
    load_cost: float = float("inf")  # C_l(v), finite iff materialized
    action: str = "compute"        # "load" | "compute", filled by plan()
    needed: bool = True            # survives the backward prune


@dataclass
class ExperimentGraph:
    """Deduplicated artifact DAG over one batch of cells."""

    nodes: Dict[str, GraphNode] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)  # topological (insertion)

    def add(self, node: GraphNode) -> GraphNode:
        """Insert ``node`` unless its key exists; returns the canonical one.

        Parents must be added before children — insertion order doubles
        as the topological order the forward pass walks.
        """
        existing = self.nodes.get(node.key)
        if existing is not None:
            return existing
        for parent in node.parents:
            if parent not in self.nodes:
                raise ValueError(f"parent {parent!r} added after child")
        self.nodes[node.key] = node
        self.order.append(node.key)
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    # -- the SIGMOD-2020 reuse passes --------------------------------------

    def plan(self, costs: CostModel) -> None:
        """Annotate every node with its optimal ``action`` in-place."""
        recreation: Dict[str, float] = {}
        for key in self.order:
            node = self.nodes[key]
            node.compute_cost = costs.compute_cost(node.kind, node.accesses)
            total = node.compute_cost + sum(
                recreation[parent] for parent in node.parents
            )
            if node.materialized:
                node.load_cost = costs.load_cost(node.blob_bytes, node.tier)
                if node.load_cost < total:
                    node.action = "load"
                    recreation[key] = node.load_cost
                    continue
            node.action = "compute"
            recreation[key] = total

        # Backward prune: only vertices transitively required by a sink
        # through *computed* vertices stay needed; a load is a cut.
        for node in self.nodes.values():
            node.needed = False
        stack = [key for key in self.order if self.nodes[key].kind == "cell"]
        while stack:
            node = self.nodes[stack.pop()]
            if node.needed:
                continue
            node.needed = True
            if node.action == "compute":
                stack.extend(node.parents)

    # -- plan summaries ----------------------------------------------------

    def artifact_nodes(self) -> List[GraphNode]:
        return [n for n in self.nodes.values() if n.kind != "cell"]

    def counts(self) -> Dict[str, int]:
        """Planned-action counters for the exec report."""
        arts = self.artifact_nodes()
        needed = [n for n in arts if n.needed]
        return {
            "nodes": len(arts),
            "loads": sum(1 for n in needed if n.action == "load"),
            "computes": sum(1 for n in needed if n.action == "compute"),
            "shared": sum(1 for n in arts if n.consumers > 1),
            "pruned": len(arts) - len(needed),
        }
