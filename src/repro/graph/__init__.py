"""Cost-aware experiment-graph scheduler (`REPRO_GRAPH`).

Lowers a batch of cells into one deduplicated artifact DAG, annotates
every node with measured load/compute costs, and picks the optimal
reuse set with the SIGMOD-2020 linear forward/backward passes.  The
:class:`~repro.exec.runner.ParallelRunner` executes the plan: shared
Stage-1 nodes are materialized once and fanned to all dependent cells,
and materialized blobs that are cheaper to recompute than to load are
skipped.  Scheduling only changes where bytes come from — results are
bit-identical with the scheduler on or off.

``REPRO_GRAPH=off`` (or ``--graph off``) disables planning entirely;
the artifact cache then behaves exactly as before this layer existed.
"""

from __future__ import annotations

import os

from repro.exec.store import DISABLED_SENTINELS
from repro.graph.costs import COSTS_KEY, CostModel
from repro.graph.model import ExperimentGraph, GraphNode
from repro.graph.planner import GraphPlan, PreludeGroup, plan_cells

__all__ = [
    "COSTS_KEY",
    "CostModel",
    "ExperimentGraph",
    "GraphNode",
    "GraphPlan",
    "PreludeGroup",
    "graph_enabled",
    "plan_cells",
]


def graph_enabled(env: str = "REPRO_GRAPH") -> bool:
    """Resolve the scheduler knob; on by default."""
    value = os.environ.get(env, "on").strip().lower()
    return value not in DISABLED_SENTINELS + ("false", "no")
