"""Persistent, measured cost model for the experiment-graph scheduler.

Every load-vs-compute decision needs two numbers per artifact node:

* **compute cost** — seconds to recreate the artifact from its parents,
  modeled as a per-kind *rate* (seconds per trace access) times the
  node's access count.  Rates start from conservative defaults and are
  refined with an EWMA from measured timings: the planner's prelude
  cells time their trace-gen/Stage-1 work (the same regions the
  ``trace-gen``/``stage1`` telemetry spans cover) and feed the
  observations back here.
* **load cost** — seconds to deserialize the materialized blob, modeled
  as a fixed per-read overhead plus ``blob_bytes / read_bps`` where
  ``read_bps`` is the store's measured read throughput (EWMA over the
  byte/time counters the :class:`~repro.exec.artifacts.ArtifactCache`
  records on every blob read).

The model is itself persisted in the :class:`~repro.exec.store.
ResultStore` under a well-known key, so costs learned in one run
refine the plans of every later run against the same cache directory.
Absence, corruption, schema drift, or eviction of the blob all degrade
to the defaults — the cost model can never take a run down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exec.cachekey import wellknown_key
from repro.exec.store import ResultStore

#: ResultStore key of the persisted model (one singleton blob per cache).
COSTS_KEY = wellknown_key("graph-costs")

#: Payload ``kind`` stamp; foreign blobs under the key are ignored.
COSTS_KIND = "graph-costs"

#: Conservative default compute rates, seconds per trace access.
#: Deliberately high relative to the load path so a cold cost model
#: reproduces the pre-scheduler behavior (always load what exists).
DEFAULT_RATES: Dict[str, float] = {"trace": 4e-6, "stage1": 6e-6}

#: Default store read throughput (bytes/second) before any measurement.
DEFAULT_READ_BPS = 200e6

#: Default *shared-tier* read throughput: a shared/remote store
#: directory (NFS mount, network disk) is assumed substantially slower
#: than local disk until measured.
DEFAULT_SHARED_READ_BPS = 60e6

#: Fixed per-read overhead: open/stat/frame-validation, independent of size.
READ_OVERHEAD_S = 3e-4

#: Per-read overhead for the shared tier (adds a round trip).
SHARED_READ_OVERHEAD_S = 2e-3

#: EWMA smoothing weight for new observations.
EWMA_ALPHA = 0.3

#: Rough serialized size per trace access, used to estimate the load
#: cost of artifacts that are not materialized yet (RPA1 framing:
#: trace packs 25 B/access, Stage-1 streams ~50 B/access).
BYTES_PER_ACCESS: Dict[str, int] = {"trace": 25, "stage1": 50}


@dataclass
class CostModel:
    """EWMA-refined per-kind compute rates plus store read throughput."""

    rates: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))
    read_bps: float = DEFAULT_READ_BPS
    shared_read_bps: float = DEFAULT_SHARED_READ_BPS
    samples: int = 0

    # -- estimation --------------------------------------------------------

    def compute_cost(self, kind: str, accesses: int) -> float:
        """Predicted seconds to recreate a node from ready parents."""
        return self.rates.get(kind, 0.0) * max(accesses, 0)

    def load_cost(self, blob_bytes: int, tier: str = "local") -> float:
        """Predicted seconds to read + decode a materialized blob.

        ``tier`` prices where the blob actually lives: a node present
        only in the shared store directory pays the shared tier's
        measured throughput and round-trip overhead, so the planner
        may genuinely prefer recomputing over a slow remote load.
        """
        if tier == "shared":
            return (SHARED_READ_OVERHEAD_S
                    + max(blob_bytes, 0) / max(self.shared_read_bps, 1.0))
        return READ_OVERHEAD_S + max(blob_bytes, 0) / max(self.read_bps, 1.0)

    def estimate_bytes(self, kind: str, accesses: int) -> int:
        """Expected blob size for a node that is not materialized yet."""
        return BYTES_PER_ACCESS.get(kind, 0) * max(accesses, 0)

    # -- refinement --------------------------------------------------------

    def observe_compute(self, kind: str, accesses: int, seconds: float) -> None:
        """Fold one measured (accesses, seconds) compute sample in."""
        if accesses <= 0 or seconds <= 0.0:
            return
        rate = seconds / accesses
        old = self.rates.get(kind)
        self.rates[kind] = (
            rate if old is None else (1.0 - EWMA_ALPHA) * old + EWMA_ALPHA * rate
        )
        self.samples += 1

    def observe_load(self, nbytes: int, seconds: float,
                     tier: str = "local") -> None:
        """Fold one measured (bytes, seconds) store-read sample in."""
        if nbytes <= 0 or seconds <= 0.0:
            return
        bps = nbytes / seconds
        if tier == "shared":
            self.shared_read_bps = ((1.0 - EWMA_ALPHA) * self.shared_read_bps
                                    + EWMA_ALPHA * bps)
        else:
            self.read_bps = ((1.0 - EWMA_ALPHA) * self.read_bps
                             + EWMA_ALPHA * bps)
        self.samples += 1

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rates": {kind: rate for kind, rate in sorted(self.rates.items())},
            "read_bps": self.read_bps,
            "shared_read_bps": self.shared_read_bps,
            "samples": self.samples,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CostModel":
        rates = dict(DEFAULT_RATES)
        for kind, rate in dict(payload.get("rates", {})).items():
            rates[str(kind)] = float(rate)
        return cls(
            rates=rates,
            read_bps=float(payload.get("read_bps", DEFAULT_READ_BPS)),
            shared_read_bps=float(payload.get("shared_read_bps",
                                              DEFAULT_SHARED_READ_BPS)),
            samples=int(payload.get("samples", 0)),
        )

    @classmethod
    def load(cls, store: Optional[ResultStore]) -> "CostModel":
        """Load the persisted model; defaults on any failure."""
        if store is None:
            return cls()
        try:
            payload = store.get(COSTS_KEY)
            if payload is None or payload.get("kind") != COSTS_KIND:
                return cls()
            return cls.from_payload(payload["result"])
        except (AttributeError, KeyError, TypeError, ValueError, OSError):
            return cls()

    def save(self, store: Optional[ResultStore]) -> None:
        """Persist the model; failures are swallowed (best effort)."""
        if store is None:
            return
        try:
            store.put(COSTS_KEY, {"kind": COSTS_KIND,
                                  "result": self.to_payload()})
        except OSError:
            pass
