"""Predictor accuracy measurement — ROC curves (Section 6.3, Figures 1, 8).

The paper measures each predictor in a mode where it *predicts but
does not act*: the LLC stays under plain LRU so the predictor's
decisions cannot feed back into the measurement.  Every access logs
the predictor's confidence; the access's ground-truth label — dead
(the block was not reused before eviction) or live — is resolved by
the block's subsequent fate in the LRU cache.  Sweeping a threshold
over the logged confidences yields false/true positive rates.

Hawkeye is deliberately excluded (Section 6.3): it learns from an
OPT approximation rather than an LRU sampler, so its positives are
not comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.access import AccessContext
from repro.cache.replacement.lru import LRUPolicy
from repro.core.mpppb import MPPPBConfig
from repro.core.predictor import MultiperspectivePredictor
from repro.core.sampler import MultiperspectiveSampler
from repro.predictors.base import ReusePredictor
from repro.sim.llc import LLCAccess, LLCSimulator
from repro.util.stats import RocPoint, roc_curve_fast


class TrainedMultiperspective(ReusePredictor):
    """Predictor + sampler bundle with no cache-management action.

    This is the measure-only form of MPPPB's prediction machinery:
    identical features, tables, and sampler training, but the
    confidence is only recorded, never acted upon.
    """

    name = "multiperspective"

    def __init__(self, config: MPPPBConfig, llc_sets: int) -> None:
        self.predictor = MultiperspectivePredictor(config.features)
        self.sampler = MultiperspectiveSampler(
            self.predictor,
            llc_sets=llc_sets,
            sampler_sets=config.sampler_sets,
            theta=config.theta,
        )

    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> float:
        indices = self.predictor.indices(ctx)
        confidence = self.predictor.predict(indices)
        self.sampler.observe(set_idx, ctx, indices, confidence)
        return float(confidence)

    @property
    def confidence_range(self) -> float:
        return self.predictor.confidence_range


class _ProbePolicy(LRUPolicy):
    """LRU replacement that logs predictions and resolves their labels."""

    def __init__(self, num_sets: int, ways: int, predictor: ReusePredictor,
                 warmup: int) -> None:
        super().__init__(num_sets, ways)
        self.predictor = predictor
        self.warmup = warmup
        self._access_count = 0
        self.confidences: List[float] = []
        self.labels: List[bool] = []
        # Pending prediction id per (set, way); -1 means none.
        self._pending: List[List[int]] = [[-1] * ways for _ in range(num_sets)]
        self._deferred: List[Optional[bool]] = []
        self._current_id = -1

    def on_access(self, set_idx: int, ctx: AccessContext, hit: bool, way: int) -> None:
        confidence = self.predictor.on_llc_access(set_idx, ctx, hit)
        measured = self._access_count >= self.warmup
        self._access_count += 1
        if hit and self._pending[set_idx][way] >= 0:
            # The previous prediction for this block resolves as live.
            self._deferred[self._pending[set_idx][way]] = False
            self._pending[set_idx][way] = -1
        if measured:
            self._deferred.append(None)
            self._current_id = len(self._deferred) - 1
            self.confidences.append(confidence)
        else:
            self._current_id = -1
        if hit:
            self._pending[set_idx][way] = self._current_id

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        super().on_fill(set_idx, way, ctx)
        # The prediction logged by on_access for this miss now tracks
        # the filled block.
        self._pending[set_idx][way] = self._current_id

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        super().on_evict(set_idx, way, block)
        pending = self._pending[set_idx][way]
        if pending >= 0:
            self._deferred[pending] = True  # dead: evicted without reuse
        self._pending[set_idx][way] = -1

    def resolve(self) -> Tuple[List[float], List[bool]]:
        """Finalize labels; still-resident predictions count as dead."""
        labels = [True if label is None else label for label in self._deferred]
        return self.confidences, labels


@dataclass(frozen=True)
class RocResult:
    predictor_name: str
    confidences: Tuple[float, ...]
    labels: Tuple[bool, ...]

    def curve(self, thresholds: Sequence[float]) -> List[RocPoint]:
        return roc_curve_fast(list(self.confidences), list(self.labels),
                              list(thresholds))

    def default_thresholds(self, count: int = 33) -> List[float]:
        """An evenly spaced threshold sweep over the confidence range."""
        if not self.confidences:
            return [0.0]
        lo = min(self.confidences) - 1
        hi = max(self.confidences) + 1
        step = (hi - lo) / max(1, count - 1)
        return [lo + step * i for i in range(count)]


def measure_roc(
    predictor: ReusePredictor,
    stream: Sequence[LLCAccess],
    pc_trace: Sequence[int],
    capacity_bytes: int,
    ways: int,
    warmup: int = 0,
    block_bytes: int = 64,
) -> RocResult:
    """Run a predictor in measure-only mode over one LLC stream."""
    num_sets = capacity_bytes // (ways * block_bytes)
    probe = _ProbePolicy(num_sets, ways, predictor, warmup)
    sim = LLCSimulator(capacity_bytes, ways, probe, block_bytes)
    sim.run(stream, pc_trace=pc_trace, warmup=warmup)
    confidences, labels = probe.resolve()
    return RocResult(
        predictor_name=predictor.name,
        confidences=tuple(confidences),
        labels=tuple(labels),
    )
