"""Simulation drivers: hierarchy stage, LLC stage, timing, runners, ROC."""

from repro.sim.hierarchy import (
    SERVICE_L1,
    SERVICE_L2,
    HierarchyConfig,
    UpperLevelResult,
    UpperLevels,
)
from repro.sim.llc import LLCAccess, LLCResult, LLCSimulator, LLCStats
from repro.sim.multi import (
    MixResult,
    MultiProgrammedRunner,
    ThreadData,
    normalized_weighted_speedups,
)
from repro.sim.roc import RocResult, TrainedMultiperspective, measure_roc
from repro.sim.single import (
    BenchmarkResult,
    SegmentResult,
    SingleThreadRunner,
    cross_validated_configs,
    demand_load_events,
    speedups_over_lru,
)

__all__ = [
    "SERVICE_L1",
    "SERVICE_L2",
    "HierarchyConfig",
    "UpperLevelResult",
    "UpperLevels",
    "LLCAccess",
    "LLCResult",
    "LLCSimulator",
    "LLCStats",
    "MixResult",
    "MultiProgrammedRunner",
    "ThreadData",
    "normalized_weighted_speedups",
    "RocResult",
    "TrainedMultiperspective",
    "measure_roc",
    "BenchmarkResult",
    "SegmentResult",
    "SingleThreadRunner",
    "cross_validated_configs",
    "demand_load_events",
    "speedups_over_lru",
]
