"""Last-level cache simulator.

Replays a (policy-invariant) LLC access stream — produced once per
workload by :class:`repro.sim.hierarchy.UpperLevels` — against an LLC
governed by the replacement policy under test.  This is stage 2 of the
simulation pipeline described in DESIGN.md; because L1/L2 filtering
does not depend on the LLC policy, the same stream is reused for LRU,
SRRIP, Hawkeye, Perceptron, SDBP, MPPPB, and MIN, which is what makes
policy comparisons cheap and exactly aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro import obs
from repro.cache.access import AccessContext
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.belady import compute_next_uses


@dataclass
class LLCAccess:
    """One access arriving at the LLC (demand L2 miss or prefetch)."""

    __slots__ = ("pc", "block", "offset", "is_write", "is_prefetch",
                 "mem_index", "instr_index")

    pc: int
    block: int
    offset: int
    is_write: bool
    is_prefetch: bool
    mem_index: int
    instr_index: int


@dataclass
class LLCStats:
    """Counters over the measured portion of a run.

    Demand counters exclude prefetch accesses: the paper's MPKI counts
    demand misses per kilo-instruction.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def demand_miss_ratio(self) -> float:
        return self.demand_misses / self.demand_accesses if self.demand_accesses else 0.0


@dataclass
class LLCResult:
    """Outcome of one LLC replay."""

    outcomes: List[bool]
    stats: LLCStats
    warm_stats: LLCStats


class LLCSimulator:
    """Drives one replacement policy over an LLC access stream."""

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        policy: ReplacementPolicy,
        block_bytes: int = 64,
    ) -> None:
        self.cache = SetAssociativeCache(capacity_bytes, ways, block_bytes)
        if policy.num_sets != self.cache.num_sets or policy.ways != ways:
            raise ValueError(
                f"policy geometry ({policy.num_sets}x{policy.ways}) does not "
                f"match cache geometry ({self.cache.num_sets}x{ways})"
            )
        self.policy = policy
        self._last_was_miss = [False] * self.cache.num_sets

    def run(
        self,
        stream: Sequence[LLCAccess],
        pc_trace: Sequence[int] = (),
        warmup: int = 0,
    ) -> LLCResult:
        """Replay ``stream``; outcomes[i] is True when access i hit.

        ``pc_trace`` is the full per-memory-instruction PC sequence of
        the workload; predictor features index it through each access's
        ``mem_index`` to recover the PC history (Section 3.2's pc
        feature).  Accesses before ``warmup`` update all state but are
        excluded from the measured statistics.
        """
        if self.policy.needs_future:
            self.policy.prepare(compute_next_uses([a.block for a in stream]))
        cache = self.cache
        policy = self.policy
        last_was_miss = self._last_was_miss
        set_mask = cache.num_sets - 1
        outcomes: List[bool] = []
        append_outcome = outcomes.append
        warm = LLCStats()
        measured = LLCStats()
        # Hoist the per-access attribute lookups out of the replay loop:
        # these bound methods and lists are consulted for every access.
        where = cache._where
        on_access = policy.on_access
        on_hit = policy.on_hit
        on_fill = policy.on_fill
        on_evict = policy.on_evict
        is_mru = policy.is_mru
        should_bypass = policy.should_bypass
        choose_victim = policy.choose_victim
        invalid_way = cache.invalid_way
        install = cache.install
        # One context object is reused across the whole replay: policies
        # and predictors read it synchronously and never retain it.
        ctx = AccessContext(pc=0, address=0, block=0, offset=0,
                            pc_history=pc_trace)
        for index, access in enumerate(stream):
            stats = measured if index >= warmup else warm
            block = access.block
            set_idx = block & set_mask
            way = where[set_idx].get(block, -1)
            hit = way >= 0
            ctx.pc = access.pc
            ctx.address = (block << 6) | access.offset
            ctx.block = block
            ctx.offset = access.offset
            ctx.is_write = access.is_write
            ctx.is_prefetch = access.is_prefetch
            ctx.stream_index = index
            ctx.history_index = access.mem_index
            ctx.is_insert = not hit
            ctx.last_was_miss = last_was_miss[set_idx]
            ctx.is_mru_hit = hit and is_mru(set_idx, way)
            on_access(set_idx, ctx, hit, way)
            stats.accesses += 1
            if not access.is_prefetch:
                stats.demand_accesses += 1
            if hit:
                stats.hits += 1
                if not access.is_prefetch:
                    stats.demand_hits += 1
                on_hit(set_idx, way, ctx)
            else:
                stats.misses += 1
                if not access.is_prefetch:
                    stats.demand_misses += 1
                if should_bypass(set_idx, ctx):
                    stats.bypasses += 1
                else:
                    fill_way = invalid_way(set_idx)
                    if fill_way < 0:
                        fill_way = choose_victim(set_idx, ctx)
                        evicted = cache.tags[set_idx][fill_way]
                        on_evict(set_idx, fill_way, evicted)
                        stats.evictions += 1
                    install(set_idx, fill_way, block)
                    on_fill(set_idx, fill_way, ctx)
            last_was_miss[set_idx] = not hit
            append_outcome(hit)
        if obs.enabled():
            flush_llc_metrics(measured, policy)
        return LLCResult(outcomes=outcomes, stats=measured, warm_stats=warm)


def flush_llc_metrics(stats: LLCStats, policy: ReplacementPolicy) -> None:
    """Fold one replay's aggregate stats into the telemetry registry.

    Called once per replay (never per access): the hot loop above pays
    nothing for metrics beyond the single ``obs.enabled()`` test, and
    the counters it reports are the aggregates it maintains anyway.
    The flush is observation-only — the pinned determinism hashes are
    identical with telemetry on or off.
    """
    items = [
        ("llc/replays", 1),
        ("llc/accesses", stats.accesses),
        ("llc/hits", stats.hits),
        ("llc/misses", stats.misses),
        ("llc/fills", stats.misses - stats.bypasses),
        ("llc/bypasses", stats.bypasses),
        ("llc/evictions", stats.evictions),
        ("llc/demand-misses", stats.demand_misses),
    ]
    sampler = getattr(policy, "sampler", None)
    if sampler is not None:
        live = getattr(sampler, "trainings_live", 0)
        dead = getattr(sampler, "trainings_dead", 0)
        items += [("sampler/trainings-live", live),
                  ("sampler/trainings-dead", dead),
                  ("sampler/trainings", live + dead)]
    # MPPPB decision counters (cumulative per policy, i.e. including
    # warmup accesses — unlike the measured-window llc/* counters).
    if hasattr(policy, "promotions_suppressed"):
        items += [("mpppb/bypass-decisions", getattr(policy, "bypasses", 0)),
                  ("mpppb/promotions-suppressed",
                   policy.promotions_suppressed)]
    obs.inc_many(items)
