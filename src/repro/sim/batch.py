"""Shared-context batched Stage-2 replay (the feature-search hot path).

The Section-5 feature search evaluates many candidate MPPPB
configurations against the *same* policy-invariant Stage-1 LLC stream.
A conventional loop replays the stream once per candidate, re-deriving
per-access context — set index, partial tag, sampler set, PC hash,
address/PC bit slices with their fold memos, history probes — that is
identical for every candidate because it depends only on the stream,
never on cache state.  :class:`BatchLLCSimulator` splits the replay
accordingly:

1. **Shared pass** (once per stream): decode every access into typed
   ``array`` columns (block, set index, partial tag, sampler set,
   prefetch flag) plus one tuple of *static slot values* per access,
   produced by a single ``exec``-compiled function over the union of
   all candidates' features.  Static slots cover the PC hash, history
   probes, and every slice-and-fold extraction — deduplicated across
   candidates, computed exactly once per access.
2. **Per-candidate replay** (K times): a tight loop over the decoded
   columns that evaluates a candidate-specific compiled index/predict
   function (reading static slots, mixing in the three cache-state
   bits ``insert`` / ``burst`` / ``lastmiss``) and applies the full
   MPPPB decision cascade against that candidate's own
   :class:`~repro.cache.cache.SetAssociativeCache`, sampler, and
   perceptron tables — the structure-of-candidates state layout.

Both halves reuse the primitives of :mod:`repro.core.features`
(``_hashed_pc`` with its global memo, ``_fold_into``,
``_normalize_range``), so indices — and therefore every downstream
number — are bit-identical to the sequential
:class:`~repro.sim.llc.LLCSimulator` + :class:`~repro.core.mpppb.
MPPPBPolicy` path, which stays available behind ``REPRO_STAGE2_BATCH=
off`` and is pinned by ``tests/test_sim_batch.py`` and the determinism
suite.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.core.features import (
    BLOCK_OFFSET_BITS,
    MAX_TABLE_SIZE,
    _PC_HASH_CACHE,
    _fold_into,
    _hashed_pc,
    _normalize_range,
    Feature,
)
from repro.core.mpppb import MPPPBPolicy
from repro.core.predictor import CONFIDENCE_MAX, CONFIDENCE_MIN
from repro.predictors.base import partial_tag
from repro import obs
from repro.sim.llc import LLCAccess, LLCResult, LLCStats, flush_llc_metrics

_DISABLED = ("off", "0", "false", "no", "none")


def stage2_batch_enabled() -> bool:
    """Batched-replay selector: ``REPRO_STAGE2_BATCH`` (default on).

    The knob exists for the determinism suite and the perf harness;
    both paths are bit-identical, so it never appears in cache keys.
    """
    return os.environ.get("REPRO_STAGE2_BATCH", "on").lower() not in _DISABLED


# -- shared-context compilation --------------------------------------------
#
# A feature's table index decomposes into a *static* part (a pure
# function of the access) and at most one *dynamic* bit (a function of
# the candidate's cache state).  Descriptors name the static part so
# identical extractions collapse to one shared slot across the union
# of a batch's features.

_DYNAMIC_VARS = {"burst": "mru", "insert": "ins", "lastmiss": "lm"}


def _descriptor(feature: Feature) -> Tuple:
    """Classify one feature for the shared/per-candidate split."""
    family = feature.family
    if family in _DYNAMIC_VARS:
        return ("dyn", family, feature.xor_pc)
    if family == "bias":
        return ("hx",) if feature.xor_pc else ("const0",)
    if family == "pc":
        limit = 63
        source = "pc" if feature.depth == 0 else f"pd{feature.depth}"
    elif family == "address":
        limit, source = 63, "addr"
    else:  # offset
        limit, source = BLOCK_OFFSET_BITS - 1, "off"
    lo, hi = _normalize_range(feature.begin, feature.end, limit)
    raw = (source, lo, hi, feature.value_bits)
    return ("sx", raw) if feature.xor_pc else ("s", raw)


# Compiled shared functions are pure functions of the slot layout;
# bounded memo because the search churns through many feature unions.
_SHARED_CACHE: Dict[Tuple, Callable] = {}
# Per-candidate evaluator code objects keyed by the entry layout; the
# same code is exec'd once per candidate with its own weight bindings.
_EVAL_CODE_CACHE: Dict[Tuple, Any] = {}


def _compile_shared(slots: Tuple[Tuple, ...], needs_h: bool) -> Callable:
    """Compile the once-per-access static-slot function.

    Returns ``fn(pc, address, offset, hbase, history, hlen) -> tuple``
    where the tuple holds the hashed PC first (when any feature XORs)
    followed by one value per static slot.  Emission mirrors
    :func:`repro.core.features.compile_fused` statement for statement
    so the two stay bit-identical.
    """
    key = (slots, needs_h)
    cached = _SHARED_CACHE.get(key)
    if cached is not None:
        return cached

    env: Dict[str, Any] = {"_hp": _hashed_pc, "_hc": _PC_HASH_CACHE}
    lines: List[str] = []
    exprs: List[str] = []
    if needs_h:
        lines.append("_h = _hc.get(pc)")
        lines.append("if _h is None: _h = _hp(pc)")
        exprs.append("_h")

    depths = sorted({
        int(slot[1][0][2:])
        for slot in slots
        if slot[0] in ("s", "sx") and slot[1][0].startswith("pd")
    })
    for depth in depths:
        lines.append(f"_i{depth} = hbase - {depth}")
        lines.append(
            f"_pd{depth} = history[_i{depth}] "
            f"if 0 <= _i{depth} < hlen else 0"
        )

    sources = {"pc": "pc", "addr": "address", "off": "offset"}
    sources.update({f"pd{d}": f"_pd{d}" for d in depths})
    raw_exprs: Dict[Tuple, str] = {}

    def value_expr(raw_key: Tuple) -> str:
        known = raw_exprs.get(raw_key)
        if known is not None:
            return known
        source, lo, hi, bits = raw_key
        name = sources[source]
        width = hi - lo + 1
        slice_mask = (1 << width) - 1
        sliced = (f"({name} >> {lo}) & {slice_mask}" if lo
                  else f"{name} & {slice_mask}")
        if width <= bits:
            raw_exprs[raw_key] = sliced
            return sliced
        k = len(raw_exprs)
        memo: dict = {}
        env[f"_g{k}"] = memo.get
        env[f"_f{k}"] = _fold_into(bits, memo)
        lines.append(f"_s{k} = {sliced}")
        lines.append(f"_v{k} = _g{k}(_s{k})")
        lines.append(f"if _v{k} is None: _v{k} = _f{k}(_s{k})")
        raw_exprs[raw_key] = f"_v{k}"
        return f"_v{k}"

    xor_mask = MAX_TABLE_SIZE - 1
    for slot in slots:
        kind = slot[0]
        if kind == "s":
            exprs.append(value_expr(slot[1]))
        else:  # "sx"
            exprs.append(f"(({value_expr(slot[1])}) ^ _h) & {xor_mask}")

    body = "\n    ".join(lines + [f"return ({', '.join(exprs)},)"]) \
        if exprs else "return ()"
    source_text = (
        f"def _shared(pc, address, offset, hbase, history, hlen):\n"
        f"    {body}\n"
    )
    exec(compile(source_text, "<batch-shared>", "exec"), env)  # noqa: S102
    shared = env["_shared"]
    shared.__source__ = source_text
    if len(_SHARED_CACHE) > 256:
        _SHARED_CACHE.clear()
    _SHARED_CACHE[key] = shared
    return shared


def _compile_eval(entries: Tuple[Tuple, ...],
                  weights: Sequence[List[int]]) -> Callable:
    """Compile one candidate's fused index+predict function.

    ``fn(sv, ins, mru, lm) -> (indices, total)`` reads the shared slot
    tuple ``sv`` plus the three candidate-state bits and returns the
    per-feature index list (what a sampler entry stores) and the raw
    weight sum (saturated by the caller).  The candidate's weight lists
    are bound into the function's globals, so the summation is a flat
    chain of list subscripts.
    """
    code = _EVAL_CODE_CACHE.get(entries)
    if code is None:
        mask = MAX_TABLE_SIZE - 1
        lines = []
        for f, entry in enumerate(entries):
            kind = entry[0]
            if kind == "slot":
                expr = f"sv[{entry[1]}]"
            elif kind == "const0":
                expr = "0"
            else:  # ("dyn", family, xor_pc)
                var = _DYNAMIC_VARS[entry[1]]
                expr = f"({var} ^ sv[0]) & {mask}" if entry[2] else var
            lines.append(f"_i{f} = {expr}")
        names = [f"_i{f}" for f in range(len(entries))]
        total = " + ".join(f"_W{f}[_i{f}]" for f in range(len(entries)))
        body = "\n    ".join(
            lines + [f"return [{', '.join(names)}], {total}"]
        )
        source_text = f"def _eval(sv, ins, mru, lm):\n    {body}\n"
        code = compile(source_text, "<batch-eval>", "exec")
        if len(_EVAL_CODE_CACHE) > 1024:
            _EVAL_CODE_CACHE.clear()
        _EVAL_CODE_CACHE[entries] = code
    env: Dict[str, Any] = {
        f"_W{f}": table for f, table in enumerate(weights)
    }
    exec(code, env)  # noqa: S102
    return env["_eval"]


def _build_programs(
    feature_sets: Sequence[Sequence[Feature]],
) -> Tuple[Callable, List[Tuple[Tuple, ...]], bool, Tuple[Tuple, ...]]:
    """Shared function + per-candidate entry layouts for a batch.

    Static descriptors are deduplicated across the union of all
    candidates' features; each candidate's entries reference shared
    slot positions (offset by one when slot 0 holds the PC hash).
    The slot list itself is returned too so the columnar kernel
    (:mod:`repro.sim.kernel`) can lower the same layout to arrays.
    """
    slot_of: Dict[Tuple, int] = {}
    slots: List[Tuple] = []
    needs_h = any(
        feature.xor_pc for features in feature_sets for feature in features
    )
    entry_sets: List[Tuple[Tuple, ...]] = []
    base = 1 if needs_h else 0
    for features in feature_sets:
        entries: List[Tuple] = []
        for feature in features:
            desc = _descriptor(feature)
            kind = desc[0]
            if kind in ("dyn", "const0"):
                entries.append(desc)
            elif kind == "hx":
                entries.append(("slot", 0))
            else:
                slot = slot_of.get(desc)
                if slot is None:
                    slot = len(slots)
                    slot_of[desc] = slot
                    slots.append(desc)
                entries.append(("slot", slot + base))
        entry_sets.append(tuple(entries))
    shared = _compile_shared(tuple(slots), needs_h)
    return shared, entry_sets, needs_h, tuple(slots)


# -- the batched simulator -------------------------------------------------


class BatchLLCSimulator:
    """Replays one LLC stream against K MPPPB candidates in one pass.

    Equivalent to constructing K :class:`~repro.sim.llc.LLCSimulator`
    instances over the same stream, but the per-access stream decode
    and candidate-invariant feature context are computed once and
    broadcast.  Candidates must share geometry and sampler layout
    (guaranteed when they come from one
    :class:`~repro.search.evaluator.FeatureSetEvaluator`, whose
    candidates differ only in their feature tuples).
    """

    def __init__(
        self,
        capacity_bytes: int,
        ways: int,
        policies: Sequence[MPPPBPolicy],
        block_bytes: int = 64,
    ) -> None:
        if not policies:
            raise ValueError("batch needs at least one candidate policy")
        for policy in policies:
            if not isinstance(policy, MPPPBPolicy):
                raise TypeError(
                    "BatchLLCSimulator only replays MPPPBPolicy candidates; "
                    f"got {type(policy).__name__}"
                )
        self.policies = list(policies)
        self.caches = [
            SetAssociativeCache(capacity_bytes, ways, block_bytes)
            for _ in policies
        ]
        self.num_sets = self.caches[0].num_sets
        self.ways = ways
        first = policies[0]
        for policy in policies:
            if policy.num_sets != self.num_sets or policy.ways != ways:
                raise ValueError(
                    f"policy geometry ({policy.num_sets}x{policy.ways}) does "
                    f"not match cache geometry ({self.num_sets}x{ways})"
                )
            sampler, ref = policy.sampler, first.sampler
            if (sampler.mapper._stride != ref.mapper._stride
                    or sampler.mapper.sampler_sets != ref.mapper.sampler_sets
                    or sampler.tag_bits != ref.tag_bits):
                raise ValueError(
                    "batched candidates must share sampler geometry"
                )
        self._shared_fn, self._entry_sets, self._needs_h, self._slots = (
            _build_programs(
                [policy.config.features for policy in policies]
            )
        )

    # -- phase 1: candidate-invariant stream decode ---------------------

    def _shared_pass(
        self, stream: Sequence[LLCAccess], pc_trace: Sequence[int]
    ) -> Tuple[array, array, array, array, bytearray, List[tuple]]:
        set_mask = self.num_sets - 1
        mapper = self.policies[0].sampler.mapper
        sampler_index = mapper.sampler_index
        tag_bits = self.policies[0].sampler.tag_bits
        shared_fn = self._shared_fn
        hlen = len(pc_trace)

        blocks = array("q")
        set_idxs = array("q")
        tags = array("q")
        samp_idxs = array("q")
        prefetch = bytearray()
        slot_values: List[tuple] = []
        append_sv = slot_values.append
        for access in stream:
            block = access.block
            offset = access.offset
            set_idx = block & set_mask
            blocks.append(block)
            set_idxs.append(set_idx)
            tags.append(partial_tag(block, tag_bits))
            samp_idxs.append(sampler_index(set_idx))
            pf = access.is_prefetch
            prefetch.append(1 if pf else 0)
            # Same address reconstruction and history base the
            # sequential replay loads into its AccessContext
            # (repro.sim.llc uses the 64-byte block shift throughout).
            append_sv(shared_fn(
                access.pc, (block << 6) | offset, offset,
                access.mem_index + (1 if pf else 0), pc_trace, hlen,
            ))
        return blocks, set_idxs, tags, samp_idxs, prefetch, slot_values

    # -- phase 2: per-candidate replay -----------------------------------

    def _replay(
        self,
        k: int,
        blocks: array,
        set_idxs: array,
        tags: array,
        samp_idxs: array,
        prefetch: bytearray,
        slot_values: List[tuple],
        warmup: int,
    ) -> LLCResult:
        policy = self.policies[k]
        cache = self.caches[k]
        evalf = _compile_eval(self._entry_sets[k], policy.predictor._weights)
        # Hoist every per-access lookup, mirroring LLCSimulator.run.
        where = cache._where
        cache_tags = cache.tags
        invalid_way = cache.invalid_way
        install = cache.install
        sampler_access = policy.sampler.access
        default = policy.default
        default_on_hit = default.on_hit
        default_on_evict = default.on_evict
        choose_victim = default.choose_victim
        is_mru = default.is_mru
        place = default.place
        config = policy.config
        tau_bypass = config.tau_bypass
        tau_1, tau_2, tau_3 = config.taus
        p_1, p_2, p_3 = config.placements
        tau_no_promote = config.tau_no_promote
        mru_position = policy._mru_position
        conf_max, conf_min = CONFIDENCE_MAX, CONFIDENCE_MIN

        last_was_miss = [False] * self.num_sets
        warm = LLCStats()
        measured = LLCStats()
        outcomes: List[bool] = []
        append_outcome = outcomes.append
        bypasses = 0
        suppressed = 0
        for index, block in enumerate(blocks):
            stats = measured if index >= warmup else warm
            set_idx = set_idxs[index]
            way = where[set_idx].get(block, -1)
            hit = way >= 0
            lm = 1 if last_was_miss[set_idx] else 0
            if hit:
                mru = 1 if is_mru(set_idx, way) else 0
                indices, total = evalf(slot_values[index], 0, mru, lm)
            else:
                indices, total = evalf(slot_values[index], 1, 0, lm)
            if total > conf_max:
                confidence = conf_max
            elif total < conf_min:
                confidence = conf_min
            else:
                confidence = total
            sampler_idx = samp_idxs[index]
            if sampler_idx >= 0:
                sampler_access(sampler_idx, tags[index], indices, confidence)
            stats.accesses += 1
            pf = prefetch[index]
            if not pf:
                stats.demand_accesses += 1
            if hit:
                stats.hits += 1
                if not pf:
                    stats.demand_hits += 1
                if confidence > tau_no_promote:
                    suppressed += 1
                else:
                    default_on_hit(set_idx, way, None)
            else:
                stats.misses += 1
                if not pf:
                    stats.demand_misses += 1
                if confidence > tau_bypass:
                    bypasses += 1
                    stats.bypasses += 1
                else:
                    fill_way = invalid_way(set_idx)
                    if fill_way < 0:
                        fill_way = choose_victim(set_idx, None)
                        default_on_evict(
                            set_idx, fill_way, cache_tags[set_idx][fill_way]
                        )
                        stats.evictions += 1
                    install(set_idx, fill_way, block)
                    if confidence > tau_1:
                        position = p_1
                    elif confidence > tau_2:
                        position = p_2
                    elif confidence > tau_3:
                        position = p_3
                    else:
                        position = mru_position
                    place(set_idx, fill_way, position)
            last_was_miss[set_idx] = not hit
            append_outcome(hit)
        policy.bypasses += bypasses
        policy.promotions_suppressed += suppressed
        return LLCResult(outcomes=outcomes, stats=measured, warm_stats=warm)

    def run(
        self,
        stream: Sequence[LLCAccess],
        pc_trace: Sequence[int] = (),
        warmup: int = 0,
    ) -> List[LLCResult]:
        """Replay ``stream`` for every candidate; one result per policy.

        Results (outcomes, measured and warm stats) and all candidate
        state (cache contents, default-policy recency, sampler entries,
        perceptron weights, bypass/promotion counters) finish exactly
        as K sequential :meth:`LLCSimulator.run` calls would leave
        them.

        When ``REPRO_STAGE2_KERNEL`` selects a columnar backend, the
        replay runs through :mod:`repro.sim.kernel` instead of the
        per-access Python loop; the kernel declines (returns ``None``)
        on unsupported preconditions and this path then falls back to
        the bytecode replay, so results are identical either way.
        """
        replays = None
        from repro.sim.kernel import replay_batch, stage2_kernel_backend

        backend = stage2_kernel_backend()
        if backend != "off":
            replays = replay_batch(self, stream, pc_trace, warmup, backend)
        if replays is None:
            columns = self._shared_pass(stream, pc_trace)
            replays = [
                self._replay(k, *columns, warmup)
                for k in range(len(self.policies))
            ]
        if obs.enabled():
            # Same once-per-replay aggregate flush as LLCSimulator.run;
            # the inlined batch kernel itself stays instrumentation-free.
            for policy, result in zip(self.policies, replays):
                flush_llc_metrics(result.stats, policy)
        return replays
