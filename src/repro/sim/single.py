"""Single-thread simulation runner (Sections 4.2, 4.5, 6.2).

Ties the three pipeline stages together for one core:

1. Stage 1 (upper levels) runs once per workload segment and is cached
   across policies — the LLC access stream is policy invariant.
2. Stage 2 replays the stream against the policy under test.
3. Stage 3 converts per-access latencies into IPC.

Per-benchmark figures are the weighted average of the benchmark's
segments (the paper's SimPoint weighting); speedups are reported
relative to LRU and summarized by geometric mean.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # numpy backs the vectorized Stage-3 event builder; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

from repro import obs
from repro.cache.replacement.base import ReplacementPolicy
from repro.core.mpppb import MPPPBConfig
from repro.cpu.timing import TimingConfig, TimingModel
from repro.sim.hierarchy import (
    SERVICE_L1,
    SERVICE_L2,
    HierarchyConfig,
    UpperLevelResult,
    UpperLevels,
)
from repro.sim.llc import LLCResult, LLCSimulator
from repro.traces.trace import Segment, Trace
from repro.util.stats import mpki as mpki_of

PolicyFactory = Callable[[int, int], ReplacementPolicy]


@dataclass(frozen=True)
class SegmentResult:
    """Measured metrics for one policy on one workload segment."""

    segment_name: str
    weight: float
    ipc: float
    mpki: float
    llc_accesses: int
    llc_hits: int
    llc_misses: int
    llc_bypasses: int
    demand_misses: int
    instructions: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for the on-disk result cache (``repro.exec``)."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "SegmentResult":
        return SegmentResult(**payload)


@dataclass(frozen=True)
class BenchmarkResult:
    """Weighted aggregate over a benchmark's segments (Section 4.2)."""

    benchmark: str
    segments: Tuple[SegmentResult, ...]

    def _total_weight(self) -> float:
        total_weight = sum(s.weight for s in self.segments)
        if not self.segments or total_weight <= 0:
            raise ValueError(
                f"benchmark {self.benchmark!r} has no weighted segments "
                f"to aggregate (segments={len(self.segments)}, "
                f"total weight={total_weight})"
            )
        return total_weight

    @property
    def ipc(self) -> float:
        total_weight = self._total_weight()
        return sum(s.ipc * s.weight for s in self.segments) / total_weight

    @property
    def mpki(self) -> float:
        total_weight = self._total_weight()
        return sum(s.mpki * s.weight for s in self.segments) / total_weight

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for the on-disk result cache (``repro.exec``)."""
        return {
            "benchmark": self.benchmark,
            "segments": [segment.to_dict() for segment in self.segments],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "BenchmarkResult":
        return BenchmarkResult(
            benchmark=payload["benchmark"],
            segments=tuple(SegmentResult.from_dict(segment)
                           for segment in payload["segments"]),
        )


def demand_load_events(
    trace: Trace,
    upper: UpperLevelResult,
    outcomes: Sequence[bool],
    timing: TimingConfig,
    start_mem: int = 0,
) -> Iterable[Tuple[int, int, bool]]:
    """Yield ``(instr_index, latency, depends)`` per measured demand load.

    ``instr_index`` is relative to the first measured instruction,
    ``latency`` comes from the level that serviced the load, and
    ``depends`` flags loads address-dependent on the previous load
    (pointer chasing), which the timing model serializes.  Stores are
    non-blocking (no timing event); prefetch LLC accesses are not
    instructions and never appear here — their effect is already
    folded into the service levels.
    """
    l1, l2 = timing.l1_latency, timing.l2_latency
    llc_hit, llc_miss = timing.llc_latency, timing.llc_miss_latency
    base_instr = upper.instr_indices[start_mem] if start_mem < len(trace.pcs) else 0
    writes = trace.writes
    deps = trace.deps
    service = upper.service
    instr_indices = upper.instr_indices
    for mem_index in range(start_mem, len(trace.pcs)):
        if writes[mem_index]:
            continue
        level = service[mem_index]
        if level == SERVICE_L1:
            latency = l1
        elif level == SERVICE_L2:
            latency = l2
        else:
            latency = llc_hit if outcomes[level] else llc_miss
        yield instr_indices[mem_index] - base_instr, latency, deps[mem_index]


def stage3_vector_enabled() -> bool:
    """Vectorized Stage-3 selector: ``REPRO_STAGE3_VECTOR`` (default on).

    Requires numpy; the scalar :func:`demand_load_events` generator is
    the fallback and the two paths produce bit-identical IPC (integer
    latencies and instruction counts divide identically in IEEE-754
    float64 either way).
    """
    if _np is None:
        return False
    return os.environ.get("REPRO_STAGE3_VECTOR", "on").lower() not in (
        "off", "0", "false", "no", "none")


@dataclass
class Stage3Events:
    """Candidate-invariant skeleton of a segment's demand-load events.

    Everything here depends only on the trace and the Stage-1 result:
    the measured demand loads' relative instruction indices, their
    dependence flags, base latencies for L1/L2-serviced loads, and the
    positions/stream indices of LLC-serviced loads whose latency is
    decided per policy by the Stage-2 outcomes.  Built once per
    (segment, warmup) and reused for every candidate — K policies pay
    one numpy fill each instead of K full Python event loops.
    """

    instr: List[int]
    depends: List[bool]
    base_latencies: Any   # numpy int64 array, one entry per load event
    llc_positions: Any    # numpy indices into the event order
    llc_stream_idx: Any   # matching indices into the LLC outcome list


def build_stage3_events(
    trace: Trace,
    upper: UpperLevelResult,
    timing: TimingConfig,
    start_mem: int = 0,
) -> Stage3Events:
    """Vectorized equivalent of :func:`demand_load_events`' static part."""
    service = _np.asarray(upper.service[start_mem:], dtype=_np.int64)
    loads = ~_np.asarray(trace.writes[start_mem:], dtype=bool)
    service = service[loads]
    base_instr = (upper.instr_indices[start_mem]
                  if start_mem < len(trace.pcs) else 0)
    instr = _np.asarray(upper.instr_indices[start_mem:],
                        dtype=_np.int64)[loads] - base_instr
    depends = _np.asarray(trace.deps[start_mem:], dtype=bool)[loads]
    latencies = _np.full(len(service), timing.l1_latency, dtype=_np.int64)
    latencies[service == SERVICE_L2] = timing.l2_latency
    llc_positions = _np.nonzero(service >= 0)[0]
    return Stage3Events(
        instr=instr.tolist(),
        depends=depends.tolist(),
        base_latencies=latencies,
        llc_positions=llc_positions,
        llc_stream_idx=service[llc_positions],
    )


def demand_load_arrays(
    events: Stage3Events,
    outcomes: Sequence[bool],
    timing: TimingConfig,
) -> Tuple[List[int], List[int], List[bool]]:
    """Fill a policy's LLC latencies into the shared event skeleton.

    Returns ``(instr_indices, latencies, depends)`` columns for
    :meth:`~repro.cpu.timing.TimingModel.simulate_packed`, equal
    element for element to iterating :func:`demand_load_events`.
    """
    latencies = events.base_latencies.copy()
    hits = _np.asarray(outcomes, dtype=bool)[events.llc_stream_idx]
    latencies[events.llc_positions] = _np.where(
        hits, timing.llc_latency, timing.llc_miss_latency)
    return events.instr, latencies.tolist(), events.depends


def replay_segment(
    llc_bytes: int,
    ways: int,
    policy: ReplacementPolicy,
    block_bytes: int,
    llc_stream: Sequence,
    pcs: Sequence[int],
    warmup: int,
) -> LLCResult:
    """Stage-2 replay of one stream against one policy.

    MPPPB policies route through a single-candidate
    :class:`~repro.sim.batch.BatchLLCSimulator` when the columnar
    kernel is active (``REPRO_STAGE2_KERNEL`` != off), so compare and
    mix runs ride the kernel exactly like the batched search path; a
    fresh simulator per segment makes this equivalent to
    :class:`LLCSimulator` bit for bit (both start from cold
    last-miss/ cache state).  Everything else — and the kernel-off
    mode — uses the sequential simulator unchanged.

    Instrumented runs (telemetry enabled) also stay on the sequential
    simulator: it observes per-access detail — e.g. the MPPPB
    confidence histogram — that the inlined replay loops deliberately
    do not record.  Results are bit-identical either way; only the
    emitted telemetry is richer.
    """
    from repro.core.mpppb import MPPPBPolicy

    if isinstance(policy, MPPPBPolicy) and not obs.enabled():
        from repro.sim.kernel import stage2_kernel_backend

        if stage2_kernel_backend() != "off":
            from repro.sim.batch import BatchLLCSimulator

            sim = BatchLLCSimulator(llc_bytes, ways, [policy], block_bytes)
            return sim.run(llc_stream, pc_trace=pcs, warmup=warmup)[0]
    sim = LLCSimulator(llc_bytes, ways, policy, block_bytes)
    return sim.run(llc_stream, pc_trace=pcs, warmup=warmup)


class SingleThreadRunner:
    """Runs policies over workload segments with stage-1 caching."""

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        timing: Optional[TimingConfig] = None,
        prefetch: bool = True,
        warmup_fraction: float = 0.25,
        stage1_store: Optional[Any] = None,
    ) -> None:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.hierarchy = hierarchy
        self.timing = timing or TimingConfig()
        self.prefetch = prefetch
        self.warmup_fraction = warmup_fraction
        self.stage1_store = stage1_store
        self._upper = UpperLevels(hierarchy, prefetch=prefetch)
        self._stage1_cache: Dict[str, UpperLevelResult] = {}
        # Candidate-invariant Stage-3 event skeletons, keyed by segment
        # name (warmup fraction and timing are fixed per runner).
        self._stage3_cache: Dict[str, Stage3Events] = {}

    # -- stage 1 ----------------------------------------------------------

    def upper_result(self, segment: Segment) -> UpperLevelResult:
        """Stage-1 result for a segment, computed once and memoized.

        With a ``stage1_store`` attached (an on-disk artifact adapter,
        see :class:`repro.exec.artifacts.Stage1ArtifactStore`), results
        are shared across processes and sessions; the in-memory memo
        still guarantees one (de)serialization per segment per runner.
        """
        # The span wraps the whole lookup — memo hits included — so a
        # run's span *set* is identical whether this process computed
        # the result, loaded it from the artifact store, or had it
        # memoized already (only the durations differ).
        with obs.span("stage1"):
            cached = self._stage1_cache.get(segment.name)
            if cached is None:
                store = self.stage1_store
                if store is not None:
                    cached = store.load(segment)
                if cached is None:
                    cached = self._upper.run(segment.trace)
                    if store is not None:
                        store.save(segment, cached)
                self._stage1_cache[segment.name] = cached
        return cached

    def prime_segments(self, segments: Sequence[Segment]
                       ) -> List[Tuple[str, int, float]]:
        """Materialize Stage-1 results for ``segments`` ahead of replay.

        The graph scheduler's prelude tasks call this so a node shared
        by K cells is computed (and stored) exactly once before the
        cell wave fans out.  Returns ``(name, accesses, seconds)`` for
        each segment that was genuinely *computed* — store and memo
        hits are skipped — which is the measured compute-cost sample
        the scheduler's cost model refines on.  Same lookup order and
        span as :meth:`upper_result`, so priming never changes results
        or the emitted span set shape.
        """
        computed: List[Tuple[str, int, float]] = []
        for segment in segments:
            with obs.span("stage1"):
                if segment.name in self._stage1_cache:
                    continue
                store = self.stage1_store
                cached = store.load(segment) if store is not None else None
                if cached is None:
                    started = time.perf_counter()
                    cached = self._upper.run(segment.trace)
                    seconds = time.perf_counter() - started
                    if store is not None:
                        store.save(segment, cached)
                    computed.append((segment.name, len(segment.trace.pcs),
                                     seconds))
                self._stage1_cache[segment.name] = cached
        return computed

    # -- stages 2 + 3 ----------------------------------------------------

    def run_segment(
        self, segment: Segment, policy_factory: PolicyFactory
    ) -> SegmentResult:
        upper = self.upper_result(segment)
        trace = segment.trace
        warm_mem = int(len(trace.pcs) * self.warmup_fraction)
        warm_llc = upper.llc_warmup_boundary(warm_mem)

        llc_bytes = self.hierarchy.llc_bytes
        ways = self.hierarchy.llc_ways
        num_sets = llc_bytes // (ways * self.hierarchy.block_bytes)
        policy = policy_factory(num_sets, ways)
        with obs.span("stage2"):
            llc = replay_segment(llc_bytes, ways, policy,
                                 self.hierarchy.block_bytes,
                                 upper.llc_stream, trace.pcs, warm_llc)
        return self._finish_segment(segment, upper, llc, warm_mem)

    def run_segment_batch(
        self, segment: Segment, configs: Sequence[MPPPBConfig]
    ) -> List[SegmentResult]:
        """Stage 2+3 for K MPPPB candidates over one shared Stage-1 result.

        Equivalent to K :meth:`run_segment` calls with MPPPB factories
        (same results, bit for bit) but the stream decode and
        candidate-invariant per-access context are paid once; see
        :class:`repro.sim.batch.BatchLLCSimulator`.
        """
        from repro.core.mpppb import MPPPBPolicy
        from repro.sim.batch import BatchLLCSimulator

        upper = self.upper_result(segment)
        trace = segment.trace
        warm_mem = int(len(trace.pcs) * self.warmup_fraction)
        warm_llc = upper.llc_warmup_boundary(warm_mem)

        llc_bytes = self.hierarchy.llc_bytes
        ways = self.hierarchy.llc_ways
        num_sets = llc_bytes // (ways * self.hierarchy.block_bytes)
        policies = [MPPPBPolicy(num_sets, ways, config) for config in configs]
        sim = BatchLLCSimulator(llc_bytes, ways, policies,
                                self.hierarchy.block_bytes)
        with obs.span("stage2"):
            replays = sim.run(upper.llc_stream, pc_trace=trace.pcs,
                              warmup=warm_llc)
        return [
            self._finish_segment(segment, upper, llc, warm_mem)
            for llc in replays
        ]

    def _stage3_events(self, segment: Segment, upper: UpperLevelResult,
                       warm_mem: int) -> Stage3Events:
        events = self._stage3_cache.get(segment.name)
        if events is None:
            events = build_stage3_events(segment.trace, upper, self.timing,
                                         start_mem=warm_mem)
            self._stage3_cache[segment.name] = events
        return events

    def _finish_segment(self, segment: Segment, upper: UpperLevelResult,
                        llc: LLCResult, warm_mem: int) -> SegmentResult:
        """Stage 3 + metric assembly shared by both Stage-2 paths."""
        trace = segment.trace
        measured_instr = upper.num_instructions - (
            upper.instr_indices[warm_mem] if warm_mem < len(trace.pcs) else 0
        )
        model = TimingModel(self.timing)
        with obs.span("stage3-timing"):
            if stage3_vector_enabled():
                instr, latencies, depends = demand_load_arrays(
                    self._stage3_events(segment, upper, warm_mem),
                    llc.outcomes, self.timing,
                )
                timing_result = model.simulate_packed(
                    instr, latencies, depends, measured_instr)
            else:
                events = demand_load_events(
                    trace, upper, llc.outcomes, self.timing,
                    start_mem=warm_mem
                )
                timing_result = model.simulate(events, measured_instr)
        return SegmentResult(
            segment_name=segment.name,
            weight=segment.weight,
            ipc=timing_result.ipc,
            mpki=mpki_of(llc.stats.demand_misses, measured_instr),
            llc_accesses=llc.stats.accesses,
            llc_hits=llc.stats.hits,
            llc_misses=llc.stats.misses,
            llc_bypasses=llc.stats.bypasses,
            demand_misses=llc.stats.demand_misses,
            instructions=measured_instr,
        )

    def run_benchmark(
        self, name: str, segments: Sequence[Segment], policy_factory: PolicyFactory
    ) -> BenchmarkResult:
        results = tuple(self.run_segment(s, policy_factory) for s in segments)
        return BenchmarkResult(benchmark=name, segments=results)

    def run_suite(
        self,
        suite: Dict[str, Sequence[Segment]],
        policy_factory: PolicyFactory,
    ) -> Dict[str, BenchmarkResult]:
        return {
            name: self.run_benchmark(name, segments, policy_factory)
            for name, segments in sorted(suite.items())
        }


def cross_validated_configs(suite_names: Sequence[str]):
    """Assign each benchmark the Table 1 feature set trained on the
    *other* half of the suite, mirroring the paper's cross-validation
    (Section 5.2): the first half of the alphabetized suite evaluates
    with set (b), the second half with set (a).
    """
    from repro.core.presets import single_thread_config

    ordered = sorted(suite_names)
    half = len(ordered) // 2
    assignment = {}
    for index, name in enumerate(ordered):
        table = "b" if index < half else "a"
        assignment[name] = single_thread_config(table)
    return assignment


def speedups_over_lru(
    results: Dict[str, BenchmarkResult], lru_results: Dict[str, BenchmarkResult]
) -> Dict[str, float]:
    """Per-benchmark IPC ratio versus the LRU baseline (Section 4.5)."""
    return {
        name: results[name].ipc / lru_results[name].ipc
        for name in sorted(results)
        if name in lru_results
    }
