"""Multi-programmed (4-core, shared LLC) simulation (Sections 4.2, 6.1).

Implements the FIESTA-flavored methodology at the LLC:

* Each thread's private L1/L2 filtering and standalone-LRU timing are
  computed once per segment (and cached across mixes).
* The four LLC access streams are interleaved by their *standalone*
  timestamps — a fixed-interleave approximation of the paper's
  closed-loop simulation, documented in DESIGN.md — and replayed
  against the shared LLC under the policy under test.
* A thread that exhausts its region restarts from the beginning, so
  all cores stay active until every thread finishes at least one full
  region (the paper's "starts over at the beginning" rule).
* Per-thread IPC is computed from that thread's lap-0 hit/miss
  outcomes; weighted speedup is ``sum(IPC_i / SingleIPC_i)``,
  normalized to the LRU run by the caller (Section 4.5).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cpu.timing import TimingConfig, TimingModel
from repro.sim.hierarchy import HierarchyConfig, UpperLevelResult, UpperLevels
from repro.sim.llc import LLCAccess, LLCSimulator
from repro.sim.single import demand_load_events, replay_segment
from repro.traces.mixes import Mix
from repro.traces.trace import Segment
from repro.util.stats import mpki as mpki_of

PolicyFactory = Callable[[int, int], ReplacementPolicy]


@dataclass
class ThreadData:
    """Per-segment state reused across every mix containing it."""

    segment: Segment
    upper: UpperLevelResult
    single_ipc: float
    single_cycles: float
    timestamps: List[float]
    warm_mem: int
    warm_llc: int


@dataclass(frozen=True)
class MixResult:
    """Measured metrics for one policy on one mix."""

    mix_name: str
    thread_names: Tuple[str, ...]
    ipcs: Tuple[float, ...]
    single_ipcs: Tuple[float, ...]
    mpki: float
    llc_misses: int
    llc_bypasses: int

    @property
    def weighted_speedup(self) -> float:
        """Raw weighted speedup (before LRU normalization)."""
        return sum(i / s for i, s in zip(self.ipcs, self.single_ipcs))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for the on-disk result cache (``repro.exec``)."""
        return {
            "mix_name": self.mix_name,
            "thread_names": list(self.thread_names),
            "ipcs": list(self.ipcs),
            "single_ipcs": list(self.single_ipcs),
            "mpki": self.mpki,
            "llc_misses": self.llc_misses,
            "llc_bypasses": self.llc_bypasses,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "MixResult":
        return MixResult(
            mix_name=payload["mix_name"],
            thread_names=tuple(payload["thread_names"]),
            ipcs=tuple(payload["ipcs"]),
            single_ipcs=tuple(payload["single_ipcs"]),
            mpki=payload["mpki"],
            llc_misses=payload["llc_misses"],
            llc_bypasses=payload["llc_bypasses"],
        )


class MultiProgrammedRunner:
    """Shared-LLC runner with per-segment preparation caching."""

    def __init__(
        self,
        hierarchy: HierarchyConfig,
        timing: Optional[TimingConfig] = None,
        prefetch: bool = True,
        warmup_fraction: float = 0.25,
        stage1_store: Optional[Any] = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.timing = timing or TimingConfig()
        self.prefetch = prefetch
        self.warmup_fraction = warmup_fraction
        self.stage1_store = stage1_store
        self._upper = UpperLevels(hierarchy, prefetch=prefetch)
        self._threads: Dict[str, ThreadData] = {}

    @property
    def _geometry(self) -> Tuple[int, int, int]:
        llc_bytes = self.hierarchy.llc_bytes
        ways = self.hierarchy.llc_ways
        return llc_bytes, ways, llc_bytes // (ways * self.hierarchy.block_bytes)

    # -- per-thread preparation -------------------------------------------

    def thread_data(self, segment: Segment) -> ThreadData:
        """Stage-1 + standalone-LRU baseline for one segment, memoized."""
        # Span covers the memo hit too, so serial and parallel drives
        # (whose workers memoize independently) emit equal span sets.
        with obs.span("stage1"):
            return self._thread_data(segment)

    def _thread_data(self, segment: Segment) -> ThreadData:
        cached = self._threads.get(segment.name)
        if cached is not None:
            return cached
        upper = None
        store = self.stage1_store
        if store is not None:
            upper = store.load(segment)
        if upper is None:
            upper = self._upper.run(segment.trace)
            if store is not None:
                store.save(segment, upper)
        llc_bytes, ways, num_sets = self._geometry
        warm_mem = int(len(segment.trace.pcs) * self.warmup_fraction)
        warm_llc = upper.llc_warmup_boundary(warm_mem)

        sim = LLCSimulator(llc_bytes, ways, LRUPolicy(num_sets, ways),
                           self.hierarchy.block_bytes)
        standalone = sim.run(upper.llc_stream, pc_trace=segment.trace.pcs,
                             warmup=warm_llc)
        model = TimingModel(self.timing)
        full_events = demand_load_events(
            segment.trace, upper, standalone.outcomes, self.timing, start_mem=0
        )
        full_timing = model.simulate(full_events, upper.num_instructions)
        measured_events = demand_load_events(
            segment.trace, upper, standalone.outcomes, self.timing,
            start_mem=warm_mem,
        )
        measured_instr = upper.num_instructions - (
            upper.instr_indices[warm_mem] if warm_mem < len(segment.trace.pcs) else 0
        )
        single_ipc = model.simulate(measured_events, measured_instr).ipc
        cpi = full_timing.cycles / max(1, upper.num_instructions)
        timestamps = [a.instr_index * cpi for a in upper.llc_stream]
        data = ThreadData(
            segment=segment,
            upper=upper,
            single_ipc=single_ipc,
            single_cycles=full_timing.cycles,
            timestamps=timestamps,
            warm_mem=warm_mem,
            warm_llc=warm_llc,
        )
        self._threads[segment.name] = data
        return data

    # -- mix replay ----------------------------------------------------------

    def run_mix(self, mix: Mix, policy_factory: PolicyFactory) -> MixResult:
        threads = [self.thread_data(s) for s in mix.segments]
        merged, origins, merged_pcs, pc_offsets = self._interleave(threads)

        llc_bytes, ways, num_sets = self._geometry
        policy = policy_factory(num_sets, ways)
        with obs.span("stage2"):
            # Same kernel routing as single-core: MPPPB mixes ride the
            # columnar Stage-2 kernel when it is enabled.
            result = replay_segment(llc_bytes, ways, policy,
                                    self.hierarchy.block_bytes, merged,
                                    merged_pcs, 0)

        # Scatter lap-0 outcomes back to per-thread outcome arrays.
        per_thread_outcomes: List[List[bool]] = [
            [False] * len(t.upper.llc_stream) for t in threads
        ]
        measured_misses = 0
        for merged_idx, (thread_idx, local_idx, lap) in enumerate(origins):
            if lap != 0:
                continue
            hit = result.outcomes[merged_idx]
            per_thread_outcomes[thread_idx][local_idx] = hit
            thread = threads[thread_idx]
            access = thread.upper.llc_stream[local_idx]
            if (not hit and not access.is_prefetch
                    and local_idx >= thread.warm_llc):
                measured_misses += 1

        model = TimingModel(self.timing)
        ipcs = []
        total_measured_instr = 0
        with obs.span("stage3-timing"):
            for thread_idx, thread in enumerate(threads):
                trace = thread.segment.trace
                events = demand_load_events(
                    trace, thread.upper, per_thread_outcomes[thread_idx],
                    self.timing, start_mem=thread.warm_mem,
                )
                measured_instr = thread.upper.num_instructions - (
                    thread.upper.instr_indices[thread.warm_mem]
                    if thread.warm_mem < len(trace.pcs) else 0
                )
                total_measured_instr += measured_instr
                ipcs.append(model.simulate(events, measured_instr).ipc)

        return MixResult(
            mix_name=mix.name,
            thread_names=tuple(t.segment.name for t in threads),
            ipcs=tuple(ipcs),
            single_ipcs=tuple(t.single_ipc for t in threads),
            mpki=mpki_of(measured_misses, max(1, total_measured_instr)),
            llc_misses=result.stats.misses,
            llc_bypasses=result.stats.bypasses,
        )

    def _interleave(
        self, threads: Sequence[ThreadData]
    ) -> Tuple[List[LLCAccess], List[Tuple[int, int, int]], List[int], List[int]]:
        """Timestamp-merge the threads' LLC streams with region laps.

        PC traces are concatenated; each thread's accesses get their
        ``mem_index`` rebased into the concatenation so PC-history
        features keep working across threads.
        """
        pc_offsets: List[int] = []
        merged_pcs: List[int] = []
        for thread in threads:
            pc_offsets.append(len(merged_pcs))
            merged_pcs.extend(thread.segment.trace.pcs)

        heap: List[Tuple[float, int, int, int]] = []  # ts, thread, local, lap
        done = [len(t.upper.llc_stream) == 0 for t in threads]
        for thread_idx, thread in enumerate(threads):
            if thread.timestamps:
                heapq.heappush(heap, (thread.timestamps[0], thread_idx, 0, 0))

        merged: List[LLCAccess] = []
        origins: List[Tuple[int, int, int]] = []
        while heap and not all(done):
            ts, thread_idx, local_idx, lap = heapq.heappop(heap)
            thread = threads[thread_idx]
            access = thread.upper.llc_stream[local_idx]
            merged.append(
                LLCAccess(
                    pc=access.pc,
                    block=access.block,
                    offset=access.offset,
                    is_write=access.is_write,
                    is_prefetch=access.is_prefetch,
                    mem_index=access.mem_index + pc_offsets[thread_idx],
                    instr_index=access.instr_index,
                )
            )
            origins.append((thread_idx, local_idx, lap))
            next_local = local_idx + 1
            if next_local >= len(thread.timestamps):
                done[thread_idx] = True
                next_local = 0
                lap += 1
            next_ts = thread.timestamps[next_local] + (lap * thread.single_cycles)
            heapq.heappush(heap, (next_ts, thread_idx, next_local, lap))
        return merged, origins, merged_pcs, pc_offsets


def normalized_weighted_speedups(
    results: Dict[str, List[MixResult]], baseline: str = "lru"
) -> Dict[str, List[float]]:
    """Normalize each policy's per-mix weighted speedup to the baseline.

    ``results`` maps policy name to a list of :class:`MixResult` in the
    same mix order.  The output is what Figure 4 plots as S-curves.
    """
    if baseline not in results:
        raise ValueError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    normalized: Dict[str, List[float]] = {}
    for name, mix_results in results.items():
        if len(mix_results) != len(base):
            raise ValueError(f"policy {name!r} ran a different mix count")
        normalized[name] = [
            r.weighted_speedup / b.weighted_speedup
            for r, b in zip(mix_results, base)
        ]
    return normalized
