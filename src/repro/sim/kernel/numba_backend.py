"""Numba JIT replay backend: the kernel over flat arrays.

This backend expresses the entire per-candidate replay —
lookup, perceptron sum, sampler training and LRU shuffle, the MPPPB
decision cascade, PLRU/SRRIP walks, fills and evictions — as one
nopython-compatible function over flat numpy arrays
(:func:`_kernel_py`).  At import time nothing requires numba: the
function is plain Python (so the test suite can execute it undecorated
and pin it against :class:`~repro.sim.llc.LLCSimulator` even on hosts
without numba) and is ``numba.njit``-wrapped lazily on first use.

State crosses the array boundary twice per replay: Python objects are
*lowered* to arrays before the call (cache tags with ``-1`` for
invalid ways, tree bits / RRPV rows, sampler sets as fixed-capacity
rows plus a length column, weight tables as one flat vector with
per-feature offsets, feature entries as kind/arg/xor descriptor
vectors, the per-position training plans as CSR) and *written back*
as plain Python ints afterwards, so downstream consumers — result
hashing, artifact serialization, the sequential replay resuming on
the same policy object — observe exactly the state the bytecode
paths would have produced.

Integer discipline matches the numpy backend: every array is
``int64`` (weights saturate at ±32 so sums stay tiny; block addresses
and partial tags fit comfortably), and ``.tolist()`` on the way out
restores builtin ``int``/``bool``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.predictor import CONFIDENCE_MAX, CONFIDENCE_MIN
from repro.core.sampler import SamplerEntry
from repro.core.tables import WEIGHT_MAX, WEIGHT_MIN
from repro.sim.llc import LLCResult, LLCStats

_KIND_MDPP = 0
_KIND_SRRIP = 1

# Feature-entry kinds in the descriptor vectors.
_F_SLOT = 0
_F_CONST0 = 1
_F_INSERT = 2
_F_BURST = 3
_F_LASTMISS = 4

_XOR_MASK = 255

_numba_checked = False
_numba_ok = False
_numba_error: Optional[str] = None
_compiled = None


def available() -> bool:
    """True when numba imports; memoized, import deferred until asked."""
    global _numba_checked, _numba_ok, _numba_error
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except ImportError as exc:
            _numba_ok = False
            _numba_error = str(exc)
    return _numba_ok


def import_error() -> Optional[str]:
    """Why numba is unavailable (``None`` when it imports fine)."""
    available()
    return _numba_error


def _kernel_py(n, warmup, blocks, set_idxs, tags, samp_idxs, prefetch,
               slot_mat, nslots, needs_h,
               feat_kind, feat_arg, feat_xor, nf, assoc,
               fa_start, fa_feats, wflat, woff,
               ctags, fills, tree_bits, rrpv,
               s_tags, s_conf, s_idx, s_len, lastm, outcomes, counters,
               scratch, kind, ways, levels, promote_pos, rrpv_max,
               tau_bypass, tau1, tau2, tau3, p1, p2, p3, tau_np,
               theta, sampler_ways):
    """One candidate's full replay over flat arrays.

    Counter layout: ``[0:4]`` warm (hits, demand hits, bypasses,
    evictions), ``[4:8]`` measured ditto, ``[8]`` promotions
    suppressed, ``[9]`` live trainings, ``[10]`` dead trainings.
    Kept nopython-clean: scalar locals, no Python objects, no
    ``for``/``else``.
    """
    for i in range(n):
        block = blocks[i]
        s = set_idxs[i]
        way = -1
        for w in range(ways):
            if ctags[s, w] == block:
                way = w
                break
        lm = lastm[s]
        mru = 0
        position = 0
        if way >= 0:
            if kind == _KIND_MDPP:
                node = 0
                for level in range(levels):
                    d = (way >> (levels - 1 - level)) & 1
                    if tree_bits[s, node] == d:
                        position = (position << 1) | 1
                    else:
                        position = position << 1
                    node = 2 * node + 1 + d
                if position == 0:
                    mru = 1
            else:
                if rrpv[s, way] == 0:
                    mru = 1
        ins = 0 if way >= 0 else 1
        hv = slot_mat[i, 0] if needs_h == 1 else 0
        total = 0
        for f in range(nf):
            fk = feat_kind[f]
            if fk == _F_SLOT:
                idx = slot_mat[i, feat_arg[f]]
            elif fk == _F_CONST0:
                idx = 0
            else:
                if fk == _F_INSERT:
                    bit = ins
                elif fk == _F_BURST:
                    bit = mru
                else:
                    bit = lm
                if feat_xor[f] == 1:
                    idx = (bit ^ hv) & _XOR_MASK
                else:
                    idx = bit
            scratch[f] = idx
            total += wflat[woff[f] + idx]
        if total > CONFIDENCE_MAX:
            conf = CONFIDENCE_MAX
        elif total < CONFIDENCE_MIN:
            conf = CONFIDENCE_MIN
        else:
            conf = total

        si = samp_idxs[i]
        if si >= 0:
            tag = tags[i]
            length = s_len[si]
            sp = -1
            for j in range(length):
                if s_tags[si, j] == tag:
                    sp = j
                    break
            if sp >= 0:
                if s_conf[si, sp] > -theta:
                    for f in range(nf):
                        if sp < assoc[f]:
                            ti = woff[f] + s_idx[si, sp, f]
                            v = wflat[ti]
                            if v > WEIGHT_MIN:
                                wflat[ti] = v - 1
                            counters[9] += 1
                bound = sp
            else:
                bound = length
            for pos in range(bound):
                fs = fa_start[pos + 1]
                fe = fa_start[pos + 2]
                if fe > fs and s_conf[si, pos] < theta:
                    for jj in range(fs, fe):
                        f = fa_feats[jj]
                        ti = woff[f] + s_idx[si, pos, f]
                        v = wflat[ti]
                        if v < WEIGHT_MAX:
                            wflat[ti] = v + 1
                        counters[10] += 1
            if sp >= 0:
                top = sp
            else:
                top = length
                if top >= sampler_ways:
                    top = sampler_ways - 1
                s_len[si] = top + 1
            for j in range(top, 0, -1):
                s_tags[si, j] = s_tags[si, j - 1]
                s_conf[si, j] = s_conf[si, j - 1]
                for f in range(nf):
                    s_idx[si, j, f] = s_idx[si, j - 1, f]
            s_tags[si, 0] = tag
            s_conf[si, 0] = conf
            for f in range(nf):
                s_idx[si, 0, f] = scratch[f]

        base = 0 if i < warmup else 4
        pf = prefetch[i]
        if way >= 0:
            counters[base] += 1
            if pf == 0:
                counters[base + 1] += 1
            outcomes[i] = 1
            if conf > tau_np:
                counters[8] += 1
            else:
                if kind == _KIND_MDPP:
                    if position > promote_pos:
                        node = 0
                        for level in range(levels):
                            d = (way >> (levels - 1 - level)) & 1
                            t = (promote_pos >> (levels - 1 - level)) & 1
                            if t == 1:
                                tree_bits[s, node] = d
                            else:
                                tree_bits[s, node] = 1 - d
                            node = 2 * node + 1 + d
                else:
                    rrpv[s, way] = 0
            lastm[s] = 0
        else:
            if conf > tau_bypass:
                counters[base + 2] += 1
            else:
                fw = fills[s]
                if fw < ways:
                    fills[s] = fw + 1
                else:
                    if kind == _KIND_MDPP:
                        node = 0
                        for level in range(levels):
                            node = 2 * node + 1 + tree_bits[s, node]
                        fw = node - (ways - 1)
                    else:
                        fw = -1
                        while fw < 0:
                            for w in range(ways):
                                if rrpv[s, w] >= rrpv_max:
                                    fw = w
                                    break
                            if fw < 0:
                                for w in range(ways):
                                    rrpv[s, w] = rrpv[s, w] + 1
                    counters[base + 3] += 1
                ctags[s, fw] = block
                if conf > tau1:
                    pp = p1
                elif conf > tau2:
                    pp = p2
                elif conf > tau3:
                    pp = p3
                else:
                    pp = 0
                if kind == _KIND_MDPP:
                    node = 0
                    for level in range(levels):
                        d = (fw >> (levels - 1 - level)) & 1
                        t = (pp >> (levels - 1 - level)) & 1
                        if t == 1:
                            tree_bits[s, node] = d
                        else:
                            tree_bits[s, node] = 1 - d
                        node = 2 * node + 1 + d
                else:
                    rrpv[s, fw] = pp
            lastm[s] = 1
    return 0


def _get_compiled():
    global _compiled
    if _compiled is None:
        import numba

        _compiled = numba.njit(cache=False)(_kernel_py)
    return _compiled


def _entry_descriptors(entries) -> Tuple["np.ndarray", "np.ndarray",
                                         "np.ndarray"]:
    kinds, args, xors = [], [], []
    family_kind = {"insert": _F_INSERT, "burst": _F_BURST,
                   "lastmiss": _F_LASTMISS}
    for entry in entries:
        kind = entry[0]
        if kind == "slot":
            kinds.append(_F_SLOT)
            args.append(entry[1])
            xors.append(0)
        elif kind == "const0":
            kinds.append(_F_CONST0)
            args.append(0)
            xors.append(0)
        else:
            kinds.append(family_kind[entry[1]])
            args.append(0)
            xors.append(1 if entry[2] else 0)
    return (np.asarray(kinds, dtype=np.int64),
            np.asarray(args, dtype=np.int64),
            np.asarray(xors, dtype=np.int64))


def replay_all(sim, columns, warmup: int,
               kernel=None) -> Optional[List[LLCResult]]:
    """Replay every candidate of ``sim`` over ``columns`` via numba.

    ``kernel`` defaults to the njit-compiled :func:`_kernel_py`; tests
    pass the undecorated function to pin the kernel's *semantics*
    without requiring numba on the host.
    """
    from repro.sim.kernel import numpy_backend

    all_fills = []
    for cache in sim.caches:
        fills = numpy_backend.prefix_fills(cache)
        if fills is None:
            return None
        all_fills.append(fills)
    if kernel is None:
        kernel = _get_compiled()

    n = columns.n
    warm_boundary = min(max(warmup, 0), n)
    warm_prefetches = int(columns.prefetch[:warm_boundary].sum())
    measured_prefetches = int(columns.prefetch[warm_boundary:].sum())
    if columns.cols:
        slot_mat = np.ascontiguousarray(np.stack(columns.cols, axis=1))
    else:
        slot_mat = np.zeros((n, 1), dtype=np.int64)
    prefetch = columns.prefetch.astype(np.int64)

    results = []
    for k, policy in enumerate(sim.policies):
        results.append(_replay_candidate(
            sim, k, all_fills[k], kernel, n, warm_boundary,
            warm_prefetches, measured_prefetches, columns, slot_mat,
            prefetch))
    return results


def _replay_candidate(sim, k, fills, kernel, n, warm_boundary,
                      warm_prefetches, measured_prefetches, columns,
                      slot_mat, prefetch):
    policy = sim.policies[k]
    cache = sim.caches[k]
    config = policy.config
    sampler = policy.sampler
    predictor = policy.predictor
    default = policy.default
    entries = sim._entry_sets[k]
    nf = len(entries)
    num_sets = cache.num_sets
    ways = sim.ways

    feat_kind, feat_arg, feat_xor = _entry_descriptors(entries)
    assoc = np.asarray(predictor.associativities, dtype=np.int64)

    # Per-position demotion plans as CSR over sampler._features_at
    # (indexed by sampler position + 1, up to the sampler's ways).
    fa_start = [0]
    fa_feats: List[int] = []
    for position in range(sampler.ways + 1):
        fa_feats.extend(sampler._features_at[position])
        fa_start.append(len(fa_feats))
    fa_start_arr = np.asarray(fa_start, dtype=np.int64)
    fa_feats_arr = np.asarray(fa_feats, dtype=np.int64)

    woff = [0]
    for table in predictor._weights:
        woff.append(woff[-1] + len(table))
    wflat = np.empty(woff[-1], dtype=np.int64)
    for f, table in enumerate(predictor._weights):
        wflat[woff[f]:woff[f + 1]] = table
    woff_arr = np.asarray(woff, dtype=np.int64)

    ctags = np.full((num_sets, ways), -1, dtype=np.int64)
    for s in range(num_sets):
        row = cache.tags[s]
        count = fills[s]
        for w in range(count):
            ctags[s, w] = row[w]
    fills_arr = np.asarray(fills, dtype=np.int64)

    if type(default).__name__ == "MDPPPolicy":
        kind = _KIND_MDPP
        levels = default.trees[0].levels
        promote_pos = default.promote_position
        rrpv_max = 0
        tree_bits = np.asarray([tree.bits for tree in default.trees],
                               dtype=np.int64)
        rrpv = np.zeros((1, 1), dtype=np.int64)
    else:
        kind = _KIND_SRRIP
        levels = 0
        promote_pos = 0
        rrpv_max = default.rrpv_max
        tree_bits = np.zeros((1, 1), dtype=np.int64)
        rrpv = np.asarray(default.rrpvs, dtype=np.int64)

    sampler_sets = len(sampler._sets)
    sampler_ways = sampler.ways
    s_tags = np.zeros((sampler_sets, sampler_ways), dtype=np.int64)
    s_conf = np.zeros((sampler_sets, sampler_ways), dtype=np.int64)
    s_idx = np.zeros((sampler_sets, sampler_ways, max(nf, 1)),
                     dtype=np.int64)
    s_len = np.zeros(sampler_sets, dtype=np.int64)
    for si, entry_list in enumerate(sampler._sets):
        s_len[si] = len(entry_list)
        for j, entry in enumerate(entry_list):
            s_tags[si, j] = entry.tag
            s_conf[si, j] = entry.confidence
            for f in range(nf):
                s_idx[si, j, f] = entry.indices[f]

    lastm = np.zeros(num_sets, dtype=np.int64)
    outcomes = np.zeros(n, dtype=np.int64)
    counters = np.zeros(11, dtype=np.int64)
    scratch = np.zeros(max(nf, 1), dtype=np.int64)

    kernel(n, warm_boundary, columns.blocks, columns.set_idxs,
           columns.tags, columns.samp_idxs, prefetch,
           slot_mat, slot_mat.shape[1], 1 if sim._needs_h else 0,
           feat_kind, feat_arg, feat_xor, nf, assoc,
           fa_start_arr, fa_feats_arr, wflat, woff_arr,
           ctags, fills_arr, tree_bits, rrpv,
           s_tags, s_conf, s_idx, s_len, lastm, outcomes, counters,
           scratch, kind, ways, levels, promote_pos, rrpv_max,
           config.tau_bypass, config.taus[0], config.taus[1],
           config.taus[2], config.placements[0], config.placements[1],
           config.placements[2], config.tau_no_promote,
           sampler.theta, sampler_ways)

    # -- write back ----------------------------------------------------
    for s in range(num_sets):
        count = int(fills_arr[s])
        row = ctags[s].tolist()
        tag_row = cache.tags[s]
        valid_row = cache.valid[s]
        for w in range(ways):
            tag_row[w] = row[w] if w < count else -1
            valid_row[w] = w < count
        cache._where[s] = {row[w]: w for w in range(count)}
    if kind == _KIND_MDPP:
        bits_lists = tree_bits.tolist()
        for s, tree in enumerate(default.trees):
            tree.bits[:] = bits_lists[s]
    else:
        rrpv_lists = rrpv.tolist()
        for s in range(num_sets):
            default.rrpvs[s][:] = rrpv_lists[s]
    flat = wflat.tolist()
    for f, table in enumerate(predictor._weights):
        table[:] = flat[woff[f]:woff[f + 1]]
    new_sets = []
    tag_lists = s_tags.tolist()
    conf_lists = s_conf.tolist()
    idx_lists = s_idx.tolist()
    for si in range(sampler_sets):
        count = int(s_len[si])
        new_sets.append([
            SamplerEntry(tag_lists[si][j], idx_lists[si][j][:nf],
                         conf_lists[si][j])
            for j in range(count)
        ])
    sampler._sets = new_sets

    counts = counters.tolist()
    policy.bypasses += counts[2] + counts[6]
    policy.promotions_suppressed += counts[8]
    sampler.trainings_live += counts[9]
    sampler.trainings_dead += counts[10]

    warm_stats = _segment_stats(warm_boundary, warm_prefetches, counts[0:4])
    stats = _segment_stats(n - warm_boundary, measured_prefetches,
                           counts[4:8])
    return LLCResult(outcomes=outcomes.astype(bool).tolist(),
                     stats=stats, warm_stats=warm_stats)


def _segment_stats(accesses: int, prefetches: int, counts) -> LLCStats:
    hits, demand_hits, bypasses, evictions = counts
    demand_accesses = accesses - prefetches
    return LLCStats(
        accesses=accesses,
        hits=hits,
        misses=accesses - hits,
        bypasses=bypasses,
        evictions=evictions,
        demand_accesses=demand_accesses,
        demand_hits=demand_hits,
        demand_misses=demand_accesses - demand_hits,
    )
