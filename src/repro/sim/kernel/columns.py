"""Columnar lowering of a Stage-1 LLC stream (the kernel's phase 1).

The batched replay engine (:mod:`repro.sim.batch`) already splits a
Stage-2 replay into a candidate-invariant *shared pass* and K
per-candidate replays, but its shared pass still executes Python
bytecode per access: one ``array('q')`` append per column plus one
compiled static-slot call.  This module strength-reduces the shared
pass itself to numpy array expressions over the whole stream:

* **Stream columns** — block, set index, 16-bit partial tag, sampler
  set, prefetch flag — become vectorized mask/shift/mod expressions.
* **Static feature slots** — the deduplicated ``(source, lo, hi,
  bits)`` extractions of :func:`repro.sim.batch._descriptor` — become
  vectorized slice-and-fold pipelines, including the splitmix64 PC
  hash (:func:`repro.util.hashing.mix64` replicated in wrapping
  ``uint64`` arithmetic) and the PC-history gathers.

Every column is bit-identical to what
:meth:`~repro.sim.batch.BatchLLCSimulator._shared_pass` produces with
scalar Python integers; ``tests/test_kernel.py`` pins the round trip.
All intermediate arithmetic runs in ``uint64`` (64-bit address/PC
slices and the hash multiplies overflow ``int64``) and results are
narrowed to ``int64`` at the end, whose ``.tolist()`` yields the plain
Python ints the replay backends index with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import BLOCK_OFFSET_BITS, MAX_TABLE_SIZE
from repro.sim.llc import LLCAccess
from repro.util.hashing import _GOLDEN64, _MIX1, _MIX2

_XOR_MASK = MAX_TABLE_SIZE - 1


def mix64_array(values: "np.ndarray") -> "np.ndarray":
    """Vectorized splitmix64 finalizer over a ``uint64`` array.

    Mirrors :func:`repro.util.hashing.mix64` statement for statement;
    numpy ``uint64`` arithmetic wraps modulo 2**64 exactly like the
    ``& MASK64`` in the scalar version.
    """
    values = values + np.uint64(_GOLDEN64)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(_MIX1)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(_MIX2)
    return values ^ (values >> np.uint64(31))


def _slice_and_fold_array(source: "np.ndarray", lo: int, hi: int,
                          bits: int) -> "np.ndarray":
    """Vectorized ``bits[lo..hi]``-slice folded to ``bits`` wide.

    The scalar fold (:func:`repro.core.features._fold_into`) XORs
    ``bits``-wide chunks until the slice is exhausted; a fixed
    ``ceil(width / bits)`` iteration count is equivalent because the
    remaining value is zero afterwards and XOR with zero is identity.
    """
    width = hi - lo + 1
    sliced = (source >> np.uint64(lo)) & np.uint64((1 << width) - 1)
    if width <= bits:
        return sliced.astype(np.int64)
    fold_mask = np.uint64((1 << bits) - 1)
    shift = np.uint64(bits)
    folded = np.zeros_like(sliced)
    for _ in range((width + bits - 1) // bits):
        folded ^= sliced & fold_mask
        sliced = sliced >> shift
    return folded.astype(np.int64)


@dataclass
class StreamColumns:
    """One stream lowered to typed columns, shared by every candidate.

    ``cols`` holds one ``int64`` array per shared slot in the batch
    engine's slot layout — slot 0 is the hashed PC when any feature
    XORs — so a per-candidate ``("slot", j)`` entry reads ``cols[j]``.
    The numpy replay backend indexes Python lists (scalar ``list``
    subscripts beat zero-dim numpy scalars by a wide margin in a
    bytecode loop); :meth:`as_lists` materializes them once, lazily.
    """

    n: int
    blocks: Any
    set_idxs: Any
    tags: Any
    samp_idxs: Any
    prefetch: Any
    cols: List[Any]
    _lists: Optional[Tuple] = field(default=None, repr=False)

    def as_lists(self) -> Tuple:
        """Python-list views: (blocks, sets, tags, samps, pf, cols)."""
        if self._lists is None:
            self._lists = (
                self.blocks.tolist(),
                self.set_idxs.tolist(),
                self.tags.tolist(),
                self.samp_idxs.tolist(),
                self.prefetch.tolist(),
                [col.tolist() for col in self.cols],
            )
        return self._lists


def lower_stream(
    stream: Sequence[LLCAccess],
    pc_trace: Sequence[int],
    num_sets: int,
    stride: int,
    sampler_sets: int,
    tag_bits: int,
    slots: Sequence[Tuple],
    needs_h: bool,
) -> StreamColumns:
    """Lower ``stream`` into :class:`StreamColumns` for ``slots``.

    ``slots``/``needs_h`` come from the batch engine's
    :func:`~repro.sim.batch._build_programs`; each slot descriptor is
    ``("s"|"sx", (source, lo, hi, bits))`` with ``source`` one of
    ``pc``/``addr``/``off``/``pd<depth>``.
    """
    n = len(stream)
    pcs = np.fromiter((a.pc for a in stream), dtype=np.int64, count=n)
    blocks = np.fromiter((a.block for a in stream), dtype=np.int64, count=n)
    offsets = np.fromiter((a.offset for a in stream), dtype=np.int64,
                          count=n)
    mems = np.fromiter((a.mem_index for a in stream), dtype=np.int64,
                       count=n)
    prefetch = np.fromiter((a.is_prefetch for a in stream), dtype=np.uint8,
                           count=n)

    set_idxs = blocks & np.int64(num_sets - 1)
    ublocks = blocks.astype(np.uint64)
    tag_mask = np.uint64((1 << tag_bits) - 1)
    tags = ((ublocks ^ (ublocks >> np.uint64(tag_bits))
             ^ (ublocks >> np.uint64(2 * tag_bits)))
            & tag_mask).astype(np.int64)

    quotient = set_idxs // np.int64(stride)
    sampled = (set_idxs % np.int64(stride) == 0) & (quotient < sampler_sets)
    samp_idxs = np.where(sampled, quotient, np.int64(-1))

    # Same history base the sequential AccessContext uses: prefetches
    # observe the history *including* their triggering access.
    hbase = mems + prefetch.astype(np.int64)
    hist = np.asarray(pc_trace, dtype=np.int64)
    hlen = len(hist)

    hashed_pc = (mix64_array((pcs >> np.int64(2)).astype(np.uint64))
                 & np.uint64(_XOR_MASK)).astype(np.int64)

    sources: Dict[str, Any] = {}

    def source_array(name: str) -> "np.ndarray":
        known = sources.get(name)
        if known is not None:
            return known
        if name == "pc":
            value = pcs.astype(np.uint64)
        elif name == "addr":
            value = ((ublocks << np.uint64(BLOCK_OFFSET_BITS))
                     | offsets.astype(np.uint64))
        elif name == "off":
            value = offsets.astype(np.uint64)
        else:  # pd<depth>: PC-history probe, zero out of range
            depth = int(name[2:])
            idx = hbase - np.int64(depth)
            if hlen == 0:
                value = np.zeros(n, dtype=np.uint64)
            else:
                valid = (idx >= 0) & (idx < hlen)
                value = np.where(
                    valid, hist[np.clip(idx, 0, hlen - 1)], np.int64(0)
                ).astype(np.uint64)
        sources[name] = value
        return value

    static_cols: Dict[Tuple, Any] = {}
    cols: List[Any] = [hashed_pc] if needs_h else []
    for kind, raw in slots:
        value = static_cols.get(raw)
        if value is None:
            source, lo, hi, bits = raw
            value = _slice_and_fold_array(source_array(source), lo, hi,
                                          bits)
            static_cols[raw] = value
        if kind == "sx":
            value = (value ^ hashed_pc) & np.int64(_XOR_MASK)
        cols.append(value)

    return StreamColumns(
        n=n,
        blocks=blocks,
        set_idxs=set_idxs,
        tags=tags,
        samp_idxs=samp_idxs,
        prefetch=prefetch,
        cols=cols,
    )
