"""Numpy-column replay backend: a specialized, fully-inlined loop.

Profiling the batched Python replay at tiny scale shows where the
time actually goes: ~52% inside ``ReuseSampler.access`` (attribute
walks, ``SamplerEntry`` shuffling, per-feature method calls), with
most of the rest split across the compiled eval call, the replacement
policy's method dispatch, and ``LLCStats`` attribute increments.  At
the paper's geometry every sampler helper is hot — at tiny scale the
sampler stride is 1 so *every* access trains.  Chunked numpy
vectorization cannot help a loop whose state (weights, sampler LRU,
tree bits) is serially dependent access to access; what helps is
eliminating every function call and attribute load from the loop.

So this backend generates one flat Python function per candidate
*shape* (feature entries x default policy x geometry x thresholds)
with everything inlined as local-variable bytecode:

* the perceptron sum, with per-feature index expressions specialized
  separately for the hit branch (``ins=0``, live PLRU position) and
  the miss branch (``ins=1``, ``mru=0``);
* the reuse sampler on parallel lists (tags / index-vectors /
  confidences) with a sentinel ``list.index`` probe (one C scan, no
  exceptions) and precomputed per-position training plans;
* saturating weight updates applied directly to the live
  ``WeightTable`` lists, so no write-back pass is needed for weights;
* the PLRU position/place walks unrolled to straight-line code (or
  the SRRIP scan/age loop), operating on the policy's own
  ``tree.bits`` / ``rrpvs`` lists in place;
* fill tracking via a per-set fill cursor instead of a per-way
  invalid scan (valid ways in a :class:`SetAssociativeCache` that has
  only ever installed are a prefix — checked by the caller's
  preflight, with fallback to the Python replay if violated);
* scalar local counters instead of per-access ``LLCStats``
  increments; aggregate stats are derived afterwards.

The generated function runs a half-open access range so the driver
invokes it twice — warmup segment, then measured segment — exactly
reproducing the warm/measured split of ``LLCSimulator.run``.  Code
objects are memoized by shape, so a feature-search batch of K
perturbed candidates compiles a handful of functions once and reuses
them for every candidate and every segment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.predictor import CONFIDENCE_MAX, CONFIDENCE_MIN
from repro.core.sampler import SamplerEntry
from repro.core.tables import WEIGHT_MAX, WEIGHT_MIN
from repro.sim.llc import LLCResult, LLCStats

_CODE_CACHE: Dict[Tuple, object] = {}
_CODE_CACHE_MAX = 512

_KIND_MDPP = 0
_KIND_SRRIP = 1


def _index_exprs(entries, ins_literal: int, mru_expr: str) -> List[str]:
    """Per-feature index expressions for one branch of the cascade.

    ``ins`` is constant per branch and ``mru`` is 0 on misses, so the
    dynamic single-bit features constant-fold; XOR'd ones collapse to
    the hoisted hashed-PC local ``hv`` (``0 ^ hv == hv`` and both
    operands are already < 256, so the mask is dropped too).
    """
    exprs = []
    for entry in entries:
        kind = entry[0]
        if kind == "slot":
            exprs.append(f"c{entry[1]}[i]")
        elif kind == "const0":
            exprs.append("0")
        else:  # ("dyn", family, xor)
            family, xor = entry[1], entry[2]
            var = {"insert": str(ins_literal), "burst": mru_expr,
                   "lastmiss": "lm"}[family]
            if not xor:
                exprs.append(var)
            elif var == "0":
                exprs.append("hv")
            else:
                exprs.append(f"({var} ^ hv)")
    return exprs


def _plru_position(levels: int, way_var: str, bits_var: str) -> List[str]:
    """Unrolled PLRU position walk; leaves ``p`` and ``d0..`` bound."""
    lines = []
    node = "0"
    for level in range(levels):
        shift = levels - 1 - level
        d = f"d{level}"
        lines.append(f"{d} = ({way_var} >> {shift}) & 1" if shift
                     else f"{d} = {way_var} & 1")
        probe = f"1 if {bits_var}[{node}] == {d} else 0"
        lines.append(f"p = {probe}" if level == 0 else f"p = p + p + ({probe})")
        if level < levels - 1:
            nxt = f"a{level + 1}"
            lines.append(f"{nxt} = {node} + {node} + 1 + {d}"
                         if level else f"{nxt} = 1 + {d}")
            node = nxt
    return lines


def _plru_place_const(levels: int, position: int, bits_var: str) -> List[str]:
    """Unrolled place() toward a compile-time position.

    Reuses the ``d{level}`` / ``a{level}`` locals left by the position
    walk — promotion only happens on hits, right after that walk.
    """
    lines = []
    for level in range(levels):
        node = "0" if level == 0 else f"a{level}"
        toward = (position >> (levels - 1 - level)) & 1
        value = f"d{level}" if toward else f"1 - d{level}"
        lines.append(f"{bits_var}[{node}] = {value}")
    return lines


def _plru_victim(levels: int, ways: int, bits_var: str) -> List[str]:
    """Unrolled victim walk; leaves ``fw`` bound."""
    lines = []
    node = "0"
    for level in range(levels):
        nxt = f"n{level + 1}"
        lines.append(f"{nxt} = {node} + {node} + 1 + {bits_var}[{node}]"
                     if level else f"{nxt} = 1 + {bits_var}[0]")
        node = nxt
    lines.append(f"fw = {node} - {ways - 1}")
    return lines


def _plru_place_dynamic(levels: int, way_var: str, pos_var: str,
                        bits_var: str) -> List[str]:
    """Unrolled place() toward a runtime position (miss-fill path)."""
    lines = []
    node = "0"
    for level in range(levels):
        shift = levels - 1 - level
        g = f"g{level}"
        lines.append(f"{g} = ({way_var} >> {shift}) & 1" if shift
                     else f"{g} = {way_var} & 1")
        mask = 1 << shift
        lines.append(
            f"{bits_var}[{node}] = {g} if {pos_var} & {mask} else 1 - {g}")
        if level < levels - 1:
            nxt = f"h{level + 1}"
            lines.append(f"{nxt} = {node} + {node} + 1 + {g}"
                         if level else f"{nxt} = 1 + {g}")
            node = nxt
    return lines


def _emit(lines: List[str], depth: int, chunk) -> None:
    pad = "    " * depth
    if isinstance(chunk, str):
        lines.append(pad + chunk)
    else:
        lines.extend(pad + line for line in chunk)


def _build_source(key: Tuple) -> str:
    (entries, ncols, kind, ways, levels, promote_pos, tau_bypass, taus,
     placements, tau_np, theta, sampler_ways, rrpv_max, needs_h) = key
    nf = len(entries)
    uses_hv = needs_h and any(
        e[0] == "dyn" and e[2] for e in entries)
    col_params = "".join(f", c{j}" for j in range(ncols))

    hit_idx = _index_exprs(entries, 0, "mru")
    miss_idx = _index_exprs(entries, 1, "0")
    hit_sum = " + ".join(f"W{f}[_i{f}]" for f in range(nf))
    ind_list = ", ".join(f"_i{f}" for f in range(nf))

    src: List[str] = []
    e = lambda depth, chunk: _emit(src, depth, chunk)  # noqa: E731

    e(0, "def _kernel(lo, hi, blocks, set_idxs, tags, samp_idxs, prefetch,")
    e(0, "            outcomes, WHERE, CTAGS, FILLS, LASTM, DEF,")
    e(0, f"            S_TAGS, S_IND, S_CONF, WL, LIVE, LIVE_N, DEM{col_params}):")
    for f in range(nf):
        e(1, f"W{f} = WL[{f}]")
    e(1, "hits = 0; dhits = 0; byp = 0; evc = 0; sup = 0")
    e(1, "t_live = 0; t_dead = 0")
    e(1, "for i in range(lo, hi):")
    e(2, "block = blocks[i]")
    e(2, "s = set_idxs[i]")
    e(2, "ws = WHERE[s]")
    e(2, "way = ws.get(block, -1)")
    e(2, "lm = LASTM[s]")
    if uses_hv:
        e(2, "hv = c0[i]")
    # --- prediction (branch-specialized) -------------------------------
    e(2, "if way >= 0:")
    e(3, "tb = DEF[s]")
    if kind == _KIND_MDPP:
        e(3, _plru_position(levels, "way", "tb"))
        e(3, "mru = 1 if p == 0 else 0")
    else:
        e(3, "mru = 1 if tb[way] == 0 else 0")
    for f in range(nf):
        e(3, f"_i{f} = {hit_idx[f]}")
    e(3, f"total = {hit_sum}")
    e(2, "else:")
    for f in range(nf):
        e(3, f"_i{f} = {miss_idx[f]}")
    e(3, "total = " + " + ".join(f"W{f}[_i{f}]" for f in range(nf)))
    e(2, f"if total > {CONFIDENCE_MAX}:")
    e(3, f"conf = {CONFIDENCE_MAX}")
    e(2, f"elif total < {CONFIDENCE_MIN}:")
    e(3, f"conf = {CONFIDENCE_MIN}")
    e(2, "else:")
    e(3, "conf = total")
    # --- sampler (inlined ReuseSampler.access) -------------------------
    e(2, "si = samp_idxs[i]")
    e(2, "if si >= 0:")
    e(3, "st = S_TAGS[si]")
    e(3, "sx = S_IND[si]")
    e(3, "sc = S_CONF[si]")
    e(3, "tag = tags[i]")
    e(3, "le = len(st)")
    e(3, "st.append(tag)")
    e(3, "sp = st.index(tag)")
    e(3, "del st[le]")
    e(3, f"ind = [{ind_list}]")
    e(3, "if sp < le:")
    e(4, f"if sc[sp] > {-theta}:")
    e(5, "ei = sx[sp]")
    e(5, "for f in LIVE[sp]:")
    e(6, "w = WL[f]")
    e(6, "ti = ei[f]")
    e(6, "v = w[ti]")
    e(6, f"if v > {WEIGHT_MIN}:")
    e(7, "w[ti] = v - 1")
    e(5, "t_live += LIVE_N[sp]")
    e(4, "bound = sp")
    e(3, "else:")
    e(4, "bound = le")
    e(3, "for dp, dfeats, dn in DEM:")
    e(4, "if dp >= bound:")
    e(5, "break")
    e(4, f"if sc[dp] < {theta}:")
    e(5, "e2 = sx[dp]")
    e(5, "for f in dfeats:")
    e(6, "w = WL[f]")
    e(6, "ti = e2[f]")
    e(6, "v = w[ti]")
    e(6, f"if v < {WEIGHT_MAX}:")
    e(7, "w[ti] = v + 1")
    e(5, "t_dead += dn")
    e(3, "if sp < le:")
    e(4, "del st[sp]")
    e(4, "del sx[sp]")
    e(4, "del sc[sp]")
    e(3, f"elif le >= {sampler_ways}:")
    e(4, "del st[-1]")
    e(4, "del sx[-1]")
    e(4, "del sc[-1]")
    e(3, "st.insert(0, tag)")
    e(3, "sx.insert(0, ind)")
    e(3, "sc.insert(0, conf)")
    # --- decision cascade ----------------------------------------------
    e(2, "if way >= 0:")
    e(3, "hits += 1")
    e(3, "if prefetch[i] == 0:")
    e(4, "dhits += 1")
    e(3, f"if conf > {tau_np}:")
    e(4, "sup += 1")
    e(3, "else:")
    if kind == _KIND_MDPP:
        e(4, f"if p > {promote_pos}:")
        e(5, _plru_place_const(levels, promote_pos, "tb"))
    else:
        e(4, "tb[way] = 0")
    e(3, "LASTM[s] = 0")
    e(3, "outcomes[i] = True")
    e(2, "else:")
    e(3, f"if conf > {tau_bypass}:")
    e(4, "byp += 1")
    e(3, "else:")
    e(4, "ts = CTAGS[s]")
    e(4, "fw = FILLS[s]")
    e(4, f"if fw < {ways}:")
    e(5, "FILLS[s] = fw + 1")
    e(4, "else:")
    e(5, "tb = DEF[s]")
    if kind == _KIND_MDPP:
        e(5, _plru_victim(levels, ways, "tb"))
    else:
        e(5, "while True:")
        e(6, "fw = -1")
        e(6, f"for w in range({ways}):")
        e(7, f"if tb[w] >= {rrpv_max}:")
        e(8, "fw = w")
        e(8, "break")
        e(6, "if fw >= 0:")
        e(7, "break")
        e(6, f"for w in range({ways}):")
        e(7, "tb[w] = tb[w] + 1")
    e(5, "evc += 1")
    e(5, "ev = ts[fw]")
    e(5, "if ws.get(ev) == fw:")
    e(6, "del ws[ev]")
    e(4, "ts[fw] = block")
    e(4, "ws[block] = fw")
    e(4, f"if conf > {taus[0]}:")
    e(5, f"pp = {placements[0]}")
    e(4, f"elif conf > {taus[1]}:")
    e(5, f"pp = {placements[1]}")
    e(4, f"elif conf > {taus[2]}:")
    e(5, f"pp = {placements[2]}")
    e(4, "else:")
    e(5, "pp = 0")
    e(4, "tb2 = DEF[s]")
    if kind == _KIND_MDPP:
        e(4, _plru_place_dynamic(levels, "fw", "pp", "tb2"))
    else:
        e(4, "tb2[fw] = pp")
    e(3, "LASTM[s] = 1")
    e(1, "return hits, dhits, byp, evc, sup, t_live, t_dead")
    return "\n".join(src) + "\n"


def _kernel_for(key: Tuple):
    fn = _CODE_CACHE.get(key)
    if fn is None:
        namespace: Dict[str, object] = {}
        exec(compile(_build_source(key), "<stage2-kernel>", "exec"),
             namespace)
        fn = namespace["_kernel"]
        if len(_CODE_CACHE) >= _CODE_CACHE_MAX:
            _CODE_CACHE.clear()
        _CODE_CACHE[key] = fn
    return fn


def prefix_fills(cache) -> List[int]:
    """Per-set valid counts, or ``None`` if validity is not a prefix.

    A fresh cache (all invalid) and any cache that has only ever been
    driven through install/evict have prefix-shaped validity, because
    ``invalid_way`` always returns the lowest invalid way.  A cache
    manipulated some other way (e.g. explicit ``invalidate``) falls
    back to the Python replay rather than risking a divergence.
    """
    fills: List[int] = []
    for valid_row in cache.valid:
        count = 0
        for flag in valid_row:
            if flag:
                count += 1
            else:
                break
        if any(valid_row[count:]):
            return None
        fills.append(count)
    return fills


def _candidate_key(sim, k: int) -> Tuple:
    policy = sim.policies[k]
    config = policy.config
    default = policy.default
    if type(default).__name__ == "MDPPPolicy":
        kind = _KIND_MDPP
        levels = default.trees[0].levels
        promote = default.promote_position
        rrpv_max = 0
    else:
        kind = _KIND_SRRIP
        levels = 0
        promote = 0
        rrpv_max = default.rrpv_max
    return (
        sim._entry_sets[k],
        sim_ncols(sim),
        kind,
        sim.ways,
        levels,
        promote,
        config.tau_bypass,
        tuple(config.taus),
        tuple(config.placements),
        config.tau_no_promote,
        policy.sampler.theta,
        policy.sampler.ways,
        rrpv_max,
        sim._needs_h,
    )


def sim_ncols(sim) -> int:
    return len(sim._slots) + (1 if sim._needs_h else 0)


def replay_all(sim, columns, warmup: int):
    """Replay every candidate of ``sim`` over ``columns``.

    Returns a list of :class:`LLCResult` (one per candidate) or
    ``None`` when a precondition fails — checked for *all* candidates
    before any state is touched, so a fallback to the Python replay
    never double-runs a candidate.
    """
    all_fills = []
    for cache in sim.caches:
        fills = prefix_fills(cache)
        if fills is None:
            return None
        all_fills.append(fills)

    n = columns.n
    warm_boundary = min(max(warmup, 0), n)
    warm_prefetches = int(columns.prefetch[:warm_boundary].sum())
    measured_prefetches = int(columns.prefetch[warm_boundary:].sum())
    blocks, set_idxs, tags, samp_idxs, prefetch, cols = columns.as_lists()

    results = []
    for k in range(len(sim.policies)):
        results.append(_replay_candidate(
            sim, k, all_fills[k], n, warm_boundary, warm_prefetches,
            measured_prefetches, blocks, set_idxs, tags, samp_idxs,
            prefetch, cols))
    return results


def _replay_candidate(sim, k, fills, n, warm_boundary, warm_prefetches,
                      measured_prefetches, blocks, set_idxs, tags,
                      samp_idxs, prefetch, cols):
    policy = sim.policies[k]
    cache = sim.caches[k]
    sampler = policy.sampler
    kernel = _kernel_for(_candidate_key(sim, k))

    outcomes = [False] * n
    lastm = bytearray(cache.num_sets)
    default = policy.default
    if type(default).__name__ == "MDPPPolicy":
        def_state = [tree.bits for tree in default.trees]
    else:
        def_state = default.rrpvs

    s_tags = [[entry.tag for entry in entries] for entries in sampler._sets]
    s_ind = [[entry.indices for entry in entries]
             for entries in sampler._sets]
    s_conf = [[entry.confidence for entry in entries]
              for entries in sampler._sets]

    assoc = policy.predictor.associativities
    live = tuple(
        tuple(f for f, a in enumerate(assoc) if pos < a)
        for pos in range(sampler.ways)
    )
    live_n = tuple(len(feats) for feats in live)
    demotions = tuple(
        (pos, tuple(sampler._features_at[pos + 1]),
         len(sampler._features_at[pos + 1]))
        for pos in range(sampler.ways)
        if sampler._features_at[pos + 1]
    )

    state = (cache._where, cache.tags, fills, lastm, def_state,
             s_tags, s_ind, s_conf, policy.predictor._weights,
             live, live_n, demotions, *cols)
    warm_counts = kernel(0, warm_boundary, blocks, set_idxs, tags,
                         samp_idxs, prefetch, outcomes, *state)
    counts = kernel(warm_boundary, n, blocks, set_idxs, tags,
                    samp_idxs, prefetch, outcomes, *state)

    # Write back the state the kernel tracked outside the live objects.
    for set_idx, count in enumerate(fills):
        valid_row = cache.valid[set_idx]
        for way in range(count):
            valid_row[way] = True
    sampler._sets = [
        [SamplerEntry(tag, ind, conf)
         for tag, ind, conf in zip(tag_row, ind_row, conf_row)]
        for tag_row, ind_row, conf_row in zip(s_tags, s_ind, s_conf)
    ]
    policy.bypasses += warm_counts[2] + counts[2]
    policy.promotions_suppressed += warm_counts[4] + counts[4]
    sampler.trainings_live += warm_counts[5] + counts[5]
    sampler.trainings_dead += warm_counts[6] + counts[6]

    warm_stats = _segment_stats(warm_boundary, warm_prefetches,
                                warm_counts)
    stats = _segment_stats(n - warm_boundary, measured_prefetches, counts)
    return LLCResult(stats=stats, warm_stats=warm_stats,
                     outcomes=outcomes)


def _segment_stats(accesses: int, prefetches: int, counts) -> LLCStats:
    hits, demand_hits, bypasses, evictions = counts[0], counts[1], \
        counts[2], counts[3]
    demand_accesses = accesses - prefetches
    return LLCStats(
        accesses=accesses,
        hits=hits,
        misses=accesses - hits,
        bypasses=bypasses,
        evictions=evictions,
        demand_accesses=demand_accesses,
        demand_hits=demand_hits,
        demand_misses=demand_accesses - demand_hits,
    )
