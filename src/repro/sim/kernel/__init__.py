"""Columnar multi-backend Stage-2 replay kernel.

This package is the third strength reduction of the Stage-2 hot path
(after the fused feature pipeline and the shared-context batch
engine): it lowers a segment's Stage-1 LLC stream into numpy columns
once (:mod:`~repro.sim.kernel.columns`) and replays every candidate
through a backend compiled against that fixed schema —

* ``numpy`` — always available when numpy imports: vectorized column
  lowering plus a per-candidate ``exec``-specialized replay loop with
  the sampler, perceptron sum, and replacement-policy walks inlined
  (:mod:`~repro.sim.kernel.numpy_backend`);
* ``numba`` — optional JIT tier: the same replay expressed over flat
  arrays and ``numba.njit``-compiled on first use
  (:mod:`~repro.sim.kernel.numba_backend`), with a one-line notice
  and graceful fallback to ``numpy`` when requested but absent.

Selection follows the repo's knob pattern (``REPRO_STAGE2_BATCH``,
``REPRO_STAGE3_VECTOR``): the ``REPRO_STAGE2_KERNEL`` environment
variable picks ``off`` / ``numpy`` / ``numba``, defaulting to the best
available backend, and — because every backend is bit-identical to
:class:`~repro.sim.llc.LLCSimulator` (pinned by the determinism suite
and ``tests/test_kernel.py``) — the knob never appears in cache keys.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional, Sequence

try:  # numpy is an optional extra ([perf]); everything degrades.
    import numpy as _np

    _np_error = None
except ImportError as _exc:  # pragma: no cover - exercised via fallback tests
    _np = None
    _np_error = str(_exc)

_DISABLED = ("off", "0", "false", "no", "none")
_AUTO = ("on", "1", "true", "yes", "auto", "best")
_notices_emitted = set()


def _notice(key: str, message: str) -> None:
    """One line to stderr, once per process per condition."""
    if key not in _notices_emitted:
        _notices_emitted.add(key)
        print(f"repro: {message}", file=sys.stderr)


def _numba_available() -> bool:
    from repro.sim.kernel import numba_backend

    return numba_backend.available()


def available_backends() -> dict:
    """Importability of each kernel backend (for perf reports)."""
    return {"numpy": _np is not None, "numba": _numba_available()}


def backend_errors() -> dict:
    """Why each unavailable backend failed to import (``None`` = fine).

    Keeps :func:`available_backends` a plain name→bool map (callers
    parametrize tests on it) while letting perf reports record the
    diagnosis — distinguishing "numba not installed" from "numba's
    llvmlite wheel broke" without rerunning imports by hand.
    """
    from repro.sim.kernel import numba_backend

    return {"numpy": _np_error, "numba": numba_backend.import_error()}


def stage2_kernel_backend() -> str:
    """Resolve ``REPRO_STAGE2_KERNEL`` to ``off``/``numpy``/``numba``.

    Unset (or ``auto``/``on``) picks the best importable backend —
    numba when present, else numpy, else ``off``.  An explicit request
    for a missing backend degrades one tier with a one-line notice
    rather than failing: every backend produces bit-identical results,
    so the choice is purely about speed.
    """
    raw = os.environ.get("REPRO_STAGE2_KERNEL")
    value = (raw or "auto").strip().lower()
    if value in _DISABLED:
        return "off"
    if value == "numpy":
        if _np is None:
            _notice("no-numpy",
                    "REPRO_STAGE2_KERNEL=numpy but numpy is not "
                    "installed; falling back to the Python replay "
                    "(pip install 'repro[perf]')")
            return "off"
        return "numpy"
    if value == "numba":
        if _numba_available():
            return "numba"
        _notice("no-numba",
                "REPRO_STAGE2_KERNEL=numba but numba is not installed; "
                "falling back to the numpy kernel "
                "(pip install 'repro[jit]')")
        if _np is not None:
            return "numpy"
        _notice("no-numpy",
                "numpy is not installed either; falling back to the "
                "Python replay (pip install 'repro[perf]')")
        return "off"
    if value not in _AUTO:
        _notice(f"unknown-{value}",
                f"unknown REPRO_STAGE2_KERNEL={raw!r}; using automatic "
                "backend selection (off|numpy|numba)")
    if _numba_available():
        return "numba"
    if _np is not None:
        return "numpy"
    return "off"


def replay_batch(sim, stream: Sequence, pc_trace: Sequence[int],
                 warmup: int, backend: str) -> Optional[List]:
    """Replay all candidates of ``sim`` through ``backend``.

    Returns one :class:`~repro.sim.llc.LLCResult` per candidate, or
    ``None`` when a precondition fails — the caller
    (:meth:`~repro.sim.batch.BatchLLCSimulator.run`) then falls back
    to the per-access Python replay.  Preconditions are checked for
    every candidate before any candidate state is touched, so a
    ``None`` never leaves a half-replayed batch behind.
    """
    if _np is None:
        return None
    from repro.sim.kernel import columns as _columns

    first = sim.policies[0].sampler
    cols = _columns.lower_stream(
        stream,
        pc_trace,
        sim.num_sets,
        first.mapper._stride,
        first.mapper.sampler_sets,
        first.tag_bits,
        sim._slots,
        sim._needs_h,
    )
    if backend == "numba":
        from repro.sim.kernel import numba_backend

        if numba_backend.available():
            return numba_backend.replay_all(sim, cols, warmup)
        _notice("no-numba",
                "REPRO_STAGE2_KERNEL=numba but numba is not installed; "
                "falling back to the numpy kernel "
                "(pip install 'repro[jit]')")
    from repro.sim.kernel import numpy_backend

    return numpy_backend.replay_all(sim, cols, warmup)
