"""Upper-level cache hierarchy driver (stage 1 of the pipeline).

Runs a workload trace through the private L1 data cache and unified L2
(both LRU, per Section 4.1) with the stream prefetcher, producing:

* per memory access, the level that services it (L1, L2, or an index
  into the LLC stream), plus its retired-instruction index — the
  inputs of the timing model; and
* the LLC access stream (demand L2 misses plus prefetch fills carrying
  the fake prefetch PC), which stage 2 replays against each policy.

Because L1/L2 behavior cannot depend on the LLC's replacement policy
(non-inclusive hierarchy, no back-invalidation), this stage runs once
per workload and its output is reused for every policy.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.access import PREFETCH_PC
from repro.cache.cache import FastLRUCache
from repro.cpu.prefetcher import StreamPrefetcher
from repro.sim.llc import LLCAccess
from repro.traces.trace import Trace

SERVICE_L1 = -1
SERVICE_L2 = -2


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache geometry for one core plus the shared LLC."""

    l1_kib: int = 32
    l1_ways: int = 8
    l2_kib: int = 256
    l2_ways: int = 8
    llc_kib: int = 2048
    llc_ways: int = 16
    block_bytes: int = 64

    @property
    def block_shift(self) -> int:
        return self.block_bytes.bit_length() - 1

    @property
    def llc_bytes(self) -> int:
        return self.llc_kib * 1024


@dataclass
class UpperLevelResult:
    """Stage-1 output for one workload segment."""

    service: List[int]
    instr_indices: List[int]
    llc_stream: List[LLCAccess]
    num_instructions: int
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    prefetches_issued: int

    # Lazily built sorted view of llc_stream's mem_index column, for
    # the warmup-boundary binary search.  Excluded from init/compare:
    # it is derived state, and the artifact (de)serializers construct
    # results field-by-field (repro.exec.artifacts), never via asdict.
    _mem_indices: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def llc_warmup_boundary(self, warm_mem_index: int) -> int:
        """First LLC stream index at or after memory access ``warm_mem_index``.

        ``mem_index`` is non-decreasing along the stream (the hierarchy
        driver appends in trace order, prefetches carrying the index of
        their trigger), so the boundary is a binary search over a
        per-result memoized index list — this runs once per policy per
        segment and used to linearly rescan the whole stream each time.
        """
        indices = self._mem_indices
        if indices is None:
            self._mem_indices = indices = [
                access.mem_index for access in self.llc_stream
            ]
        return bisect_left(indices, warm_mem_index)


class UpperLevels:
    """L1 + L2 + stream prefetcher front half of the hierarchy."""

    def __init__(self, config: HierarchyConfig, prefetch: bool = True) -> None:
        self.config = config
        self.prefetch = prefetch

    def run(self, trace: Trace) -> UpperLevelResult:
        config = self.config
        l1 = FastLRUCache(config.l1_kib * 1024, config.l1_ways, config.block_bytes)
        l2 = FastLRUCache(config.l2_kib * 1024, config.l2_ways, config.block_bytes)
        prefetcher = StreamPrefetcher() if self.prefetch else None
        shift = config.block_shift
        offset_mask = config.block_bytes - 1

        service: List[int] = []
        instr_indices: List[int] = []
        llc_stream: List[LLCAccess] = []
        instr = -1
        pcs = trace.pcs
        addresses = trace.addresses
        writes = trace.writes
        gaps = trace.gaps
        l1_access = l1.access
        l2_access = l2.access
        l2_probe = l2.probe
        l2_fill = l2.fill
        for mem_index in range(len(pcs)):
            instr += gaps[mem_index] + 1
            address = addresses[mem_index]
            block = address >> shift
            instr_indices.append(instr)
            if l1_access(block):
                service.append(SERVICE_L1)
                continue
            prefetch_blocks = (
                prefetcher.on_l1_miss(block) if prefetcher is not None else ()
            )
            if l2_access(block):
                service.append(SERVICE_L2)
            else:
                service.append(len(llc_stream))
                llc_stream.append(
                    LLCAccess(
                        pc=pcs[mem_index],
                        block=block,
                        offset=address & offset_mask,
                        is_write=writes[mem_index],
                        is_prefetch=False,
                        mem_index=mem_index,
                        instr_index=instr,
                    )
                )
            for pf_block in prefetch_blocks:
                if pf_block == block or l2_probe(pf_block):
                    continue
                l2_fill(pf_block)
                llc_stream.append(
                    LLCAccess(
                        pc=PREFETCH_PC,
                        block=pf_block,
                        offset=0,
                        is_write=False,
                        is_prefetch=True,
                        mem_index=mem_index,
                        instr_index=instr,
                    )
                )
        return UpperLevelResult(
            service=service,
            instr_indices=instr_indices,
            llc_stream=llc_stream,
            num_instructions=trace.num_instructions,
            l1_hits=l1.hits,
            l1_misses=l1.misses,
            l2_hits=l2.hits,
            l2_misses=l2.misses,
            prefetches_issued=prefetcher.issued if prefetcher is not None else 0,
        )
