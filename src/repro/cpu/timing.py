"""Approximate out-of-order core timing model (Section 4.1).

The paper models a 4-wide, 8-stage out-of-order pipeline with a
128-entry instruction window and a 200-cycle DRAM latency.  We use an
analytical in-order-retire model that captures the two effects cache
policy studies depend on:

* **Front-end throughput** — instructions dispatch at most ``width``
  per cycle, so compute-bound stretches cost ``n / width`` cycles.
* **Memory-level parallelism bounded by the window** — a load may not
  dispatch until the instruction ``window`` slots older has retired,
  so independent misses closer than 128 instructions overlap, while
  misses further apart serialize.  This is the standard analytic
  treatment of MLP in a ROB-limited machine.

Two further effects bound memory-level parallelism the way real
machines do:

* **Dependent loads** — a load flagged as address-dependent on the
  previous load (pointer chasing) cannot dispatch before that load
  completes, serializing chase misses end to end.
* **MSHR occupancy** — at most ``mshr_limit`` LLC-level requests may be
  outstanding at once; an additional miss waits for the oldest to
  complete.  (The paper does not state its MSHR count; 16 is typical
  of the era and noted in DESIGN.md.)

Loads complete ``latency`` cycles after dispatch; non-memory
instructions and stores (modeled as non-blocking, write-allocate)
complete immediately for timing purposes.  Retirement is in-order, so
total cycles are the maximum of the front-end bound and the last
completion.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class TimingConfig:
    """Core and memory latencies, in cycles."""

    width: int = 4
    window: int = 128
    l1_latency: int = 3
    l2_latency: int = 12
    llc_latency: int = 30
    dram_latency: int = 200
    mshr_limit: int = 16

    def __post_init__(self) -> None:
        if self.width < 1 or self.window < 1:
            raise ValueError("width and window must be positive")
        if self.mshr_limit < 1:
            raise ValueError("mshr_limit must be positive")

    @property
    def llc_miss_latency(self) -> int:
        """Latency of an access that misses the LLC and goes to DRAM."""
        return self.llc_latency + self.dram_latency


@dataclass(frozen=True)
class TimingResult:
    cycles: float
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


class TimingModel:
    """Streaming cycle accounting over (instr_index, latency) load events."""

    def __init__(self, config: TimingConfig) -> None:
        self.config = config

    def simulate(
        self, load_events: Iterable[Sequence], total_instructions: int
    ) -> TimingResult:
        """Compute cycles for a program slice.

        ``load_events`` yields ``(instr_index, latency_cycles)`` or
        ``(instr_index, latency_cycles, depends)`` records in program
        order for every load; ``total_instructions`` is the total
        retired instruction count of the slice (memory and
        non-memory).
        """
        width = self.config.width
        window = self.config.window
        mshr_limit = self.config.mshr_limit
        llc_latency = self.config.llc_latency
        in_flight: Deque[Tuple[int, float]] = deque()
        mshrs: List[float] = []  # completion times of outstanding LLC requests
        retire_floor = 0.0
        last_completion = 0.0
        prev_load_completion = 0.0
        for event in load_events:
            instr_index, latency = event[0], event[1]
            depends = len(event) > 2 and event[2]
            boundary = instr_index - window
            while in_flight and in_flight[0][0] <= boundary:
                _, completion = in_flight.popleft()
                if completion > retire_floor:
                    retire_floor = completion
            dispatch = instr_index / width
            if retire_floor > dispatch:
                dispatch = retire_floor
            if depends and prev_load_completion > dispatch:
                dispatch = prev_load_completion
            if latency >= llc_latency:
                # This request occupies an MSHR until it completes.
                while mshrs and mshrs[0] <= dispatch:
                    heapq.heappop(mshrs)
                if len(mshrs) >= mshr_limit:
                    dispatch = max(dispatch, heapq.heappop(mshrs))
                heapq.heappush(mshrs, dispatch + latency)
            completion = dispatch + latency
            in_flight.append((instr_index, completion))
            prev_load_completion = completion
            if completion > last_completion:
                last_completion = completion
        cycles = max(total_instructions / width, last_completion)
        return TimingResult(cycles=cycles, instructions=total_instructions)

    def simulate_packed(
        self,
        instr_indices: Sequence[int],
        latencies: Sequence[int],
        depends: Sequence[bool],
        total_instructions: int,
    ) -> TimingResult:
        """Column-input variant of :meth:`simulate`.

        Takes the three event fields as parallel sequences (as produced
        by :func:`repro.sim.single.demand_load_arrays`) instead of an
        iterable of per-event records, skipping one tuple allocation
        and two subscripts per load.  The accounting below must stay in
        lockstep with :meth:`simulate` statement for statement — the
        two are pinned bit-identical by ``tests/test_timing.py``.
        """
        width = self.config.width
        window = self.config.window
        mshr_limit = self.config.mshr_limit
        llc_latency = self.config.llc_latency
        in_flight: Deque[Tuple[int, float]] = deque()
        mshrs: List[float] = []
        retire_floor = 0.0
        last_completion = 0.0
        prev_load_completion = 0.0
        for instr_index, latency, dep in zip(instr_indices, latencies,
                                             depends):
            boundary = instr_index - window
            while in_flight and in_flight[0][0] <= boundary:
                _, completion = in_flight.popleft()
                if completion > retire_floor:
                    retire_floor = completion
            dispatch = instr_index / width
            if retire_floor > dispatch:
                dispatch = retire_floor
            if dep and prev_load_completion > dispatch:
                dispatch = prev_load_completion
            if latency >= llc_latency:
                while mshrs and mshrs[0] <= dispatch:
                    heapq.heappop(mshrs)
                if len(mshrs) >= mshr_limit:
                    dispatch = max(dispatch, heapq.heappop(mshrs))
                heapq.heappush(mshrs, dispatch + latency)
            completion = dispatch + latency
            in_flight.append((instr_index, completion))
            prev_load_completion = completion
            if completion > last_completion:
                last_completion = completion
        cycles = max(total_instructions / width, last_completion)
        return TimingResult(cycles=cycles, instructions=total_instructions)
