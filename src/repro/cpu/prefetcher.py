"""Stream prefetcher (Section 4.1).

The paper's simulator models a stream prefetcher that starts a stream
on an L1 cache miss, waits for at most two misses to decide the stream
direction, then generates prefetch requests; it tracks 16 separate
streams replaced by LRU.  This module reproduces that behavior at
block granularity.

A stream is a run of block addresses advancing by +1 or -1 block.  On
each L1 miss the prefetcher tries to match an existing stream within a
small forward window; a matched, trained stream issues ``degree``
prefetch blocks ahead of the new head.  Unmatched misses allocate a
fresh untrained stream (possibly evicting the LRU stream), and an
untrained stream trains as soon as a second nearby miss reveals the
direction — "at most two misses to decide".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _Stream:
    last_block: int
    direction: int  # +1, -1, or 0 while untrained
    trained: bool
    lru_tick: int


class StreamPrefetcher:
    """Block-granular stream prefetcher with an LRU stream table."""

    def __init__(
        self,
        num_streams: int = 16,
        degree: int = 2,
        match_window: int = 4,
    ) -> None:
        if num_streams < 1 or degree < 1 or match_window < 1:
            raise ValueError("prefetcher parameters must be positive")
        self.num_streams = num_streams
        self.degree = degree
        self.match_window = match_window
        self._streams: List[_Stream] = []
        self._tick = 0
        self.issued = 0

    def on_l1_miss(self, block: int) -> List[int]:
        """Observe a demand L1 miss; return blocks to prefetch."""
        self._tick += 1
        stream = self._match(block)
        if stream is None:
            self._allocate(block)
            return []
        stream.lru_tick = self._tick
        if not stream.trained:
            delta = block - stream.last_block
            if delta == 0:
                return []
            stream.direction = 1 if delta > 0 else -1
            stream.trained = True
            stream.last_block = block
        else:
            stream.last_block = block
        prefetches = [
            block + stream.direction * distance
            for distance in range(1, self.degree + 1)
        ]
        prefetches = [p for p in prefetches if p >= 0]
        self.issued += len(prefetches)
        return prefetches

    def _match(self, block: int) -> Optional[_Stream]:
        """Find the stream this miss continues, if any.

        A trained stream matches misses up to ``match_window`` blocks
        ahead of its head in its direction; an untrained stream matches
        within the window on either side.
        """
        best: Optional[_Stream] = None
        best_distance = self.match_window + 1
        for stream in self._streams:
            delta = block - stream.last_block
            if stream.trained:
                distance = delta * stream.direction
                if 0 < distance <= self.match_window and distance < best_distance:
                    best = stream
                    best_distance = distance
            else:
                distance = abs(delta)
                if 0 < distance <= self.match_window and distance < best_distance:
                    best = stream
                    best_distance = distance
        return best

    def _allocate(self, block: int) -> None:
        stream = _Stream(last_block=block, direction=0, trained=False,
                         lru_tick=self._tick)
        if len(self._streams) < self.num_streams:
            self._streams.append(stream)
            return
        victim = min(range(len(self._streams)),
                     key=lambda i: self._streams[i].lru_tick)
        self._streams[victim] = stream

    @property
    def active_streams(self) -> int:
        return len(self._streams)
