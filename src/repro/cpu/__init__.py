"""Core-side models: stream prefetcher and out-of-order timing."""

from repro.cpu.prefetcher import StreamPrefetcher
from repro.cpu.timing import TimingConfig, TimingModel, TimingResult

__all__ = ["StreamPrefetcher", "TimingConfig", "TimingModel", "TimingResult"]
