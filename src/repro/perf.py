"""Hot-path performance harness.

Times the three pipeline stages in isolation and an end-to-end
policy compare against cold and warm artifact caches, producing the
``BENCH_hotpath.json`` report the CI perf-smoke job gates on.

Report schema (``REPORT_SCHEMA``)::

    {
      "schema": 5,                # REPORT_SCHEMA, not the cache schema
      "scale": "tiny",
      "benchmark": "soplex",      # hot-path micro-benchmark workload
      "accesses": 4000,
      "repeats": 3,               # best-of-N for every timing
      "backends": {               # what this host could actually run,
        "<name>": {               # so trajectory comparisons between
          "available": bool,      # reports aren't apples-to-oranges --
          "error": str|null       # and *why* a backend is missing
        }                         # (the import error, verbatim)
      },
      "hotpath": {
        "trace_gen_s": float,     # synthesize all segments once
        "stage1_s": float,        # upper-level hierarchy, all segments
        "stage2": {               # per policy: replay, both pipelines
          "<policy>": {"fused": float, "legacy": float}
        }
      },
      "search-batch": {           # K-candidate evaluation, both engines
        "k": int, "segments": int, "accesses": int,
        "sequential_s": float,    # REPRO_STAGE2_BATCH=off (per candidate)
        "batched_s": float,       # shared-context batch replay
        "speedup": float          # sequential_s / batched_s
      },
      "kernel": {                 # columnar Stage-2 replay kernel
        "k": int, "segments": int, "accesses": int,
        "python_s": float,        # REPRO_STAGE2_KERNEL=off (batched
                                  # bytecode replay, the PR 3 path)
        "numpy_s": float|null,    # columnar numpy backend
        "numba_s": float|null,    # numba JIT backend (post-warmup)
        "numpy_speedup": float|null,  # python_s / numpy_s
        "numba_speedup": float|null   # python_s / numba_s
      },
      "timing": {                 # Stage 3 alone, scalar vs vectorized
        "benchmark": str, "loads": int,
        "scalar_s": float,        # generator events + simulate()
        "vector_s": float|null,   # numpy fill + simulate_packed()
        "speedup": float|null
      },
      "telemetry": {              # repro.obs instrumentation cost
        "benchmark": str,
        "disabled_s": float,      # replay, telemetry off (the default)
        "enabled_s": float,       # replay inside obs.capture()
        "enabled_overhead": float,    # enabled_s/disabled_s - 1
        "null_span_ns": float,    # one disabled obs.span() round trip
        "spans_per_replay": int,  # span records an enabled replay emits
        "disabled_overhead": float    # estimated disabled-path fraction
      },
      "compare": {                # end-to-end engine compare
        "benchmarks": [...], "policies": [...],
        "cold_s": float,          # empty artifact cache, empty memos
        "warm_s": float,          # artifact cache from the cold run
        "speedup": float          # cold_s / warm_s
      },
      "graph": {                  # cost-aware experiment-graph scheduler
        "benchmark": str, "policies": [...],
        "cold_s": float,          # REPRO_GRAPH=off, empty cache
        "warm_s": float,          # REPRO_GRAPH=off, artifact-warm
        "graph_cold_s": float,    # scheduled: plan + prelude, cold
        "graph_warm_s": float,    # scheduled against a warm cache
        "warm_speedup": float     # warm_s / graph_warm_s
      },
      "ingest": {                 # streaming trace-decode throughput
        "records": int,           # fixture size, records per format
        "formats": {              # per trace format (repro.traces.ingest)
          "<fmt>": {
            "decode_s": float,    # full streamed decode, best-of-N
            "records_per_s": float,
            "file_bytes": int     # on-disk fixture size (gz'd for text)
          }
        }
      },
      "dist": {                   # execution-backend dispatch overhead
        "benchmarks": [...], "policies": [...],
        "workers": int, "cells": int,
        "fleet_startup_s": float, # spawn -> hello handshake -> close
        "local_s": float,         # local pool backend, artifact-warm
        "fleet_s": float,         # worker-fleet backend, artifact-warm
        "dispatch_overhead_s": float, # fleet_s-startup-local_s (signed)
        "per_cell_overhead_s": float  # dispatch_overhead_s / cells
      }
    }

All timings are best-of-``repeats`` wall seconds: minimums are far more
stable than means on shared CI runners.  :func:`check_report` gates
three strength reductions that must never regress — fused-vs-legacy
Stage 2 (``mpppb*`` policies only — nothing else uses the feature
pipeline), batched-vs-sequential candidate evaluation, and the columnar
numpy kernel (at least :data:`KERNEL_MIN_SPEEDUP` x over the batched
bytecode replay) — plus the telemetry disabled-path budget (estimated
instrumentation cost with telemetry off must stay under 2% of a
Stage-2 replay).

Micro-benchmarks that time a *specific* Stage-2 implementation pin
``REPRO_STAGE2_KERNEL`` explicitly, so the measurements keep meaning
what their names say regardless of the ambient knob.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro.config import ReproScale, get_scale
from repro.policies import policy_factory
from repro.sim.hierarchy import UpperLevels
from repro.sim.single import SingleThreadRunner
from repro.traces.trace import Segment
from repro.traces.workloads import build_segments

REPORT_SCHEMA = 8
# Instrumentation with telemetry disabled may cost at most this
# fraction of a Stage-2 replay (the obs layer's headline promise).
TELEMETRY_DISABLED_BUDGET = 0.02
# With telemetry *enabled*, the fully observed replay may cost at most
# this much over the disabled one.  The batched counter flush
# (``obs.inc_many``) and lock-free span append hold it near 7% on an
# idle host; the budget leaves headroom for shared CI runners.
TELEMETRY_ENABLED_BUDGET = 0.15
# The graph-scheduled warm path must keep pace with the unplanned warm
# path: planning (stat + cost passes) may add at most this factor plus
# a fixed allowance.  The allowance covers the constant per-run cost —
# cost-model load/save and plan construction — which does not scale
# with the workload and would otherwise dominate a millisecond-scale
# tiny-scale warm run; the factor bounds everything that does scale.
GRAPH_MAX_SLOWDOWN = 1.05
GRAPH_OVERHEAD_ALLOWANCE_S = 0.02
# The columnar numpy kernel must beat the batched bytecode replay by
# at least this factor on the Stage-2 replay itself.
KERNEL_MIN_SPEEDUP = 1.5
# The worker-fleet backend may tax an artifact-warm compare by at most
# this factor over the local pool, plus the measured transport startup
# and a fixed allowance.  The allowance covers the per-run cost that
# does not scale with cell count: each fresh fleet worker is a spawned
# interpreter that lazily imports the simulation stack at its first
# cell, where a forked pool worker inherits the parent's modules.
FLEET_MAX_SLOWDOWN = 1.15
FLEET_STARTUP_ALLOWANCE_S = 2.0
# Every streaming trace reader must decode at least this many records
# per second — a floor far under steady-state (the pure-Python text
# parser clears it by an order of magnitude on an idle host) chosen so
# only a genuine algorithmic regression, not CI-runner noise, trips it.
INGEST_MIN_RECORDS_PER_S = 20_000.0
DEFAULT_REPORT = "BENCH_hotpath.json"
DEFAULT_POLICIES = ("lru", "srrip", "mpppb-1a")
# Cache-friendly workloads whose LLC streams are short: the shared
# stages (trace synthesis + Stage 1) dominate the compare, which is
# exactly what the artifact cache removes on the warm run.
DEFAULT_COMPARE_BENCHMARKS = ("gamess", "hmmer", "povray")


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@contextmanager
def _env(name: str, value: str):
    """Pin one environment knob for the duration of a timing."""
    old = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if old is None:
            del os.environ[name]
        else:
            os.environ[name] = old


def _pipeline(name: str):
    """Pin ``REPRO_FEATURE_PIPELINE`` for the duration of a timing."""
    return _env("REPRO_FEATURE_PIPELINE", name)


# -- stage micro-benchmarks ------------------------------------------------


def bench_hotpath(scale: ReproScale, benchmark: str,
                  policies: Sequence[str], repeats: int) -> Dict[str, Any]:
    """Per-stage timings for one benchmark at one scale."""
    hierarchy = scale.hierarchy
    accesses = scale.segment_accesses

    trace_gen_s = _best_of(repeats, lambda: build_segments(
        benchmark, hierarchy.llc_bytes, accesses))
    segments: List[Segment] = build_segments(benchmark, hierarchy.llc_bytes,
                                             accesses)

    upper = UpperLevels(hierarchy)
    stage1_s = _best_of(repeats, lambda: [upper.run(s.trace)
                                          for s in segments])

    # Stage 2+3 replay through the single-thread runner with Stage 1
    # pre-seeded, so each timing covers exactly the per-policy work a
    # compare pays after the shared stages are cached.
    runner = SingleThreadRunner(hierarchy,
                                warmup_fraction=scale.warmup_fraction)
    for segment in segments:
        runner.upper_result(segment)

    # Fused-vs-legacy times the *sequential* feature pipelines, so the
    # columnar kernel (which bypasses per-access feature evaluation
    # entirely and has its own bench section) is pinned off here.
    stage2: Dict[str, Dict[str, float]] = {}
    with _env("REPRO_STAGE2_KERNEL", "off"):
        for policy in policies:
            timings: Dict[str, float] = {}
            for pipeline in ("fused", "legacy"):
                with _pipeline(pipeline):
                    timings[pipeline] = _best_of(repeats, lambda: [
                        runner.run_segment(s, policy_factory(policy, None))
                        for s in segments
                    ])
            stage2[policy] = timings

    return {
        "trace_gen_s": round(trace_gen_s, 6),
        "stage1_s": round(stage1_s, 6),
        "stage2": {p: {k: round(v, 6) for k, v in t.items()}
                   for p, t in stage2.items()},
    }


# -- batched candidate evaluation (search hot path) ------------------------


def bench_search_batch(scale: ReproScale, repeats: int,
                       k: int = 8) -> Dict[str, Any]:
    """Time a K-candidate evaluation, per-candidate vs batch replay.

    Mirrors the ``search`` command's workload (three benchmarks at a
    quarter of the scale's accesses) and candidate shape (a Table 1a
    base plus distinct single-feature perturbations — exactly a
    hill-climb neighborhood).  Stage 1 is pre-warmed and the MPKI memo
    cleared before every repetition, so the two timings isolate the
    Stage-2/3 evaluation engines the ``REPRO_STAGE2_BATCH`` knob picks
    between.
    """
    import random

    from repro.core.features import parse_feature_set, perturb_feature
    from repro.core.presets import TABLE_1A_SPECS
    from repro.search.evaluator import FeatureSetEvaluator
    from repro.traces.workloads import all_segments

    accesses = max(2_000, scale.segment_accesses // 4)
    segments = all_segments(scale.hierarchy.llc_bytes, accesses,
                            names=["gamess", "lbm", "soplex"])
    evaluator = FeatureSetEvaluator(segments, scale.hierarchy,
                                    warmup_fraction=scale.warmup_fraction)
    for segment in segments:
        evaluator.runner.upper_result(segment)

    rng = random.Random(2017)
    base = list(parse_feature_set(TABLE_1A_SPECS))
    candidates = [tuple(base)]
    seen = {tuple(feature.spec() for feature in base)}
    while len(candidates) < k:
        mutated = list(base)
        victim = rng.randrange(len(mutated))
        mutated[victim] = perturb_feature(mutated[victim], rng)
        spec = tuple(feature.spec() for feature in mutated)
        if spec in seen:
            continue
        seen.add(spec)
        candidates.append(tuple(mutated))

    def evaluate() -> None:
        evaluator._cache.clear()
        evaluator.evaluate_many(candidates)

    # Both arms pin the kernel off: this section isolates the batched
    # bytecode engine against K sequential replays, the comparison the
    # REPRO_STAGE2_BATCH knob picks between.
    with _env("REPRO_STAGE2_KERNEL", "off"):
        with _env("REPRO_STAGE2_BATCH", "off"):
            sequential_s = _best_of(repeats, evaluate)
        with _env("REPRO_STAGE2_BATCH", "on"):
            batched_s = _best_of(repeats, evaluate)
    return {
        "k": len(candidates),
        "segments": len(segments),
        "accesses": accesses,
        "sequential_s": round(sequential_s, 6),
        "batched_s": round(batched_s, 6),
        "speedup": (round(sequential_s / batched_s, 3)
                    if batched_s > 0 else float("inf")),
    }


# -- columnar Stage-2 kernel (bytecode replay vs numpy vs numba) -----------


def bench_kernel(scale: ReproScale, repeats: int,
                 k: int = 8) -> Dict[str, Any]:
    """Time the Stage-2 replay itself under each kernel backend.

    Same workload shape as :func:`bench_search_batch` (three
    benchmarks, a hill-climb-neighborhood candidate batch), but timing
    :meth:`~repro.sim.batch.BatchLLCSimulator.run` directly — the
    acceptance gate is on the Stage-2 replay, and the evaluator's
    fixed Stage-3/aggregation cost would dilute it.  Fresh policies
    are built inside the timed region (identical across arms, so the
    ratio is unaffected).  The numba arm is timed only when numba is
    importable, after one untimed warmup replay so JIT compilation is
    excluded (steady-state cost is what a long search pays).
    """
    import random

    from repro.core.features import parse_feature_set, perturb_feature
    from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
    from repro.core.presets import TABLE_1A_SPECS
    from repro.sim.batch import BatchLLCSimulator
    from repro.sim.kernel import available_backends
    from repro.traces.workloads import all_segments

    hierarchy = scale.hierarchy
    accesses = max(2_000, scale.segment_accesses // 4)
    segments = all_segments(hierarchy.llc_bytes, accesses,
                            names=["gamess", "lbm", "soplex"])
    upper = UpperLevels(hierarchy)
    stage1 = [(upper.run(s.trace), s.trace) for s in segments]

    rng = random.Random(2017)
    base = list(parse_feature_set(TABLE_1A_SPECS))
    candidates = [tuple(base)]
    seen = {tuple(feature.spec() for feature in base)}
    while len(candidates) < k:
        mutated = list(base)
        victim = rng.randrange(len(mutated))
        mutated[victim] = perturb_feature(mutated[victim], rng)
        spec = tuple(feature.spec() for feature in mutated)
        if spec in seen:
            continue
        seen.add(spec)
        candidates.append(tuple(mutated))

    ways = hierarchy.llc_ways
    num_sets = hierarchy.llc_bytes // (ways * hierarchy.block_bytes)

    def replay() -> None:
        for upper_result, trace in stage1:
            policies = [
                MPPPBPolicy(num_sets, ways, MPPPBConfig(features=features))
                for features in candidates
            ]
            sim = BatchLLCSimulator(hierarchy.llc_bytes, ways, policies,
                                    hierarchy.block_bytes)
            sim.run(upper_result.llc_stream, pc_trace=trace.pcs,
                    warmup=len(upper_result.llc_stream) // 4)

    backends = available_backends()
    with _env("REPRO_STAGE2_KERNEL", "off"):
        python_s = _best_of(repeats, replay)
    numpy_s = numba_s = None
    if backends["numpy"]:
        with _env("REPRO_STAGE2_KERNEL", "numpy"):
            numpy_s = round(_best_of(repeats, replay), 6)
    if backends["numba"]:
        with _env("REPRO_STAGE2_KERNEL", "numba"):
            replay()  # untimed JIT warmup
            numba_s = round(_best_of(repeats, replay), 6)
    return {
        "k": len(candidates),
        "segments": len(segments),
        "accesses": accesses,
        "python_s": round(python_s, 6),
        "numpy_s": numpy_s,
        "numba_s": numba_s,
        "numpy_speedup": (round(python_s / numpy_s, 3)
                          if numpy_s else None),
        "numba_speedup": (round(python_s / numba_s, 3)
                          if numba_s else None),
    }


# -- Stage-3 timing model (scalar vs vectorized events) --------------------


def bench_timing(scale: ReproScale, benchmark: str,
                 repeats: int) -> Dict[str, Any]:
    """Time Stage 3 alone over one segment's real LRU outcomes.

    ``scalar_s`` runs the :func:`~repro.sim.single.demand_load_events`
    generator into :meth:`~repro.cpu.timing.TimingModel.simulate`;
    ``vector_s`` fills the shared numpy event skeleton
    (:func:`~repro.sim.single.demand_load_arrays`) and runs
    :meth:`~repro.cpu.timing.TimingModel.simulate_packed` — the
    steady-state per-policy cost, since the skeleton itself is built
    once per segment.  ``vector_s`` is ``None`` without numpy.
    """
    from repro.cpu.timing import TimingModel
    from repro.policies import policy_factory
    from repro.sim.llc import LLCSimulator
    from repro.sim.single import (
        build_stage3_events,
        demand_load_arrays,
        demand_load_events,
        stage3_vector_enabled,
    )

    hierarchy = scale.hierarchy
    segment = build_segments(benchmark, hierarchy.llc_bytes,
                             scale.segment_accesses)[0]
    runner = SingleThreadRunner(hierarchy,
                                warmup_fraction=scale.warmup_fraction)
    upper = runner.upper_result(segment)
    trace = segment.trace
    warm_mem = int(len(trace.pcs) * scale.warmup_fraction)
    warm_llc = upper.llc_warmup_boundary(warm_mem)

    num_sets = hierarchy.llc_bytes // (hierarchy.llc_ways
                                       * hierarchy.block_bytes)
    policy = policy_factory("lru", None)(num_sets, hierarchy.llc_ways)
    sim = LLCSimulator(hierarchy.llc_bytes, hierarchy.llc_ways, policy,
                       hierarchy.block_bytes)
    outcomes = sim.run(upper.llc_stream, pc_trace=trace.pcs,
                       warmup=warm_llc).outcomes

    timing = runner.timing
    model = TimingModel(timing)
    measured_instr = upper.num_instructions - (
        upper.instr_indices[warm_mem] if warm_mem < len(trace.pcs) else 0
    )

    scalar_s = _best_of(repeats, lambda: model.simulate(
        demand_load_events(trace, upper, outcomes, timing,
                           start_mem=warm_mem),
        measured_instr,
    ))

    vector_s = loads = None
    with _env("REPRO_STAGE3_VECTOR", "on"):
        if stage3_vector_enabled():
            events = build_stage3_events(trace, upper, timing,
                                         start_mem=warm_mem)
            loads = len(events.instr)

            def vector() -> None:
                instr, latencies, depends = demand_load_arrays(
                    events, outcomes, timing)
                model.simulate_packed(instr, latencies, depends,
                                      measured_instr)

            vector_s = round(_best_of(repeats, vector), 6)
    return {
        "benchmark": benchmark,
        "loads": loads,
        "scalar_s": round(scalar_s, 6),
        "vector_s": vector_s,
        "speedup": (round(scalar_s / vector_s, 3)
                    if vector_s else None),
    }


# -- telemetry overhead (repro.obs disabled fast path) ---------------------


def bench_telemetry(scale: ReproScale, benchmark: str,
                    repeats: int) -> Dict[str, Any]:
    """Cost of the ``repro.obs`` instrumentation, on and off.

    ``disabled_s`` vs ``enabled_s`` time the same mpppb Stage-2/3
    replay (Stage 1 pre-seeded) with telemetry off and inside a fresh
    :func:`repro.obs.capture` context.  The instrumented code cannot be
    compared against an un-instrumented build, so the disabled-path
    cost is *estimated*: one disabled :func:`repro.obs.span` round trip
    is micro-timed (``null_span_ns``), multiplied by the span count an
    enabled replay actually emits, and divided by the disabled replay
    time.  That fraction — ``disabled_overhead`` — is what
    :func:`check_report` holds under :data:`TELEMETRY_DISABLED_BUDGET`.
    """
    from repro import obs

    hierarchy = scale.hierarchy
    segments = build_segments(benchmark, hierarchy.llc_bytes,
                              scale.segment_accesses)
    runner = SingleThreadRunner(hierarchy,
                                warmup_fraction=scale.warmup_fraction)
    for segment in segments:
        runner.upper_result(segment)

    def replay() -> None:
        # Kernel pinned off so both timings cover the *same* (fully
        # instrumented, sequential) replay loop — telemetry-on runs
        # always take that loop for its per-access observations.
        with _env("REPRO_STAGE2_KERNEL", "off"):
            for segment in segments:
                runner.run_segment(segment, policy_factory("mpppb-1a", None))

    obs.disable()
    disabled_s = _best_of(repeats, replay)

    spans_per_replay = 0
    obs.enable()
    try:
        def enabled_replay() -> None:
            with obs.capture():
                replay()
        enabled_s = _best_of(repeats, enabled_replay)
        with obs.capture() as ctx:
            replay()
        spans_per_replay = len(ctx.payload()["spans"])
    finally:
        obs.disable()

    calls = 200_000
    started = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench"):
            pass
    null_span_ns = (time.perf_counter() - started) / calls * 1e9

    disabled_overhead = (
        spans_per_replay * null_span_ns * 1e-9 / disabled_s
        if disabled_s > 0 else 0.0
    )
    return {
        "benchmark": benchmark,
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "enabled_overhead": round(enabled_s / disabled_s - 1.0, 4)
        if disabled_s > 0 else 0.0,
        "null_span_ns": round(null_span_ns, 1),
        "spans_per_replay": spans_per_replay,
        "disabled_overhead": round(disabled_overhead, 6),
    }


# -- end-to-end compare (cold vs warm artifact cache) ----------------------


def bench_compare(scale: ReproScale, benchmarks: Sequence[str],
                  policies: Sequence[str], cache_root: str,
                  repeats: int = 1) -> Dict[str, Any]:
    """Time a serial multi-policy compare, cold then artifact-warm.

    Both runs disable the *result* store (every cell computes) and
    clear the in-process segment/runner memos first, so the only
    difference between them is whether trace and Stage-1 artifacts are
    already on disk — exactly the state a fresh worker process or a
    second invocation sees.  The cold/warm pair repeats best-of-N
    (cache cleared between pairs) to keep the speedup ratio stable.
    """
    import shutil

    from repro.exec import runner as exec_runner
    from repro.exec.runner import ParallelRunner, SingleCell, TraceSpec

    def build_cells():
        return [
            SingleCell(
                trace=TraceSpec(name, scale.hierarchy.llc_bytes,
                                scale.segment_accesses),
                policy=policy,
                hierarchy=scale.hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for policy in policies for name in benchmarks
        ]

    def timed_run() -> float:
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        # No result store, artifacts only: the harness measures the
        # shared-stage cache, not result-blob reuse.
        engine.artifact_root = cache_root
        started = time.perf_counter()
        engine.run(build_cells(), label="perf")
        return time.perf_counter() - started

    cold_s = warm_s = float("inf")
    # Scheduler pinned off: this section isolates the artifact cache
    # itself; the planned path has its own bench (:func:`bench_graph`).
    with _env("REPRO_GRAPH", "off"):
        for attempt in range(max(1, repeats)):
            if attempt:
                shutil.rmtree(cache_root, ignore_errors=True)
                os.makedirs(cache_root, exist_ok=True)
            cold_s = min(cold_s, timed_run())
            warm_s = min(warm_s, timed_run())
    return {
        "benchmarks": list(benchmarks),
        "policies": list(policies),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else float("inf"),
    }


# -- experiment-graph scheduler (cold vs warm vs graph-scheduled) ----------


def bench_graph(scale: ReproScale, cache_root: str,
                policies: Sequence[str] = DEFAULT_POLICIES,
                benchmark: str = "gamess",
                repeats: int = 1) -> Dict[str, Any]:
    """Time one shared-trace compare with and without the scheduler.

    All ``policies`` replay the same benchmark, so the trace and every
    Stage-1 artifact are shared by every cell — the shape the graph
    scheduler exists for.  Four arms, all serial, all without a result
    store (cells always compute):

    * ``cold_s`` / ``warm_s`` — ``REPRO_GRAPH=off``; the unplanned
      artifact-cache baseline from an empty and a populated cache.
    * ``graph_cold_s`` / ``graph_warm_s`` — ``REPRO_GRAPH=on``; the
      cold arm pays planning plus the prelude wave, the warm arm pays
      planning on top of an all-loads plan.

    :func:`check_report` holds ``graph_warm_s`` within
    :data:`GRAPH_MAX_SLOWDOWN` of ``warm_s`` plus the fixed
    :data:`GRAPH_OVERHEAD_ALLOWANCE_S` planning allowance: the
    scheduler must not tax the already-cached path it cannot improve.
    """
    import shutil

    from repro.exec import runner as exec_runner
    from repro.exec.runner import ParallelRunner, SingleCell, TraceSpec

    def build_cells():
        return [
            SingleCell(
                trace=TraceSpec(benchmark, scale.hierarchy.llc_bytes,
                                scale.segment_accesses),
                policy=policy,
                hierarchy=scale.hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for policy in policies
        ]

    def timed_run() -> float:
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        engine.artifact_root = cache_root
        started = time.perf_counter()
        engine.run(build_cells(), label="perf-graph")
        return time.perf_counter() - started

    def reset_cache() -> None:
        shutil.rmtree(cache_root, ignore_errors=True)
        os.makedirs(cache_root, exist_ok=True)

    cold_s = warm_s = graph_cold_s = graph_warm_s = float("inf")
    for _ in range(max(1, repeats)):
        with _env("REPRO_GRAPH", "off"):
            reset_cache()
            cold_s = min(cold_s, timed_run())
            warm_s = min(warm_s, timed_run())
        with _env("REPRO_GRAPH", "on"):
            reset_cache()
            graph_cold_s = min(graph_cold_s, timed_run())
            graph_warm_s = min(graph_warm_s, timed_run())
    return {
        "benchmark": benchmark,
        "policies": list(policies),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "graph_cold_s": round(graph_cold_s, 6),
        "graph_warm_s": round(graph_warm_s, 6),
        "warm_speedup": (round(warm_s / graph_warm_s, 3)
                         if graph_warm_s > 0 else float("inf")),
    }


# -- streaming trace-decode throughput (repro.traces.ingest) ---------------


def bench_ingest(repeats: int, records: int = 50_000) -> Dict[str, Any]:
    """Streamed decode throughput for every real-trace reader.

    Writes one synthetic fixture per format (the text fixture is
    gzip'd, so that arm also pays decompression — the common case for
    real trace archives), then times a full streamed decode of each.
    The fixtures encode the *same* record sequence, so the per-format
    numbers are directly comparable.  :func:`check_report` holds every
    format above :data:`INGEST_MIN_RECORDS_PER_S`.
    """
    import gzip
    import struct
    import tempfile

    from repro.traces.ingest import open_source

    state = 0x2017
    rows = []
    for _ in range(records):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        rows.append((0x400 + 4 * (state % 251),
                     0x10000 + 64 * ((state >> 16) % 4096),
                     state % 5 == 0, state % 3, state % 11 == 0))

    formats: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        champsim = os.path.join(tmp, "fixture.bin")
        pack = struct.Struct("<QQIB3x").pack
        with open(champsim, "wb") as handle:
            for pc, addr, write, gap, dep in rows:
                handle.write(pack(pc, addr, gap,
                                  (1 if write else 0) | (2 if dep else 0)))

        text = os.path.join(tmp, "fixture.trace.gz")
        body = "\n".join(
            f"0x{pc:x} 0x{addr:x} {'w' if write else 'r'} {gap} "
            f"{1 if dep else 0}"
            for pc, addr, write, gap, dep in rows
        ) + "\n"
        with open(text, "wb") as handle:
            handle.write(gzip.compress(body.encode()))

        csv_path = os.path.join(tmp, "fixture.csv")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write("pc,addr,is_write,gap,dep\n")
            for pc, addr, write, gap, dep in rows:
                handle.write(f"{pc},{addr},{1 if write else 0},{gap},"
                             f"{1 if dep else 0}\n")

        for fmt, path in (("champsim", champsim), ("text", text),
                          ("csv", csv_path)):
            def decode() -> None:
                count = sum(1 for _ in open_source(path, fmt).records())
                assert count == records

            decode_s = _best_of(repeats, decode)
            formats[fmt] = {
                "decode_s": round(decode_s, 6),
                "records_per_s": (round(records / decode_s, 1)
                                  if decode_s > 0 else float("inf")),
                "file_bytes": os.path.getsize(path),
            }
    return {"records": records, "formats": formats}


# -- distributed execution (local pool vs worker fleet) --------------------


def bench_dist(scale: ReproScale, cache_root: str,
               benchmarks: Sequence[str] = ("gamess", "hmmer"),
               policies: Sequence[str] = DEFAULT_POLICIES,
               repeats: int = 1, workers: int = 2) -> Dict[str, Any]:
    """Dispatch overhead of the worker-fleet backend vs the local pool.

    Both arms run the same artifact-warm compare (no result store —
    every cell computes; the artifact cache is pre-populated so the
    shared stages load) with ``workers`` slots; the only difference is
    the transport moving cells to workers.  ``fleet_startup_s``
    isolates the transport bring-up (spawn ``workers`` processes, wait
    for their hello handshakes, shut down), so the report separates
    the per-run fixed cost from the per-cell framing/pickle overhead
    the :data:`FLEET_MAX_SLOWDOWN` gate bounds.
    """
    from repro.exec import runner as exec_runner
    from repro.exec.backends import WorkerFleetBackend, worker_command
    from repro.exec.runner import ParallelRunner, SingleCell, TraceSpec

    def build_cells():
        return [
            SingleCell(
                trace=TraceSpec(name, scale.hierarchy.llc_bytes,
                                scale.segment_accesses),
                policy=policy,
                hierarchy=scale.hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for policy in policies for name in benchmarks
        ]

    def timed_run(backend: str) -> float:
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=workers, store=None, verbose=False,
                                backend=backend)
        engine.artifact_root = cache_root
        started = time.perf_counter()
        engine.run(build_cells(), label="perf-dist")
        return time.perf_counter() - started

    def startup() -> None:
        backend = WorkerFleetBackend([worker_command()] * workers)
        backend.start()
        try:
            deadline = time.monotonic() + 60.0
            while (not all(worker.ready for worker in backend._fleet)
                   and time.monotonic() < deadline):
                backend.poll(timeout=0.1)
        finally:
            backend.close()

    fleet_startup_s = _best_of(repeats, startup)

    cells = len(build_cells())
    # Scheduler pinned off for arm symmetry with :func:`bench_compare`;
    # one untimed serial run materializes the artifact cache.
    with _env("REPRO_GRAPH", "off"):
        timed_run("local")  # artifact-cache warmup, untimed
        local_s = min(timed_run("local") for _ in range(max(1, repeats)))
        fleet_s = min(timed_run("fleet") for _ in range(max(1, repeats)))
        # Liveness arm: the same fleet run with worker heartbeats on
        # (DESIGN.md §16).  Recorded, never gated — the headline
        # FLEET_MAX_SLOWDOWN promise covers the *default* path, where
        # heartbeats are off and cost exactly nothing; this arm tracks
        # what turning them on adds (a per-interval frame write plus a
        # bounded parent poll quantum).
        with _env("REPRO_HEARTBEAT", "0.5"):
            fleet_hb_s = min(timed_run("fleet")
                             for _ in range(max(1, repeats)))

    dispatch = fleet_s - fleet_startup_s - local_s
    return {
        "benchmarks": list(benchmarks),
        "policies": list(policies),
        "workers": workers,
        "cells": cells,
        "fleet_startup_s": round(fleet_startup_s, 6),
        "local_s": round(local_s, 6),
        "fleet_s": round(fleet_s, 6),
        "fleet_heartbeat_s": round(fleet_hb_s, 6),
        "heartbeat_overhead_s": round(fleet_hb_s - fleet_s, 6),
        "dispatch_overhead_s": round(dispatch, 6),
        "per_cell_overhead_s": round(dispatch / cells, 6) if cells else 0.0,
    }


# -- report ----------------------------------------------------------------


def build_report(scale_name: str = "", benchmark: str = "soplex",
                 benchmarks: Sequence[str] = DEFAULT_COMPARE_BENCHMARKS,
                 policies: Sequence[str] = DEFAULT_POLICIES,
                 repeats: int = 3,
                 cache_root: Optional[str] = None) -> Dict[str, Any]:
    """Run the full harness; returns the report payload."""
    import tempfile

    from repro.sim.kernel import available_backends, backend_errors

    scale = get_scale(scale_name)
    errors = backend_errors()
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "scale": scale.name,
        "benchmark": benchmark,
        "accesses": scale.segment_accesses,
        "repeats": repeats,
        "backends": {
            name: {"available": present, "error": errors.get(name)}
            for name, present in available_backends().items()
        },
        "hotpath": bench_hotpath(scale, benchmark, policies, repeats),
        "search-batch": bench_search_batch(scale, repeats),
        "kernel": bench_kernel(scale, repeats),
        "timing": bench_timing(scale, benchmark, repeats),
        "telemetry": bench_telemetry(scale, benchmark, repeats),
        "ingest": bench_ingest(repeats),
    }
    if cache_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            report["compare"] = bench_compare(scale, benchmarks, policies,
                                              tmp, repeats=repeats)
            report["graph"] = bench_graph(scale, tmp, policies,
                                          repeats=repeats)
            report["dist"] = bench_dist(scale, tmp, policies=policies,
                                        repeats=repeats)
    else:
        report["compare"] = bench_compare(scale, benchmarks, policies,
                                          cache_root, repeats=repeats)
        report["graph"] = bench_graph(scale, cache_root, policies,
                                      repeats=repeats)
        report["dist"] = bench_dist(scale, cache_root, policies=policies,
                                    repeats=repeats)
    return report


def check_report(report: Dict[str, Any],
                 tolerance: float = 1.0) -> List[str]:
    """Regression gate on the report's strength reductions.

    * Fused Stage 2 must not be slower than legacy.  Only ``mpppb*``
      policies are gated — they are the only consumers of the feature
      pipeline, so for other policies fused-vs-legacy is pure timer
      noise.
    * Batched K-candidate evaluation must not be slower than K
      per-candidate replays.
    * The columnar numpy kernel must beat the batched bytecode replay
      by at least :data:`KERNEL_MIN_SPEEDUP` on the Stage-2 replay
      (skipped when numpy is unavailable on the host).
    * Telemetry must respect both budgets: the disabled path under
      :data:`TELEMETRY_DISABLED_BUDGET`, the fully enabled replay
      under :data:`TELEMETRY_ENABLED_BUDGET` overhead.
    * Every streaming trace reader must decode at least
      :data:`INGEST_MIN_RECORDS_PER_S` records per second.
    * The graph-scheduled warm compare must stay within
      :data:`GRAPH_MAX_SLOWDOWN` of the unplanned warm path plus the
      fixed :data:`GRAPH_OVERHEAD_ALLOWANCE_S` planning allowance.
    * The worker-fleet backend must keep an artifact-warm compare
      within :data:`FLEET_MAX_SLOWDOWN` of the local pool, after the
      measured transport startup plus the fixed
      :data:`FLEET_STARTUP_ALLOWANCE_S` worker-import allowance.

    Returns a list of failure messages (empty = pass).
    """
    failures: List[str] = []
    for policy, timings in report["hotpath"]["stage2"].items():
        if not policy.startswith("mpppb"):
            continue
        fused, legacy = timings["fused"], timings["legacy"]
        if fused > legacy * tolerance:
            failures.append(
                f"{policy}: fused stage-2 {fused:.4f}s slower than "
                f"legacy {legacy:.4f}s (tolerance x{tolerance})"
            )
    batch = report.get("search-batch")
    if batch is not None:
        sequential, batched = batch["sequential_s"], batch["batched_s"]
        if batched > sequential * tolerance:
            failures.append(
                f"search-batch: batched {batch['k']}-candidate evaluation "
                f"{batched:.4f}s slower than sequential {sequential:.4f}s "
                f"(tolerance x{tolerance})"
            )
    kernel = report.get("kernel")
    if kernel is not None and kernel.get("numpy_s"):
        python_s, numpy_s = kernel["python_s"], kernel["numpy_s"]
        if numpy_s * KERNEL_MIN_SPEEDUP > python_s * tolerance:
            failures.append(
                f"kernel: numpy Stage-2 replay {numpy_s:.4f}s is only "
                f"{python_s / numpy_s:.2f}x over the batched Python "
                f"path {python_s:.4f}s (required "
                f"{KERNEL_MIN_SPEEDUP:.1f}x, tolerance x{tolerance})"
            )
    telemetry = report.get("telemetry")
    if telemetry is not None:
        overhead = telemetry["disabled_overhead"]
        if overhead > TELEMETRY_DISABLED_BUDGET:
            failures.append(
                f"telemetry: disabled-path instrumentation costs "
                f"{overhead:.2%} of a Stage-2 replay "
                f"(budget {TELEMETRY_DISABLED_BUDGET:.0%})"
            )
        enabled = telemetry.get("enabled_overhead")
        if (enabled is not None
                and enabled > TELEMETRY_ENABLED_BUDGET * tolerance):
            failures.append(
                f"telemetry: enabled-path overhead {enabled:.2%} over "
                f"the uninstrumented replay (budget "
                f"{TELEMETRY_ENABLED_BUDGET:.0%}, tolerance x{tolerance})"
            )
    ingest = report.get("ingest")
    if ingest is not None:
        for fmt, stats in sorted(ingest["formats"].items()):
            rate = stats["records_per_s"]
            if rate * tolerance < INGEST_MIN_RECORDS_PER_S:
                failures.append(
                    f"ingest: {fmt} decode {rate:,.0f} records/s under "
                    f"the {INGEST_MIN_RECORDS_PER_S:,.0f} floor "
                    f"(tolerance x{tolerance})"
                )
    graph = report.get("graph")
    if graph is not None:
        warm, graph_warm = graph["warm_s"], graph["graph_warm_s"]
        budget = (warm * GRAPH_MAX_SLOWDOWN + GRAPH_OVERHEAD_ALLOWANCE_S)
        if graph_warm > budget * tolerance:
            failures.append(
                f"graph: scheduled warm compare {graph_warm:.4f}s slower "
                f"than unplanned warm {warm:.4f}s (allowed "
                f"x{GRAPH_MAX_SLOWDOWN} + "
                f"{GRAPH_OVERHEAD_ALLOWANCE_S * 1e3:.0f}ms fixed, "
                f"tolerance x{tolerance})"
            )
    dist = report.get("dist")
    if dist is not None:
        local_s, fleet_s = dist["local_s"], dist["fleet_s"]
        budget = (local_s * FLEET_MAX_SLOWDOWN + dist["fleet_startup_s"]
                  + FLEET_STARTUP_ALLOWANCE_S)
        if fleet_s > budget * tolerance:
            failures.append(
                f"dist: fleet compare {fleet_s:.4f}s slower than local "
                f"pool {local_s:.4f}s (allowed x{FLEET_MAX_SLOWDOWN} + "
                f"{dist['fleet_startup_s']:.3f}s startup + "
                f"{FLEET_STARTUP_ALLOWANCE_S:.1f}s import allowance, "
                f"tolerance x{tolerance})"
            )
    return failures


def format_report(report: Dict[str, Any]) -> str:
    hot = report["hotpath"]
    lines = [
        f"perf[{report['scale']}] {report['benchmark']} "
        f"({report['accesses']} accesses, best of {report['repeats']})",
        f"  trace gen {hot['trace_gen_s']:8.4f}s   "
        f"stage 1 {hot['stage1_s']:8.4f}s",
    ]
    for policy, timings in hot["stage2"].items():
        fused, legacy = timings["fused"], timings["legacy"]
        ratio = legacy / fused if fused > 0 else float("inf")
        lines.append(f"  stage 2 {policy:12s} fused {fused:8.4f}s   "
                     f"legacy {legacy:8.4f}s   ({ratio:.2f}x)")
    batch = report.get("search-batch")
    if batch is not None:
        lines.append(
            f"  search  {batch['k']} candidates x {batch['segments']} "
            f"segments: sequential {batch['sequential_s']:.4f}s  "
            f"batched {batch['batched_s']:.4f}s  "
            f"({batch['speedup']:.2f}x)"
        )
    kernel = report.get("kernel")
    if kernel is not None:
        backends = report.get("backends", {})
        parts = [f"python {kernel['python_s']:.4f}s"]
        for name in ("numpy", "numba"):
            seconds = kernel.get(f"{name}_s")
            entry = backends.get(name, False)
            present = (entry.get("available") if isinstance(entry, dict)
                       else bool(entry))
            if seconds is not None:
                parts.append(f"{name} {seconds:.4f}s "
                             f"({kernel[f'{name}_speedup']:.2f}x)")
            elif not present:
                parts.append(f"{name} n/a")
        lines.append(
            f"  kernel  {kernel['k']} candidates x {kernel['segments']} "
            f"segments: " + "  ".join(parts)
        )
    stage3 = report.get("timing")
    if stage3 is not None:
        if stage3["vector_s"] is not None:
            lines.append(
                f"  stage 3 {stage3['benchmark']:12s} "
                f"scalar {stage3['scalar_s']:8.4f}s   "
                f"vector {stage3['vector_s']:8.4f}s   "
                f"({stage3['speedup']:.2f}x)"
            )
        else:
            lines.append(
                f"  stage 3 {stage3['benchmark']:12s} "
                f"scalar {stage3['scalar_s']:8.4f}s   (numpy unavailable)"
            )
    telemetry = report.get("telemetry")
    if telemetry is not None:
        lines.append(
            f"  obs     {telemetry['benchmark']:12s} "
            f"off {telemetry['disabled_s']:8.4f}s   "
            f"on {telemetry['enabled_s']:9.4f}s   "
            f"(off-path {telemetry['disabled_overhead']:.2%}, "
            f"null span {telemetry['null_span_ns']:.0f}ns)"
        )
    ingest = report.get("ingest")
    if ingest is not None:
        rates = "  ".join(
            f"{fmt} {ingest['formats'][fmt]['records_per_s'] / 1e3:.0f}k/s"
            for fmt in sorted(ingest["formats"])
        )
        lines.append(
            f"  ingest  {ingest['records']} records: {rates}"
        )
    cmp_ = report["compare"]
    lines.append(
        f"  compare {len(cmp_['policies'])} policies x "
        f"{len(cmp_['benchmarks'])} benchmarks: "
        f"cold {cmp_['cold_s']:.3f}s  warm {cmp_['warm_s']:.3f}s  "
        f"({cmp_['speedup']:.2f}x with warm artifacts)"
    )
    graph = report.get("graph")
    if graph is not None:
        lines.append(
            f"  graph   {len(graph['policies'])} policies x "
            f"{graph['benchmark']}: "
            f"cold {graph['cold_s']:.3f}s/"
            f"{graph['graph_cold_s']:.3f}s  "
            f"warm {graph['warm_s']:.3f}s/"
            f"{graph['graph_warm_s']:.3f}s  "
            f"(unplanned/scheduled, warm x{graph['warm_speedup']:.2f})"
        )
    dist = report.get("dist")
    if dist is not None:
        lines.append(
            f"  dist    {dist['cells']} cells x {dist['workers']} workers: "
            f"local {dist['local_s']:.3f}s  fleet {dist['fleet_s']:.3f}s  "
            f"(startup {dist['fleet_startup_s']:.3f}s, "
            f"{dist['per_cell_overhead_s'] * 1e3:+.1f}ms/cell dispatch)"
        )
    return "\n".join(lines)


def write_report(report: Dict[str, Any],
                 path: str = DEFAULT_REPORT) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
