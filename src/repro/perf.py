"""Hot-path performance harness.

Times the three pipeline stages in isolation and an end-to-end
policy compare against cold and warm artifact caches, producing the
``BENCH_hotpath.json`` report the CI perf-smoke job gates on.

Report schema (``REPORT_SCHEMA``)::

    {
      "schema": 1,                # REPORT_SCHEMA, not the cache schema
      "scale": "tiny",
      "benchmark": "soplex",      # hot-path micro-benchmark workload
      "accesses": 4000,
      "repeats": 3,               # best-of-N for every timing
      "hotpath": {
        "trace_gen_s": float,     # synthesize all segments once
        "stage1_s": float,        # upper-level hierarchy, all segments
        "stage2": {               # per policy: replay, both pipelines
          "<policy>": {"fused": float, "legacy": float}
        }
      },
      "compare": {                # end-to-end engine compare
        "benchmarks": [...], "policies": [...],
        "cold_s": float,          # empty artifact cache, empty memos
        "warm_s": float,          # artifact cache from the cold run
        "speedup": float          # cold_s / warm_s
      }
    }

All timings are best-of-``repeats`` wall seconds: minimums are far more
stable than means on shared CI runners.  The fused-vs-legacy gate
(:func:`check_report`) only inspects policies that actually use the
feature pipeline (``mpppb*``); for everything else the two paths are
the same code.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro.config import ReproScale, get_scale
from repro.policies import policy_factory
from repro.sim.hierarchy import UpperLevels
from repro.sim.single import SingleThreadRunner
from repro.traces.trace import Segment
from repro.traces.workloads import build_segments

REPORT_SCHEMA = 1
DEFAULT_REPORT = "BENCH_hotpath.json"
DEFAULT_POLICIES = ("lru", "srrip", "mpppb-1a")
# Cache-friendly workloads whose LLC streams are short: the shared
# stages (trace synthesis + Stage 1) dominate the compare, which is
# exactly what the artifact cache removes on the warm run.
DEFAULT_COMPARE_BENCHMARKS = ("gamess", "hmmer", "povray")


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


@contextmanager
def _pipeline(name: str):
    """Pin ``REPRO_FEATURE_PIPELINE`` for the duration of a timing."""
    old = os.environ.get("REPRO_FEATURE_PIPELINE")
    os.environ["REPRO_FEATURE_PIPELINE"] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ["REPRO_FEATURE_PIPELINE"]
        else:
            os.environ["REPRO_FEATURE_PIPELINE"] = old


# -- stage micro-benchmarks ------------------------------------------------


def bench_hotpath(scale: ReproScale, benchmark: str,
                  policies: Sequence[str], repeats: int) -> Dict[str, Any]:
    """Per-stage timings for one benchmark at one scale."""
    hierarchy = scale.hierarchy
    accesses = scale.segment_accesses

    trace_gen_s = _best_of(repeats, lambda: build_segments(
        benchmark, hierarchy.llc_bytes, accesses))
    segments: List[Segment] = build_segments(benchmark, hierarchy.llc_bytes,
                                             accesses)

    upper = UpperLevels(hierarchy)
    stage1_s = _best_of(repeats, lambda: [upper.run(s.trace)
                                          for s in segments])

    # Stage 2+3 replay through the single-thread runner with Stage 1
    # pre-seeded, so each timing covers exactly the per-policy work a
    # compare pays after the shared stages are cached.
    runner = SingleThreadRunner(hierarchy,
                                warmup_fraction=scale.warmup_fraction)
    for segment in segments:
        runner.upper_result(segment)

    stage2: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        timings: Dict[str, float] = {}
        for pipeline in ("fused", "legacy"):
            with _pipeline(pipeline):
                timings[pipeline] = _best_of(repeats, lambda: [
                    runner.run_segment(s, policy_factory(policy, None))
                    for s in segments
                ])
        stage2[policy] = timings

    return {
        "trace_gen_s": round(trace_gen_s, 6),
        "stage1_s": round(stage1_s, 6),
        "stage2": {p: {k: round(v, 6) for k, v in t.items()}
                   for p, t in stage2.items()},
    }


# -- end-to-end compare (cold vs warm artifact cache) ----------------------


def bench_compare(scale: ReproScale, benchmarks: Sequence[str],
                  policies: Sequence[str], cache_root: str,
                  repeats: int = 1) -> Dict[str, Any]:
    """Time a serial multi-policy compare, cold then artifact-warm.

    Both runs disable the *result* store (every cell computes) and
    clear the in-process segment/runner memos first, so the only
    difference between them is whether trace and Stage-1 artifacts are
    already on disk — exactly the state a fresh worker process or a
    second invocation sees.  The cold/warm pair repeats best-of-N
    (cache cleared between pairs) to keep the speedup ratio stable.
    """
    import shutil

    from repro.exec import runner as exec_runner
    from repro.exec.runner import ParallelRunner, SingleCell, TraceSpec

    def build_cells():
        return [
            SingleCell(
                trace=TraceSpec(name, scale.hierarchy.llc_bytes,
                                scale.segment_accesses),
                policy=policy,
                hierarchy=scale.hierarchy,
                warmup_fraction=scale.warmup_fraction,
            )
            for policy in policies for name in benchmarks
        ]

    def timed_run() -> float:
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        exec_runner._ARTIFACTS.clear()
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        # No result store, artifacts only: the harness measures the
        # shared-stage cache, not result-blob reuse.
        engine.artifact_root = cache_root
        started = time.perf_counter()
        engine.run(build_cells(), label="perf")
        return time.perf_counter() - started

    cold_s = warm_s = float("inf")
    for attempt in range(max(1, repeats)):
        if attempt:
            shutil.rmtree(cache_root, ignore_errors=True)
            os.makedirs(cache_root, exist_ok=True)
        cold_s = min(cold_s, timed_run())
        warm_s = min(warm_s, timed_run())
    return {
        "benchmarks": list(benchmarks),
        "policies": list(policies),
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 3) if warm_s > 0 else float("inf"),
    }


# -- report ----------------------------------------------------------------


def build_report(scale_name: str = "", benchmark: str = "soplex",
                 benchmarks: Sequence[str] = DEFAULT_COMPARE_BENCHMARKS,
                 policies: Sequence[str] = DEFAULT_POLICIES,
                 repeats: int = 3,
                 cache_root: Optional[str] = None) -> Dict[str, Any]:
    """Run the full harness; returns the report payload."""
    import tempfile

    scale = get_scale(scale_name)
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "scale": scale.name,
        "benchmark": benchmark,
        "accesses": scale.segment_accesses,
        "repeats": repeats,
        "hotpath": bench_hotpath(scale, benchmark, policies, repeats),
    }
    if cache_root is None:
        with tempfile.TemporaryDirectory() as tmp:
            report["compare"] = bench_compare(scale, benchmarks, policies,
                                              tmp, repeats=repeats)
    else:
        report["compare"] = bench_compare(scale, benchmarks, policies,
                                          cache_root, repeats=repeats)
    return report


def check_report(report: Dict[str, Any],
                 tolerance: float = 1.0) -> List[str]:
    """Regression gate: fused Stage-2 must not be slower than legacy.

    Only ``mpppb*`` policies are gated — they are the only consumers of
    the feature pipeline, so for other policies fused-vs-legacy is pure
    timer noise.  Returns a list of failure messages (empty = pass).
    """
    failures: List[str] = []
    for policy, timings in report["hotpath"]["stage2"].items():
        if not policy.startswith("mpppb"):
            continue
        fused, legacy = timings["fused"], timings["legacy"]
        if fused > legacy * tolerance:
            failures.append(
                f"{policy}: fused stage-2 {fused:.4f}s slower than "
                f"legacy {legacy:.4f}s (tolerance x{tolerance})"
            )
    return failures


def format_report(report: Dict[str, Any]) -> str:
    hot = report["hotpath"]
    lines = [
        f"perf[{report['scale']}] {report['benchmark']} "
        f"({report['accesses']} accesses, best of {report['repeats']})",
        f"  trace gen {hot['trace_gen_s']:8.4f}s   "
        f"stage 1 {hot['stage1_s']:8.4f}s",
    ]
    for policy, timings in hot["stage2"].items():
        fused, legacy = timings["fused"], timings["legacy"]
        ratio = legacy / fused if fused > 0 else float("inf")
        lines.append(f"  stage 2 {policy:12s} fused {fused:8.4f}s   "
                     f"legacy {legacy:8.4f}s   ({ratio:.2f}x)")
    cmp_ = report["compare"]
    lines.append(
        f"  compare {len(cmp_['policies'])} policies x "
        f"{len(cmp_['benchmarks'])} benchmarks: "
        f"cold {cmp_['cold_s']:.3f}s  warm {cmp_['warm_s']:.3f}s  "
        f"({cmp_['speedup']:.2f}x with warm artifacts)"
    )
    return "\n".join(lines)


def write_report(report: Dict[str, Any],
                 path: str = DEFAULT_REPORT) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
