"""Result formatting: the tables and series the paper reports.

Turns runner outputs into aligned text tables (per-benchmark speedup
and MPKI, S-curve samples, geometric-mean summaries) so that examples,
benches, and downstream scripts share one formatting path instead of
each reinventing f-string layouts.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.sim.multi import MixResult
from repro.sim.single import BenchmarkResult
from repro.util.stats import arithmetic_mean, geometric_mean


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render an aligned text table; floats use ``precision`` digits."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rendered))
        if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(
    results: Mapping[str, Dict[str, BenchmarkResult]], baseline: str = "lru"
) -> str:
    """Per-benchmark speedup-over-baseline table plus geomeans.

    ``results`` maps policy name to a suite-result dict; the baseline
    policy must be present.  This is the Figure 6 layout.
    """
    if baseline not in results:
        raise ValueError(f"baseline {baseline!r} missing")
    base = results[baseline]
    policies = [p for p in results if p != baseline]
    benchmarks = sorted(base)
    _check_benchmark_sets(results, benchmarks, "speedup_table")
    rows: List[List[object]] = []
    for name in benchmarks:
        row: List[object] = [name]
        for policy in policies:
            row.append(results[policy][name].ipc / base[name].ipc)
        rows.append(row)
    geomean_row: List[object] = ["geomean"]
    for policy in policies:
        geomean_row.append(geometric_mean([
            results[policy][n].ipc / base[n].ipc for n in benchmarks
        ]))
    rows.append(geomean_row)
    return format_table(["benchmark", *policies], rows)


def _check_benchmark_sets(
    results: Mapping[str, Dict[str, BenchmarkResult]],
    benchmarks: Sequence[str],
    table: str,
) -> None:
    """One-line ValueError when policies cover different benchmark sets.

    Without this, ragged inputs surface as a bare ``KeyError`` from
    deep inside the row loop (and an empty mapping as ``StopIteration``
    in ``mpki_table``) — useless at the CLI boundary.
    """
    expected = set(benchmarks)
    for policy, suite in results.items():
        if set(suite) != expected:
            raise ValueError(
                f"{table}: policy {policy!r} covers benchmarks "
                f"{sorted(suite)} but expected {sorted(expected)}")


def mpki_table(results: Mapping[str, Dict[str, BenchmarkResult]]) -> str:
    """Per-benchmark MPKI table plus arithmetic means (Figure 7 layout)."""
    if not results:
        raise ValueError("mpki_table: empty results mapping")
    policies = list(results)
    benchmarks = sorted(next(iter(results.values())))
    _check_benchmark_sets(results, benchmarks, "mpki_table")
    rows: List[List[object]] = []
    for name in benchmarks:
        rows.append([name, *(results[p][name].mpki for p in policies)])
    rows.append([
        "mean",
        *(arithmetic_mean([results[p][n].mpki for n in benchmarks])
          for p in policies),
    ])
    return format_table(["benchmark", *policies], rows)


def weighted_speedup_summary(
    normalized: Mapping[str, Sequence[float]]
) -> str:
    """Geomean / min / max / below-1 summary of Figure 4 S-curves."""
    rows = []
    for policy, values in normalized.items():
        rows.append([
            policy,
            geometric_mean(list(values)),
            min(values),
            max(values),
            sum(1 for v in values if v < 1.0),
        ])
    return format_table(
        ["policy", "geomean", "min", "max", "below LRU"], rows, precision=4
    )


def mix_mpki_summary(results: Mapping[str, Sequence[MixResult]]) -> str:
    """Mean-MPKI summary over mixes (Figure 5 layout)."""
    rows = [
        [policy, arithmetic_mean([r.mpki for r in mix_results])]
        for policy, mix_results in results.items()
    ]
    return format_table(["policy", "mean MPKI"], rows)
