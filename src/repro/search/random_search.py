"""Random feature-set search (Section 5.1, Figure 3).

The paper's methodology starts from a large population of randomly
chosen sets of 16 parameterized features, evaluates each by average
MPKI, and keeps the best for hill-climbing refinement.  Figure 3 plots
the population sorted by MPKI: random selection alone recovers most of
the achievable benefit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.features import Feature, random_feature_set
from repro.search.evaluator import FeatureSetEvaluator


@dataclass(frozen=True)
class SearchCandidate:
    """One evaluated feature set."""

    features: Tuple[Feature, ...]
    mpki: float


def random_search(
    evaluator: FeatureSetEvaluator,
    num_sets: int,
    set_size: int = 16,
    seed: int = 2017,
) -> List[SearchCandidate]:
    """Evaluate ``num_sets`` random feature sets; best (lowest MPKI) first."""
    if num_sets < 1:
        raise ValueError("num_sets must be positive")
    rng = random.Random(seed)
    # Draw the whole population first (same RNG stream as evaluating
    # inline, since evaluation is deterministic), then evaluate as one
    # batch so an attached repro.exec engine can fan candidates out
    # across worker processes.
    feature_sets = [random_feature_set(rng, set_size) for _ in range(num_sets)]
    values = evaluator.evaluate_many(feature_sets)
    candidates = [
        SearchCandidate(features, value)
        for features, value in zip(feature_sets, values)
    ]
    candidates.sort(key=lambda c: c.mpki)
    return candidates


def mpki_distribution(candidates: Sequence[SearchCandidate]) -> List[float]:
    """MPKI values sorted in descending order — the Figure 3 series."""
    return sorted((c.mpki for c in candidates), reverse=True)
