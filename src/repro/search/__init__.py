"""Feature design-space exploration: random search and hill-climbing."""

from repro.search.evaluator import FeatureSetEvaluator
from repro.search.hillclimb import HillClimbResult, hill_climb
from repro.search.random_search import (
    SearchCandidate,
    mpki_distribution,
    random_search,
)

__all__ = [
    "FeatureSetEvaluator",
    "HillClimbResult",
    "hill_climb",
    "SearchCandidate",
    "mpki_distribution",
    "random_search",
]
