"""Fast MPKI-only evaluation of feature sets (Section 5.1).

The paper's design-space exploration evaluates thousands of candidate
feature sets "with a fast simulator that only measures average MPKI".
Our equivalent replays the cached, policy-invariant LLC streams of a
workload list under an MPPPB instance built from the candidate
features and averages the resulting MPKI.

Candidate evaluations are independent of each other, which makes them
ideal fan-out targets for the ``repro.exec`` engine: attach a
:class:`~repro.exec.ParallelRunner` (``executor``) plus the
:class:`~repro.exec.SuiteSpec` the segments were built from (``spec``,
or use :meth:`FeatureSetEvaluator.from_spec`) and batched calls through
:meth:`FeatureSetEvaluator.evaluate_many` run in worker processes and
land in the on-disk result cache.  Without an executor the evaluator
behaves exactly as before: serial, in-process, memoized in memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.features import Feature
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.sim.batch import stage2_batch_enabled
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.single import SingleThreadRunner
from repro.traces.trace import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.runner import ParallelRunner, SuiteSpec


class FeatureSetEvaluator:
    """Average-MPKI objective over a fixed set of workload segments."""

    def __init__(
        self,
        segments: Sequence[Segment],
        hierarchy: HierarchyConfig,
        base_config: Optional[MPPPBConfig] = None,
        warmup_fraction: float = 0.25,
        prefetch: bool = True,
        executor: Optional["ParallelRunner"] = None,
        spec: Optional["SuiteSpec"] = None,
        stage1_store=None,
        batch_size: Optional[int] = None,
    ) -> None:
        if not segments:
            raise ValueError("evaluator needs at least one segment")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.segments = list(segments)
        self.hierarchy = hierarchy
        self.base_config = base_config
        self.warmup_fraction = warmup_fraction
        self.prefetch = prefetch
        self.runner = SingleThreadRunner(
            hierarchy, prefetch=prefetch, warmup_fraction=warmup_fraction,
            stage1_store=stage1_store,
        )
        self.executor = executor
        self.spec = spec
        # Candidates per shared-context replay; None = whole generation
        # in one batch.  Ignored when REPRO_STAGE2_BATCH=off.
        self.batch_size = batch_size
        self.evaluations = 0
        self._cache: Dict[tuple, float] = {}
        # Telemetry: evaluate_many calls are the search's generations
        # (one per random-search round or hill-climb neighborhood).
        self._generation = 0

    @classmethod
    def from_spec(
        cls,
        spec: "SuiteSpec",
        hierarchy: HierarchyConfig,
        base_config: Optional[MPPPBConfig] = None,
        warmup_fraction: float = 0.25,
        prefetch: bool = True,
        executor: Optional["ParallelRunner"] = None,
        batch_size: Optional[int] = None,
    ) -> "FeatureSetEvaluator":
        """Build from a deterministic segment recipe so evaluations can
        be fanned out to worker processes (which rebuild identical
        segments from the spec) and cached on disk."""
        return cls(
            spec.build(),
            hierarchy,
            base_config=base_config,
            warmup_fraction=warmup_fraction,
            prefetch=prefetch,
            executor=executor,
            spec=spec,
            batch_size=batch_size,
        )

    def _config(self, features: Sequence[Feature]) -> MPPPBConfig:
        if self.base_config is not None:
            return self.base_config.with_features(features)
        return MPPPBConfig(features=tuple(features))

    def _evaluate_local(self, features: Tuple[Feature, ...]) -> float:
        """Serial in-process evaluation (the pre-engine code path)."""
        config = self._config(features)

        def factory(num_sets: int, ways: int) -> MPPPBPolicy:
            return MPPPBPolicy(num_sets, ways, config)

        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, factory).mpki
        return total / len(self.segments)

    def _evaluate_batch_local(
        self, pending: List[Tuple[Feature, ...]]
    ) -> None:
        """Fill the memo for ``pending`` via shared-context replays.

        Chunks of ``batch_size`` candidates (the whole list when None)
        share one Stage-2 stream decode per segment; per-candidate MPKI
        accumulates in the same segment order as
        :meth:`_evaluate_local`, so values are bit-identical.
        """
        size = self.batch_size or len(pending)
        for start in range(0, len(pending), size):
            chunk = pending[start:start + size]
            if len(chunk) == 1:
                self._cache[chunk[0]] = self._evaluate_local(chunk[0])
                self.evaluations += 1
                continue
            configs = [self._config(features) for features in chunk]
            totals = [0.0] * len(chunk)
            for segment in self.segments:
                results = self.runner.run_segment_batch(segment, configs)
                for k, result in enumerate(results):
                    totals[k] += result.mpki
            for key, total in zip(chunk, totals):
                self._cache[key] = total / len(self.segments)
                self.evaluations += 1

    def evaluate_batch(
        self, feature_sets: Sequence[Sequence[Feature]]
    ) -> List[float]:
        """In-process evaluation of a candidate batch; input order.

        The shared-context engine handles unique uncached candidates
        (when enabled and there is more than one); results land in the
        in-memory memo exactly like :meth:`evaluate`'s.
        """
        keys = [tuple(features) for features in feature_sets]
        pending: List[Tuple[Feature, ...]] = []
        seen = set()
        for key in keys:
            if key not in self._cache and key not in seen:
                seen.add(key)
                pending.append(key)
        if pending:
            if stage2_batch_enabled() and len(pending) > 1:
                self._evaluate_batch_local(pending)
            else:
                for key in pending:
                    self._cache[key] = self._evaluate_local(key)
                    self.evaluations += 1
        return [self._cache[key] for key in keys]

    def evaluate(self, features: Sequence[Feature]) -> float:
        """Average demand MPKI of MPPPB built on ``features``."""
        key = tuple(features)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.executor is not None and self.spec is not None:
            return self.evaluate_many([key])[0]
        self._cache[key] = mean = self._evaluate_local(key)
        self.evaluations += 1
        return mean

    def evaluate_many(
        self, feature_sets: Sequence[Sequence[Feature]]
    ) -> List[float]:
        """Evaluate a batch of candidate sets; results in input order.

        With an attached executor (and a spec describing the segments),
        uncached candidates are fanned across worker processes and the
        on-disk result cache; otherwise they evaluate in process.
        Either way, candidates that share a generation are grouped into
        shared-context Stage-2 replays (:mod:`repro.sim.batch`) of at
        most ``batch_size`` candidates unless ``REPRO_STAGE2_BATCH=off``
        pins the sequential per-candidate path.
        """
        self._generation += 1
        with obs.span(f"search-gen-{self._generation}"):
            return self._evaluate_many(feature_sets)

    def _evaluate_many(
        self, feature_sets: Sequence[Sequence[Feature]]
    ) -> List[float]:
        keys = [tuple(features) for features in feature_sets]
        unique_pending: List[Tuple[Feature, ...]] = []
        seen = set()
        for key in keys:
            if key not in self._cache and key not in seen:
                seen.add(key)
                unique_pending.append(key)

        if unique_pending and self.executor is not None and self.spec is not None:
            from repro.exec.runner import SearchCell

            cells = [
                SearchCell(
                    suite=self.spec,
                    features=features,
                    hierarchy=self.hierarchy,
                    base_config=self.base_config,
                    prefetch=self.prefetch,
                    warmup_fraction=self.warmup_fraction,
                )
                for features in unique_pending
            ]
            if stage2_batch_enabled():
                values = self.executor.run_search_batches(
                    cells, batch_size=self.batch_size, label="search")
            else:
                values = self.executor.run(cells, label="search")
            unresolved = 0
            for features, value in zip(unique_pending, values):
                if value is None:
                    # Failed cell under on_error="collect"; leave it
                    # uncached so a later call may retry it.
                    unresolved += 1
                    continue
                self._cache[features] = value
                self.evaluations += 1
            if unresolved:
                # Hill-climbing cannot rank candidates against holes:
                # surface the first structured failure instead of
                # letting a None poison the score comparison.
                from repro.exec.faults import CellExecutionError

                report = self.executor.last_report
                failures = report.failures if report is not None else ()
                raise CellExecutionError(
                    failures[0] if failures else None,
                    message=(f"{unresolved} of {len(unique_pending)} "
                             f"candidate evaluations failed"
                             + (f": {failures[0].summary()}"
                                if failures else "")),
                )
        elif unique_pending:
            self.evaluate_batch(unique_pending)

        return [self._cache[key] for key in keys]

    def baseline_mpki(self, policy_factory) -> float:
        """Average MPKI of an arbitrary policy (for LRU/MIN reference lines)."""
        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, policy_factory).mpki
        return total / len(self.segments)
