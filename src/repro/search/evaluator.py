"""Fast MPKI-only evaluation of feature sets (Section 5.1).

The paper's design-space exploration evaluates thousands of candidate
feature sets "with a fast simulator that only measures average MPKI".
Our equivalent replays the cached, policy-invariant LLC streams of a
workload list under an MPPPB instance built from the candidate
features and averages the resulting MPKI.

Candidate evaluations are independent of each other, which makes them
ideal fan-out targets for the ``repro.exec`` engine: attach a
:class:`~repro.exec.ParallelRunner` (``executor``) plus the
:class:`~repro.exec.SuiteSpec` the segments were built from (``spec``,
or use :meth:`FeatureSetEvaluator.from_spec`) and batched calls through
:meth:`FeatureSetEvaluator.evaluate_many` run in worker processes and
land in the on-disk result cache.  Without an executor the evaluator
behaves exactly as before: serial, in-process, memoized in memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.features import Feature
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.single import SingleThreadRunner
from repro.traces.trace import Segment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.runner import ParallelRunner, SuiteSpec


class FeatureSetEvaluator:
    """Average-MPKI objective over a fixed set of workload segments."""

    def __init__(
        self,
        segments: Sequence[Segment],
        hierarchy: HierarchyConfig,
        base_config: Optional[MPPPBConfig] = None,
        warmup_fraction: float = 0.25,
        prefetch: bool = True,
        executor: Optional["ParallelRunner"] = None,
        spec: Optional["SuiteSpec"] = None,
        stage1_store=None,
    ) -> None:
        if not segments:
            raise ValueError("evaluator needs at least one segment")
        self.segments = list(segments)
        self.hierarchy = hierarchy
        self.base_config = base_config
        self.warmup_fraction = warmup_fraction
        self.prefetch = prefetch
        self.runner = SingleThreadRunner(
            hierarchy, prefetch=prefetch, warmup_fraction=warmup_fraction,
            stage1_store=stage1_store,
        )
        self.executor = executor
        self.spec = spec
        self.evaluations = 0
        self._cache: Dict[tuple, float] = {}

    @classmethod
    def from_spec(
        cls,
        spec: "SuiteSpec",
        hierarchy: HierarchyConfig,
        base_config: Optional[MPPPBConfig] = None,
        warmup_fraction: float = 0.25,
        prefetch: bool = True,
        executor: Optional["ParallelRunner"] = None,
    ) -> "FeatureSetEvaluator":
        """Build from a deterministic segment recipe so evaluations can
        be fanned out to worker processes (which rebuild identical
        segments from the spec) and cached on disk."""
        return cls(
            spec.build(),
            hierarchy,
            base_config=base_config,
            warmup_fraction=warmup_fraction,
            prefetch=prefetch,
            executor=executor,
            spec=spec,
        )

    def _config(self, features: Sequence[Feature]) -> MPPPBConfig:
        if self.base_config is not None:
            return self.base_config.with_features(features)
        return MPPPBConfig(features=tuple(features))

    def _evaluate_local(self, features: Tuple[Feature, ...]) -> float:
        """Serial in-process evaluation (the pre-engine code path)."""
        config = self._config(features)

        def factory(num_sets: int, ways: int) -> MPPPBPolicy:
            return MPPPBPolicy(num_sets, ways, config)

        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, factory).mpki
        return total / len(self.segments)

    def evaluate(self, features: Sequence[Feature]) -> float:
        """Average demand MPKI of MPPPB built on ``features``."""
        key = tuple(features)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.executor is not None and self.spec is not None:
            return self.evaluate_many([key])[0]
        self._cache[key] = mean = self._evaluate_local(key)
        self.evaluations += 1
        return mean

    def evaluate_many(
        self, feature_sets: Sequence[Sequence[Feature]]
    ) -> List[float]:
        """Evaluate a batch of candidate sets; results in input order.

        With an attached executor (and a spec describing the segments),
        uncached candidates are fanned across worker processes and the
        on-disk result cache; otherwise this is a serial loop over
        :meth:`evaluate`.
        """
        keys = [tuple(features) for features in feature_sets]
        unique_pending: List[Tuple[Feature, ...]] = []
        seen = set()
        for key in keys:
            if key not in self._cache and key not in seen:
                seen.add(key)
                unique_pending.append(key)

        if unique_pending and self.executor is not None and self.spec is not None:
            from repro.exec.runner import SearchCell

            cells = [
                SearchCell(
                    suite=self.spec,
                    features=features,
                    hierarchy=self.hierarchy,
                    base_config=self.base_config,
                    prefetch=self.prefetch,
                    warmup_fraction=self.warmup_fraction,
                )
                for features in unique_pending
            ]
            values = self.executor.run(cells, label="search")
            for features, value in zip(unique_pending, values):
                self._cache[features] = value
                self.evaluations += 1
        else:
            for features in unique_pending:
                self.evaluate(features)

        return [self._cache[key] for key in keys]

    def baseline_mpki(self, policy_factory) -> float:
        """Average MPKI of an arbitrary policy (for LRU/MIN reference lines)."""
        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, policy_factory).mpki
        return total / len(self.segments)
