"""Fast MPKI-only evaluation of feature sets (Section 5.1).

The paper's design-space exploration evaluates thousands of candidate
feature sets "with a fast simulator that only measures average MPKI".
Our equivalent replays the cached, policy-invariant LLC streams of a
workload list under an MPPPB instance built from the candidate
features and averages the resulting MPKI.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.features import Feature
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.single import SingleThreadRunner
from repro.traces.trace import Segment


class FeatureSetEvaluator:
    """Average-MPKI objective over a fixed set of workload segments."""

    def __init__(
        self,
        segments: Sequence[Segment],
        hierarchy: HierarchyConfig,
        base_config: Optional[MPPPBConfig] = None,
        warmup_fraction: float = 0.25,
        prefetch: bool = True,
    ) -> None:
        if not segments:
            raise ValueError("evaluator needs at least one segment")
        self.segments = list(segments)
        self.base_config = base_config
        self.runner = SingleThreadRunner(
            hierarchy, prefetch=prefetch, warmup_fraction=warmup_fraction
        )
        self.evaluations = 0
        self._cache: Dict[tuple, float] = {}

    def _config(self, features: Sequence[Feature]) -> MPPPBConfig:
        if self.base_config is not None:
            return self.base_config.with_features(features)
        return MPPPBConfig(features=tuple(features))

    def evaluate(self, features: Sequence[Feature]) -> float:
        """Average demand MPKI of MPPPB built on ``features``."""
        key = tuple(features)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self._config(features)

        def factory(num_sets: int, ways: int) -> MPPPBPolicy:
            return MPPPBPolicy(num_sets, ways, config)

        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, factory).mpki
        self.evaluations += 1
        mean = total / len(self.segments)
        self._cache[key] = mean
        return mean

    def baseline_mpki(self, policy_factory) -> float:
        """Average MPKI of an arbitrary policy (for LRU/MIN reference lines)."""
        total = 0.0
        for segment in self.segments:
            total += self.runner.run_segment(segment, policy_factory).mpki
        return total / len(self.segments)
