"""Hill-climbing refinement of a feature set (Section 5.1).

The paper's climber repeatedly picks a random member of the current
set and either (a) replaces it with a freshly random feature,
(b) replaces it with a copy of another member — which is why published
sets contain duplicates like pc(17,6,20,0,1) — or (c) slightly
perturbs one of its parameters.  A change is kept only if it lowers
average MPKI; the search stops after a step budget or when no change
has helped for ``patience`` consecutive attempts ("a state of
convergence").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.features import Feature, perturb_feature, random_feature
from repro.search.evaluator import FeatureSetEvaluator


@dataclass(frozen=True)
class HillClimbResult:
    features: Tuple[Feature, ...]
    mpki: float
    history: Tuple[float, ...]
    steps_taken: int
    improvements: int


def _mutate(
    features: List[Feature], rng: random.Random
) -> List[Feature]:
    """Apply one of the paper's three mutation moves."""
    mutated = list(features)
    victim = rng.randrange(len(mutated))
    move = rng.random()
    if move < 1 / 3:
        mutated[victim] = random_feature(rng)
    elif move < 2 / 3 and len(mutated) > 1:
        donor = rng.randrange(len(mutated))
        mutated[victim] = mutated[donor]
    else:
        mutated[victim] = perturb_feature(mutated[victim], rng)
    return mutated


def hill_climb(
    evaluator: FeatureSetEvaluator,
    initial: Tuple[Feature, ...],
    steps: int,
    seed: int = 1337,
    patience: int = 0,
) -> HillClimbResult:
    """Greedy local search from ``initial``; returns the best set found."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    rng = random.Random(seed)
    current = list(initial)
    current_mpki = evaluator.evaluate(current)
    history = [current_mpki]
    improvements = 0
    stale = 0
    taken = 0
    for taken in range(1, steps + 1):
        candidate = _mutate(current, rng)
        candidate_mpki = evaluator.evaluate(candidate)
        if candidate_mpki < current_mpki:
            current = candidate
            current_mpki = candidate_mpki
            improvements += 1
            stale = 0
        else:
            stale += 1
        history.append(current_mpki)
        if patience and stale >= patience:
            break
    return HillClimbResult(
        features=tuple(current),
        mpki=current_mpki,
        history=tuple(history),
        steps_taken=taken,
        improvements=improvements,
    )
