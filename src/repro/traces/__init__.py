"""Trace model, synthetic workload kernels, benchmark suite, and mixes."""

# NOTE: repro.traces.ingest is deliberately NOT re-exported here — it
# depends on repro.exec (ConfigError, cache keys), which depends on
# repro.sim.hierarchy, which imports repro.traces.trace; pulling it in
# at package init would close that cycle.  Import it directly:
# ``from repro.traces.ingest import IngestSpec``.
from repro.traces.holdout import (
    build_holdout_segments,
    build_holdout_suite,
    holdout_names,
)
from repro.traces.mixes import Mix, generate_mixes, split_train_test
from repro.traces.synth import (
    BurstyAccess,
    ShuffledLoop,
    GatherScatter,
    HotCold,
    ObjectWalk,
    PhaseSpec,
    PointerChase,
    RegionScan,
    StackChurn,
    compose,
)
from repro.traces.trace import MemoryAccess, Segment, Trace
from repro.traces.workloads import (
    BenchmarkSpec,
    all_segments,
    benchmark_names,
    build_segments,
    build_suite,
    get_benchmark,
)

__all__ = [
    "build_holdout_segments",
    "build_holdout_suite",
    "holdout_names",
    "Mix",
    "generate_mixes",
    "split_train_test",
    "BurstyAccess",
    "ShuffledLoop",
    "GatherScatter",
    "HotCold",
    "ObjectWalk",
    "PhaseSpec",
    "PointerChase",
    "RegionScan",
    "StackChurn",
    "compose",
    "MemoryAccess",
    "Segment",
    "Trace",
    "BenchmarkSpec",
    "all_segments",
    "benchmark_names",
    "build_segments",
    "build_suite",
    "get_benchmark",
]
