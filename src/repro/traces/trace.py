"""Memory-access trace model.

The paper's simulator is trace driven: each record is a memory access
instruction identified by its program counter, touching a physical
address, separated from the previous memory instruction by some number
of non-memory instructions.  ``Trace`` stores these as parallel lists
(cheap to index in hot simulation loops) and knows its total retired
instruction count, which MPKI reporting needs (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class MemoryAccess:
    """A single memory access instruction.

    Attributes:
        pc: program counter of the memory instruction.
        address: byte address accessed.
        is_write: True for stores.
        instr_index: index of this instruction in program order
            (counting both memory and non-memory instructions).
        depends: True when this load's address depends on the previous
            load's result (pointer chasing) — it cannot issue until
            that load completes, which is what limits memory-level
            parallelism in linked-data-structure code.
    """

    pc: int
    address: int
    is_write: bool
    instr_index: int
    depends: bool = False


class Trace:
    """An immutable sequence of memory accesses with instruction gaps.

    ``gaps[i]`` is the number of non-memory instructions retired between
    memory instruction ``i-1`` and memory instruction ``i`` (for i == 0,
    before the first memory instruction).
    """

    __slots__ = ("name", "pcs", "addresses", "writes", "gaps", "deps",
                 "_instr_total")

    def __init__(
        self,
        name: str,
        pcs: Sequence[int],
        addresses: Sequence[int],
        writes: Sequence[bool],
        gaps: Sequence[int],
        deps: Sequence[bool] = (),
    ) -> None:
        if not (len(pcs) == len(addresses) == len(writes) == len(gaps)):
            raise ValueError("trace field lengths differ")
        if len(deps) != 0 and len(deps) != len(pcs):
            raise ValueError("trace field lengths differ")
        self.name = name
        self.pcs: List[int] = list(pcs)
        self.addresses: List[int] = list(addresses)
        self.writes: List[bool] = list(writes)
        self.gaps: List[int] = list(gaps)
        if any(gap < 0 for gap in self.gaps):
            raise ValueError("instruction gap must be non-negative")
        self.deps: List[bool] = (
            list(deps) if len(deps) else [False] * len(pcs)
        )
        self._instr_total = sum(self.gaps) + len(self.pcs)

    def __len__(self) -> int:
        return len(self.pcs)

    @property
    def num_accesses(self) -> int:
        return len(self.pcs)

    @property
    def num_instructions(self) -> int:
        """Total retired instructions (memory plus non-memory)."""
        return self._instr_total

    def __iter__(self) -> Iterator[MemoryAccess]:
        index = -1
        for pc, addr, write, gap, dep in zip(
            self.pcs, self.addresses, self.writes, self.gaps, self.deps
        ):
            index += gap + 1
            yield MemoryAccess(pc, addr, write, index, dep)

    def slice(self, start: int, stop: int) -> "Trace":
        """Return accesses [start, stop) as a new trace."""
        return Trace(
            f"{self.name}[{start}:{stop}]",
            self.pcs[start:stop],
            self.addresses[start:stop],
            self.writes[start:stop],
            self.gaps[start:stop],
            self.deps[start:stop],
        )

    @classmethod
    def from_accesses(cls, name: str, accesses: Iterable[Tuple]) -> "Trace":
        """Build a trace from (pc, address, is_write, gap[, depends]) tuples."""
        pcs: List[int] = []
        addresses: List[int] = []
        writes: List[bool] = []
        gaps: List[int] = []
        deps: List[bool] = []
        for record in accesses:
            pc, addr, write, gap = record[:4]
            pcs.append(pc)
            addresses.append(addr)
            writes.append(write)
            gaps.append(gap)
            deps.append(bool(record[4]) if len(record) > 4 else False)
        return cls(name, pcs, addresses, writes, gaps, deps)


@dataclass(frozen=True)
class Segment:
    """A weighted program phase, the reproduction's analog of a simpoint.

    The paper identifies up to six one-billion-instruction SimPoint
    segments per benchmark and reports each benchmark as the weighted
    average of its segments (Section 4.2).
    """

    name: str
    trace: Trace
    weight: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("segment weight must be positive")
