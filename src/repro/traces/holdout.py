"""Holdout workloads — the reproduction's SPEC CPU 2017 analog.

Table 3 of the paper deliberately evaluates on SPEC CPU 2017
simpoints because they "became available between the acceptance and
camera ready versions" and therefore played no part in feature
development (Section 6.4).  This module provides the same discipline:
a second, smaller suite of benchmarks, with parameters and seeds
disjoint from :mod:`repro.traces.workloads`, that is never used for
tuning thresholds or searching features.  The names follow the SPEC
CPU 2017 benchmarks Table 3 lists.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.traces.synth import (
    BurstyAccess,
    GatherScatter,
    HotCold,
    ObjectWalk,
    PhaseSpec,
    PointerChase,
    RegionScan,
    ShuffledLoop,
    StackChurn,
    compose,
)
from repro.traces.trace import Segment, Trace

_HOLDOUT_BASE = 0x100 << 40  # disjoint from the main suite's regions
_HOLDOUT_PC = 0x7F0000


def _builders():
    """name -> PhaseSpec builder (base, pc, llc) for the holdout suite."""

    def entry(name, builder):
        return name, builder

    return dict([
        entry("bwaves_17", lambda b, p, l: PhaseSpec([
            (RegionScan(base=b, size=int(5.5 * l), stride=64, pc_base=p,
                        pc_count=3), 1.0),
        ])),
        entry("xalancbmk_17", lambda b, p, l: PhaseSpec([
            (PointerChase(base=b, nodes=max(64, int(1.4 * l) // 96),
                          node_size=96, pc_base=p, payload_fields=2), 3.0),
            (ObjectWalk(base=b + (1 << 30), objects=max(64, int(0.9 * l) // 64),
                        object_size=64, fields=(0, 8, 24), pc_base=p + 0x100), 2.0),
        ])),
        entry("wrf_17", lambda b, p, l: PhaseSpec([
            (ShuffledLoop(base=b, size=int(1.45 * l), pc_base=p), 2.0),
            (HotCold(hot_base=b + (1 << 30), hot_size=int(0.12 * l),
                     cold_base=b + (1 << 31), cold_size=int(1.8 * l),
                     hot_prob=0.72, pc_base=p + 0x100), 1.0),
        ])),
        entry("xz_17", lambda b, p, l: PhaseSpec([
            (ShuffledLoop(base=b, size=int(1.25 * l), pc_base=p,
                          write_ratio=0.3), 2.0),
            (GatherScatter(base=b + (1 << 30), size=int(0.6 * l),
                           pc_base=p + 0x100), 1.0),
        ])),
        entry("roms_17", lambda b, p, l: PhaseSpec([
            (RegionScan(base=b, size=int(3.2 * l), stride=64, pc_base=p), 2.0),
            (ShuffledLoop(base=b + (1 << 31), size=int(1.3 * l),
                          pc_base=p + 0x100), 1.0),
        ])),
        entry("gcc_17", lambda b, p, l: PhaseSpec([
            (ObjectWalk(base=b, objects=max(64, int(2.2 * l) // 160),
                        object_size=160, fields=(0, 16, 48, 96, 136),
                        pc_base=p), 3.0),
            (StackChurn(base=b + (1 << 30), pc_base=p + 0x100), 1.0),
        ])),
        entry("mcf_17", lambda b, p, l: PhaseSpec([
            (PointerChase(base=b, nodes=max(64, int(2.8 * l) // 64),
                          pc_base=p, payload_fields=1), 3.0),
            (ShuffledLoop(base=b + (1 << 31), size=int(1.9 * l),
                          pc_base=p + 0x100), 1.0),
        ])),
        entry("lbm_17", lambda b, p, l: PhaseSpec([
            (RegionScan(base=b, size=int(6.5 * l), stride=64, pc_base=p,
                        pc_count=2, write_ratio=0.5, gap_lo=1, gap_hi=3), 1.0),
        ])),
        entry("leela_17", lambda b, p, l: PhaseSpec([
            (HotCold(hot_base=b, hot_size=int(0.08 * l),
                     cold_base=b + (1 << 30), cold_size=int(0.5 * l),
                     hot_prob=0.85, pc_base=p), 2.0),
            (StackChurn(base=b + (1 << 31), pc_base=p + 0x100), 1.0),
        ])),
        entry("x264_17", lambda b, p, l: PhaseSpec([
            (BurstyAccess(base=b, blocks=max(64, int(0.7 * l) // 64),
                          burst_lo=3, burst_hi=6, pc_base=p), 2.0),
            (RegionScan(base=b + (1 << 30), size=int(0.9 * l), stride=16,
                        pc_base=p + 0x100), 1.0),
        ])),
        entry("omnetpp_17", lambda b, p, l: PhaseSpec([
            (PointerChase(base=b, nodes=max(64, int(1.7 * l) // 128),
                          node_size=128, pc_base=p, payload_fields=2), 2.0),
            (ShuffledLoop(base=b + (1 << 31), size=int(1.35 * l),
                          pc_base=p + 0x100), 1.0),
        ])),
        entry("deepsjeng_17", lambda b, p, l: PhaseSpec([
            (GatherScatter(base=b, size=int(2.1 * l), pc_base=p,
                           write_ratio=0.2), 2.0),
            (HotCold(hot_base=b + (1 << 30), hot_size=int(0.15 * l),
                     cold_base=b + (1 << 31), cold_size=int(1.1 * l),
                     hot_prob=0.65, pc_base=p + 0x100), 1.0),
        ])),
    ])


def holdout_names() -> List[str]:
    """Names of the holdout (SPEC CPU 2017 analog) benchmarks."""
    return list(_builders())


def build_holdout_segments(
    name: str, llc_bytes: int, accesses: int, seed: int = 20170
) -> List[Segment]:
    """Materialize one holdout benchmark (single segment each)."""
    builders = _builders()
    try:
        builder = builders[name]
    except KeyError:
        raise KeyError(
            f"unknown holdout benchmark {name!r}; see holdout_names()"
        ) from None
    index = holdout_names().index(name)
    base = _HOLDOUT_BASE + (index << 36)
    pc_base = _HOLDOUT_PC + index * 0x40000
    phase = builder(base, pc_base, llc_bytes)
    tuples = compose(phase, accesses, seed ^ (index * 977))
    trace = Trace.from_accesses(f"{name}.p0", tuples)
    return [Segment(f"{name}.p0", trace, 1.0)]


def build_holdout_suite(
    llc_bytes: int, accesses: int, seed: int = 20170,
    names: Sequence[str] = (),
) -> Dict[str, List[Segment]]:
    selected = list(names) if names else holdout_names()
    return {
        name: build_holdout_segments(name, llc_bytes, accesses, seed)
        for name in selected
    }
