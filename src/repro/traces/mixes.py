"""FIESTA-style multi-programmed workload mixes (Sections 4.2 and 5.3).

The paper generates 1000 distinct 4-core mixes by drawing 4 of the 99
program segments uniformly at random *without replacement*, using the
first 100 mixes to train parameters and the remaining 900 to report
results.  We reproduce that methodology at configurable scale.

FIESTA's sample balancing picks regions of equal standalone running
time; here every segment trace is already cut to an equal access
budget, and the multi-programmed runner interleaves threads by their
standalone timestamps (see :mod:`repro.sim.multi`), restarting a thread
at the beginning of its region when it runs out, so all cores stay
active for the whole measurement as in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.traces.trace import Segment


@dataclass(frozen=True)
class Mix:
    """One 4-core multi-programmed workload."""

    name: str
    segments: Tuple[Segment, ...]

    def __post_init__(self) -> None:
        if len(self.segments) != len({s.name for s in self.segments}):
            raise ValueError("mix segments must be distinct")


def generate_mixes(
    segments: Sequence[Segment],
    count: int,
    cores: int = 4,
    seed: int = 0xF1E57A,
) -> List[Mix]:
    """Draw ``count`` distinct mixes of ``cores`` segments each."""
    if len(segments) < cores:
        raise ValueError(f"need at least {cores} segments, got {len(segments)}")
    rng = random.Random(seed)
    mixes: List[Mix] = []
    seen = set()
    attempts = 0
    while len(mixes) < count:
        attempts += 1
        if attempts > 100 * count + 1000:
            raise RuntimeError("unable to generate enough distinct mixes")
        chosen = tuple(rng.sample(range(len(segments)), cores))
        if chosen in seen:
            continue
        seen.add(chosen)
        mix_segments = tuple(segments[i] for i in chosen)
        mixes.append(Mix(f"mix{len(mixes):04d}", mix_segments))
    return mixes


def split_train_test(
    mixes: Sequence[Mix], train_count: int
) -> Tuple[List[Mix], List[Mix]]:
    """Leading ``train_count`` mixes train parameters; the rest report.

    Mirrors the paper's 100-train / 900-test split so reported numbers
    never come from mixes used for feature or threshold development.
    """
    if not 0 < train_count < len(mixes):
        raise ValueError("train_count must be within (0, len(mixes))")
    return list(mixes[:train_count]), list(mixes[train_count:])
