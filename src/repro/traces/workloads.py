"""The 33-benchmark synthetic workload suite.

The paper evaluates 29 SPEC CPU 2006 benchmarks, three CloudSuite
server workloads (data_caching, graph_analytics, sat_solver) and
mlpack-cf, cut into up to six weighted SimPoint segments each, 99
segments in total (Section 4.2).  The proprietary traces are
substituted by deterministic synthetic analogs: each benchmark is a
named mixture of the kernels in :mod:`repro.traces.synth`, sized
*relative to the LLC capacity* so that scaled-down cache geometries
preserve each benchmark's miss-ratio regime.

Kernel mixtures were chosen to mirror each program's published memory
character: ``lbm``/``libquantum``/``bwaves`` stream, ``mcf``/
``omnetpp``/``xalancbmk`` chase pointers, ``gcc``/``perlbench`` walk
objects field by field, ``h264ref`` is bursty, and so on.  The point is
not to clone SPEC but to span the reuse/dead-block spectrum the
multiperspective features discriminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.traces.synth import (
    BurstyAccess,
    ShuffledLoop,
    GatherScatter,
    HotCold,
    ObjectWalk,
    PhaseSpec,
    PointerChase,
    RegionScan,
    StackChurn,
    compose,
)
from repro.traces.trace import Segment, Trace

SpecBuilder = Callable[[int, int, int], PhaseSpec]


@dataclass(frozen=True)
class SegmentSpec:
    """One weighted phase of a benchmark."""

    name: str
    weight: float
    builder: SpecBuilder


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: an ordered collection of weighted segments."""

    name: str
    segments: Tuple[SegmentSpec, ...]


def _scan(base, pc, llc, ratio, **kw):
    return RegionScan(base=base, size=max(4096, int(llc * ratio)), pc_base=pc, **kw)


def _thrash(base, pc, llc, ratio, **kw):
    """Irregular cyclic working set slightly larger than the LLC.

    The canonical LRU pathology: with a working set of ``ratio`` times
    the cache, LRU hits nothing while MIN (and a good reuse predictor
    driving bypass) pins ``1/ratio`` of the loop.  The shuffled order
    keeps the stream prefetcher out of the picture, as in mcf-like
    irregular code.  This regime carries most of the policy headroom
    the paper exploits.
    """
    kw.pop("stride", None)
    return ShuffledLoop(base=base, size=max(8192, int(llc * ratio)), pc_base=pc, **kw)


def _chase(base, pc, llc, ratio, **kw):
    nodes = max(64, int(llc * ratio) // 64)
    return PointerChase(base=base, nodes=nodes, pc_base=pc, **kw)


def _hotcold(base, pc, llc, hot_ratio, cold_ratio, **kw):
    return HotCold(
        hot_base=base,
        hot_size=max(4096, int(llc * hot_ratio)),
        cold_base=base + (1 << 30),
        cold_size=max(65536, int(llc * cold_ratio)),
        pc_base=pc,
        **kw,
    )


def _objects(base, pc, llc, ratio, **kw):
    objects = max(64, int(llc * ratio) // 128)
    return ObjectWalk(base=base, objects=objects, pc_base=pc, **kw)


def _bursty(base, pc, llc, ratio, **kw):
    blocks = max(64, int(llc * ratio) // 64)
    return BurstyAccess(base=base, blocks=blocks, pc_base=pc, **kw)


def _gather(base, pc, llc, ratio, **kw):
    return GatherScatter(base=base, size=max(4096, int(llc * ratio)), pc_base=pc, **kw)


def _stack(base, pc, llc, **kw):
    return StackChurn(base=base, pc_base=pc, **kw)


def _suite() -> List[BenchmarkSpec]:
    """Construct the full benchmark table.

    Inside each builder, ``base`` is the benchmark's private address
    region, ``pc`` its private code region, and ``llc`` the LLC
    capacity in bytes.
    """

    def seg(name: str, weight: float, builder: SpecBuilder) -> SegmentSpec:
        return SegmentSpec(name, weight, builder)

    benchmarks: List[BenchmarkSpec] = []

    def add(name: str, *segments: SegmentSpec) -> None:
        benchmarks.append(BenchmarkSpec(name, tuple(segments)))

    # -- SPEC CPU 2006 integer analogs ---------------------------------
    add(
        "perlbench",
        seg("p0", 0.6, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 0.5, object_size=96), 3.0),
            (_stack(b + (1 << 28), p + 0x100, l), 2.0),
            (_hotcold(b + (1 << 29), p + 0x200, l, 0.1, 2.0, hot_prob=0.8), 1.0),
        ])),
        seg("p1", 0.4, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 1.5, object_size=160), 2.0),
            (_gather(b + (1 << 28), p + 0x300, l, 0.3), 1.0),
        ])),
    )
    add(
        "bzip2",
        seg("p0", 0.7, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 1.3, write_ratio=0.3), 3.0),
            (_hotcold(b + (1 << 29), p + 0x100, l, 0.05, 1.0, hot_prob=0.85), 2.0),
        ])),
        seg("p1", 0.3, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 0.4, stride=64, write_ratio=0.4), 1.0),
        ])),
    )
    add(
        "gcc",
        seg("p0", 0.4, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 2.0, object_size=128,
                      fields=(0, 8, 16, 40, 56)), 4.0),
            (_chase(b + (1 << 29), p + 0x100, l, 0.8, payload_fields=1), 1.5),
            (_stack(b + (1 << 30), p + 0x200, l), 1.0),
        ])),
        seg("p1", 0.35, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 4.0, object_size=192,
                      fields=(0, 24, 48, 88, 120)), 3.0),
            (_scan(b + (1 << 29), p + 0x300, l, 3.0), 1.0),
        ])),
        seg("p2", 0.25, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 0.3, object_size=96), 2.0),
            (_gather(b + (1 << 28), p + 0x400, l, 0.5), 1.0),
        ])),
    )
    add(
        "mcf",
        seg("p0", 0.5, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 2.5, payload_fields=2), 4.0),
            (_thrash(b + (1 << 31), p + 0x100, l, 1.8), 1.5),
        ])),
        seg("p1", 0.5, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 4.0, payload_fields=1), 3.0),
            (_hotcold(b + (1 << 31), p + 0x200, l, 0.2, 4.0, hot_prob=0.5), 2.0),
        ])),
    )
    add(
        "gobmk",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_stack(b, p, l, max_depth_bytes=32 * 1024), 3.0),
            (_hotcold(b + (1 << 28), p + 0x100, l, 0.15, 0.8, hot_prob=0.75), 2.0),
            (_bursty(b + (1 << 29), p + 0x200, l, 0.2), 1.0),
        ])),
    )
    add(
        "hmmer",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 0.2, stride=64), 3.0),
            (_bursty(b + (1 << 28), p + 0x100, l, 0.05, burst_lo=3, burst_hi=8), 2.0),
        ])),
    )
    add(
        "sjeng",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_gather(b, p, l, 2.5, write_ratio=0.2), 2.0),
            (_stack(b + (1 << 28), p + 0x100, l), 2.0),
            (_hotcold(b + (1 << 29), p + 0x200, l, 0.1, 1.5, hot_prob=0.6), 1.0),
        ])),
    )
    add(
        "libquantum",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 8.0, stride=64, write_ratio=0.5,
                   pc_count=2, gap_lo=1, gap_hi=4), 1.0),
        ])),
    )
    add(
        "h264ref",
        seg("p0", 0.6, lambda b, p, l: PhaseSpec([
            (_bursty(b, p, l, 0.6, burst_lo=3, burst_hi=7), 3.0),
            (_scan(b + (1 << 28), p + 0x100, l, 0.8, stride=16), 2.0),
        ])),
        seg("p1", 0.4, lambda b, p, l: PhaseSpec([
            (_bursty(b, p, l, 1.2, burst_lo=2, burst_hi=5), 2.0),
            (_gather(b + (1 << 28), p + 0x200, l, 0.4), 1.0),
        ])),
    )
    add(
        "omnetpp",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 2.0, payload_fields=2, node_size=128), 3.0),
            (_objects(b + (1 << 30), p + 0x100, l, 2.0), 1.5),
            (_thrash(b + (1 << 31), p + 0x200, l, 1.4), 1.0),
        ])),
    )
    add(
        "astar",
        seg("p0", 0.5, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 1.5, payload_fields=1), 3.0),
            (_thrash(b + (1 << 29), p + 0x100, l, 1.2), 1.0),
        ])),
        seg("p1", 0.5, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 2.5), 2.0),
            (_gather(b + (1 << 29), p + 0x200, l, 1.0), 1.0),
        ])),
    )
    add(
        "xalancbmk",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 1.5, payload_fields=3, node_size=96), 3.0),
            (_objects(b + (1 << 29), p + 0x100, l, 1.0, object_size=64,
                      fields=(0, 8, 16, 32)), 2.0),
            (_thrash(b + (1 << 30), p + 0x200, l, 1.3), 1.0),
        ])),
    )

    # -- SPEC CPU 2006 floating-point analogs --------------------------
    add(
        "bwaves",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 6.0, stride=64, pc_count=3), 3.0),
            (_scan(b + (1 << 31), p + 0x100, l, 6.0, stride=128, pc_count=3), 1.0),
        ])),
    )
    add(
        "gamess",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 0.15, stride=64), 3.0),
            (_bursty(b + (1 << 28), p + 0x100, l, 0.05), 1.0),
        ])),
    )
    add(
        "milc",
        seg("p0", 0.6, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 4.0, stride=64, write_ratio=0.4), 2.0),
            (_gather(b + (1 << 31), p + 0x100, l, 3.0), 1.0),
        ])),
        seg("p1", 0.4, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 1.8), 1.0),
        ])),
    )
    add(
        "zeusmp",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 1.9), 2.0),
            (_scan(b + (1 << 30), p + 0x100, l, 0.3, stride=64), 1.0),
        ])),
    )
    add(
        "gromacs",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_hotcold(b, p, l, 0.2, 1.2, hot_prob=0.7), 2.0),
            (_scan(b + (1 << 29), p + 0x100, l, 0.6, stride=32), 1.0),
        ])),
    )
    add(
        "cactusADM",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 2.2, write_ratio=0.35), 3.0),
            (_hotcold(b + (1 << 31), p + 0x100, l, 0.08, 2.0, hot_prob=0.65), 1.0),
        ])),
    )
    add(
        "leslie3d",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 2.8, stride=64), 2.0),
            (_thrash(b + (1 << 30), p + 0x100, l, 1.4, write_ratio=0.5), 1.0),
        ])),
    )
    add(
        "namd",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_hotcold(b, p, l, 0.25, 0.8, hot_prob=0.8), 2.0),
            (_bursty(b + (1 << 28), p + 0x100, l, 0.1), 1.0),
        ])),
    )
    add(
        "dealII",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 1.2, object_size=256,
                      fields=(0, 16, 64, 128, 192)), 2.0),
            (_chase(b + (1 << 30), p + 0x100, l, 0.7), 1.0),
        ])),
    )
    add(
        "soplex",
        seg("p0", 0.5, lambda b, p, l: PhaseSpec([
            (_hotcold(b, p, l, 0.3, 4.0, hot_prob=0.6), 3.0),
            (_thrash(b + (1 << 31), p + 0x100, l, 1.6), 1.5),
        ])),
        seg("p1", 0.5, lambda b, p, l: PhaseSpec([
            (_gather(b, p, l, 1.6, write_ratio=0.1), 2.0),
            (_thrash(b + (1 << 31), p + 0x200, l, 1.3), 1.0),
        ])),
    )
    add(
        "povray",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_stack(b, p, l, max_depth_bytes=24 * 1024), 2.0),
            (_hotcold(b + (1 << 28), p + 0x100, l, 0.12, 0.5, hot_prob=0.85), 2.0),
        ])),
    )
    add(
        "calculix",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 0.8, stride=64), 2.0),
            (_gather(b + (1 << 29), p + 0x100, l, 0.6), 1.0),
        ])),
    )
    add(
        "GemsFDTD",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 4.5, stride=64), 2.0),
            (_thrash(b + (1 << 31), p + 0x100, l, 1.7), 1.0),
        ])),
    )
    add(
        "tonto",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_objects(b, p, l, 0.6, object_size=192), 2.0),
            (_bursty(b + (1 << 28), p + 0x100, l, 0.15), 1.0),
        ])),
    )
    add(
        "lbm",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 7.0, stride=64, write_ratio=0.5,
                   pc_count=2, gap_lo=1, gap_hi=3), 1.0),
        ])),
    )
    add(
        "wrf",
        seg("p0", 0.6, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 1.5), 2.0),
            (_hotcold(b + (1 << 30), p + 0x100, l, 0.15, 1.5, hot_prob=0.7), 1.0),
        ])),
        seg("p1", 0.4, lambda b, p, l: PhaseSpec([
            (_scan(b, p, l, 2.4, stride=128), 1.0),
            (_objects(b + (1 << 30), p + 0x200, l, 0.8), 1.0),
        ])),
    )
    add(
        "sphinx3",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_hotcold(b, p, l, 0.35, 3.0, hot_prob=0.55), 2.0),
            (_thrash(b + (1 << 31), p + 0x100, l, 1.3), 1.5),
        ])),
    )

    # -- CloudSuite analogs ---------------------------------------------
    add(
        "data_caching",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_hotcold(b, p, l, 0.5, 12.0, hot_prob=0.65,
                      write_ratio=0.15), 3.0),
            (_gather(b + (1 << 32), p + 0x100, l, 8.0), 1.0),
        ])),
    )
    add(
        "graph_analytics",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 3.0, payload_fields=1), 2.0),
            (_thrash(b + (1 << 32), p + 0x100, l, 2.0), 1.5),
            (_gather(b + (1 << 33), p + 0x200, l, 4.0), 1.0),
        ])),
    )
    add(
        "sat_solver",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_chase(b, p, l, 2.0, payload_fields=2), 2.0),
            (_hotcold(b + (1 << 31), p + 0x100, l, 0.2, 5.0, hot_prob=0.6), 2.0),
            (_stack(b + (1 << 32), p + 0x200, l), 1.0),
        ])),
    )
    add(
        "mlpack_cf",
        seg("p0", 1.0, lambda b, p, l: PhaseSpec([
            (_thrash(b, p, l, 1.6), 2.0),
            (_gather(b + (1 << 31), p + 0x100, l, 1.5), 1.5),
            (_hotcold(b + (1 << 32), p + 0x200, l, 0.1, 1.0, hot_prob=0.7), 1.0),
        ])),
    )

    return benchmarks


_SUITE: List[BenchmarkSpec] = _suite()
_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in _SUITE}


def benchmark_names() -> List[str]:
    """Names of all 33 benchmarks, in suite order."""
    return [spec.name for spec in _SUITE]


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; see benchmark_names()") from None


def segment_names(name: str) -> List[str]:
    """Qualified segment names (``bench.pN``) without building traces.

    The graph planner enumerates a cell's Stage-1 artifact nodes from
    these — the names are static registry data, so planning never pays
    trace synthesis.  Must mirror the names ``build_segments`` gives
    the materialized segments.
    """
    return [f"{name}.{seg.name}" for seg in get_benchmark(name).segments]


def build_segments(
    name: str, llc_bytes: int, accesses: int, seed: int = 2017
) -> List[Segment]:
    """Materialize a benchmark's weighted segments as traces."""
    spec = get_benchmark(name)
    index = benchmark_names().index(name)
    base = (index + 1) << 40
    pc_base = 0x400000 + index * 0x40000
    segments: List[Segment] = []
    for si, seg_spec in enumerate(spec.segments):
        phase = seg_spec.builder(base, pc_base, llc_bytes)
        tuples = compose(phase, accesses, seed ^ (index * 131 + si * 17))
        trace = Trace.from_accesses(f"{name}.{seg_spec.name}", tuples)
        segments.append(Segment(f"{name}.{seg_spec.name}", trace, seg_spec.weight))
    return segments


def build_suite(
    llc_bytes: int, accesses: int, seed: int = 2017, names: Sequence[str] = ()
) -> Dict[str, List[Segment]]:
    """Materialize the whole suite (or a named subset)."""
    selected = list(names) if names else benchmark_names()
    return {
        name: build_segments(name, llc_bytes, accesses, seed) for name in selected
    }


def all_segments(
    llc_bytes: int, accesses: int, seed: int = 2017, names: Sequence[str] = ()
) -> List[Segment]:
    """Flatten the suite into the paper's '99 segments' analog."""
    suite = build_suite(llc_bytes, accesses, seed, names)
    return [segment for name in sorted(suite) for segment in suite[name]]
