"""Composable synthetic access-pattern kernels.

The paper evaluates on SPEC CPU 2006, CloudSuite, and mlpack traces
(Section 4.2), which are unavailable here.  Instead, workloads are
composed from the kernels below, each of which isolates one of the
locality behaviors the paper's seven feature families key on
(Section 3.2):

* ``RegionScan`` — streaming or looping over a region; dead-on-arrival
  blocks when the region exceeds the LLC (pc / bias features).
* ``PointerChase`` — permutation chasing with reuse distance equal to
  the node count (address / bias features).
* ``HotCold`` — a small hot set embedded in a large cold region
  (address feature, hot/cold set pressure for lastmiss).
* ``ObjectWalk`` — per-object field dereferencing with field-specific
  PCs and offsets (offset feature; gcc-style behavior, Section 6.4).
* ``BurstyAccess`` — repeated back-to-back touches of an MRU block
  (burst feature).
* ``GatherScatter`` — uniform random access (stress, low locality).
* ``StackChurn`` — LIFO push/pop reuse with writes (insert feature:
  newly inserted blocks behave differently from re-referenced ones).

Every kernel is a factory of generators yielding
``(pc, address, is_write, gap)`` tuples; composition and determinism
are handled by :func:`compose` and :class:`PhaseSpec`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

AccessTuple = Tuple[int, int, bool, int]
KernelStream = Iterator[AccessTuple]
KernelFactory = Callable[[random.Random], KernelStream]

BLOCK = 64


def _pcs(base: int, count: int) -> List[int]:
    """A bank of distinct, 4-byte-aligned instruction addresses."""
    return [base + 4 * i for i in range(count)]


@dataclass(frozen=True)
class RegionScan:
    """Repeatedly scan ``size`` bytes from ``base`` with ``stride``.

    With ``size`` much larger than the LLC every block is dead on
    arrival; with ``size`` below LLC capacity every block is live.
    """

    base: int
    size: int
    stride: int = 16  # word-granular: several touches per 64 B block
    pc_base: int = 0x400000
    pc_count: int = 4
    write_ratio: float = 0.1
    gap_lo: int = 2
    gap_hi: int = 8

    def __call__(self, rng: random.Random) -> KernelStream:
        pcs = _pcs(self.pc_base, self.pc_count)
        offset = rng.randrange(0, max(1, self.size // self.stride)) * self.stride
        randrange = rng.randrange
        random01 = rng.random
        size, stride, base = self.size, self.stride, self.base
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        write_ratio = self.write_ratio
        pc_count = len(pcs)
        i = 0
        while True:
            addr = base + (offset % size)
            pc = pcs[i % pc_count]
            yield pc, addr, random01() < write_ratio, randrange(gap_lo, gap_hi)
            offset += stride
            i += 1


@dataclass(frozen=True)
class PointerChase:
    """Chase a fixed random permutation of ``nodes`` node headers."""

    base: int
    nodes: int
    node_size: int = 64
    pc_base: int = 0x410000
    payload_fields: int = 0
    gap_lo: int = 4
    gap_hi: int = 12

    def __call__(self, rng: random.Random) -> KernelStream:
        order = list(range(self.nodes))
        perm_rng = random.Random(0xC0FFEE ^ self.base)
        perm_rng.shuffle(order)
        next_node = {order[i]: order[(i + 1) % self.nodes] for i in range(self.nodes)}
        pcs = _pcs(self.pc_base, 1 + self.payload_fields)
        randrange = rng.randrange
        base, node_size = self.base, self.node_size
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        node = order[0]
        while True:
            # The header load is address-dependent on the previous
            # header load — the defining serialization of pointer
            # chasing, which caps its memory-level parallelism at 1.
            yield (pcs[0], base + node * node_size, False,
                   randrange(gap_lo, gap_hi), True)
            for f in range(self.payload_fields):
                yield (
                    pcs[1 + f],
                    base + node * node_size + 8 * (f + 1),
                    False,
                    randrange(gap_lo, gap_hi),
                )
            node = next_node[node]


@dataclass(frozen=True)
class ShuffledLoop:
    """Cyclic loop over a fixed *shuffled* order of blocks.

    The canonical irregular working set (mcf-style): every pass touches
    the same blocks in the same shuffled order, so the reuse distance
    of every block equals the loop size, LRU hits nothing when the loop
    exceeds the cache, and a stream prefetcher sees no sequential
    pattern to latch onto.  Belady's MIN — and a good reuse predictor
    driving bypass — pins a subset of the loop and hits on it every
    pass.
    """

    base: int
    size: int
    pc_base: int = 0x470000
    pc_count: int = 4
    write_ratio: float = 0.05
    touches_per_block: int = 2
    gap_lo: int = 2
    gap_hi: int = 8

    def __call__(self, rng: random.Random) -> KernelStream:
        blocks = max(2, self.size // BLOCK)
        order = list(range(blocks))
        random.Random(0x5EED ^ self.base).shuffle(order)
        pcs = _pcs(self.pc_base, self.pc_count)
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        cursor = rng.randrange(blocks)
        while True:
            block_base = self.base + order[cursor % blocks] * BLOCK
            cursor += 1
            for t in range(1 + randrange(self.touches_per_block)):
                yield (
                    pcs[(cursor + t) % self.pc_count],
                    block_base + randrange(8) * 8,
                    random01() < self.write_ratio,
                    randrange(gap_lo, gap_hi),
                )


@dataclass(frozen=True)
class HotCold:
    """Mix accesses between a small hot region and a large cold region."""

    hot_base: int
    hot_size: int
    cold_base: int
    cold_size: int
    hot_prob: float = 0.7
    pc_base: int = 0x420000
    write_ratio: float = 0.05
    gap_lo: int = 2
    gap_hi: int = 10

    def __call__(self, rng: random.Random) -> KernelStream:
        hot_blocks = max(1, self.hot_size // BLOCK)
        cold_blocks = max(1, self.cold_size // BLOCK)
        pcs = _pcs(self.pc_base, 2)
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        cold_cursor = 0
        while True:
            if random01() < self.hot_prob:
                block_base = self.hot_base + randrange(hot_blocks) * BLOCK
                # Hot data is used, not just touched: a few word reads.
                for _ in range(1 + randrange(2)):
                    yield (
                        pcs[0],
                        block_base + randrange(8) * 8,
                        random01() < self.write_ratio,
                        randrange(gap_lo, gap_hi),
                    )
            else:
                # The cold region is scanned, not random: cold blocks are
                # touched once and never again, a canonical dead pattern.
                addr = self.cold_base + (cold_cursor % cold_blocks) * BLOCK
                cold_cursor += 1
                yield (pcs[1], addr, random01() < self.write_ratio,
                       randrange(gap_lo, gap_hi))


@dataclass(frozen=True)
class ObjectWalk:
    """Visit objects and dereference several fields of each.

    Field accesses use field-specific PCs and block offsets, the
    behavior the paper attributes to gcc's heavy field dereferencing
    when explaining the value of the ``offset`` feature (Section 6.4).
    """

    base: int
    objects: int
    object_size: int = 128
    fields: Sequence[int] = (0, 8, 24, 48, 72)
    pc_base: int = 0x430000
    hot_fraction: float = 0.2
    hot_prob: float = 0.6
    write_ratio: float = 0.15
    gap_lo: int = 1
    gap_hi: int = 6

    def __call__(self, rng: random.Random) -> KernelStream:
        pcs = _pcs(self.pc_base, len(self.fields))
        hot_objects = max(1, int(self.objects * self.hot_fraction))
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        while True:
            if random01() < self.hot_prob:
                obj = randrange(hot_objects)
            else:
                obj = randrange(self.objects)
            obj_base = self.base + obj * self.object_size
            nfields = 1 + randrange(len(self.fields))
            for f in range(nfields):
                yield (
                    pcs[f],
                    obj_base + self.fields[f],
                    random01() < self.write_ratio,
                    randrange(gap_lo, gap_hi),
                )


@dataclass(frozen=True)
class BurstyAccess:
    """Touch one block several times in a row before moving on.

    Back-to-back accesses to the MRU block are exactly the signal the
    ``burst`` feature captures (cache bursts, Section 3.2).
    """

    base: int
    blocks: int
    burst_lo: int = 2
    burst_hi: int = 6
    pc_base: int = 0x440000
    revisit_prob: float = 0.3
    gap_lo: int = 1
    gap_hi: int = 4

    def __call__(self, rng: random.Random) -> KernelStream:
        pcs = _pcs(self.pc_base, 3)
        recent: List[int] = []
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        while True:
            if recent and random01() < self.revisit_prob:
                blk = recent[randrange(len(recent))]
            else:
                blk = randrange(self.blocks)
            recent.append(blk)
            if len(recent) > 16:
                recent.pop(0)
            addr = self.base + blk * BLOCK
            for i in range(randrange(self.burst_lo, self.burst_hi + 1)):
                yield (
                    pcs[min(i, 2)],
                    addr + 8 * i,
                    False,
                    randrange(gap_lo, gap_hi),
                )


@dataclass(frozen=True)
class GatherScatter:
    """Uniform random accesses over a region (worst-case locality)."""

    base: int
    size: int
    pc_base: int = 0x450000
    write_ratio: float = 0.3
    gap_lo: int = 3
    gap_hi: int = 9

    def __call__(self, rng: random.Random) -> KernelStream:
        blocks = max(1, self.size // BLOCK)
        pcs = _pcs(self.pc_base, 2)
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        while True:
            block_base = self.base + randrange(blocks) * BLOCK
            # Real gathers touch a couple of words of the fetched block.
            for _ in range(1 + randrange(3)):
                addr = block_base + randrange(8) * 8
                write = random01() < self.write_ratio
                yield pcs[int(write)], addr, write, randrange(gap_lo, gap_hi)


@dataclass(frozen=True)
class StackChurn:
    """LIFO push/pop traffic: writes on push, reads on pop.

    Freshly inserted blocks are reused almost immediately and then die,
    giving the ``insert`` feature a clean signal.
    """

    base: int
    max_depth_bytes: int = 16 * 1024
    frame_bytes: int = 192
    pc_base: int = 0x460000
    gap_lo: int = 1
    gap_hi: int = 5

    def __call__(self, rng: random.Random) -> KernelStream:
        pcs = _pcs(self.pc_base, 2)
        max_frames = max(2, self.max_depth_bytes // self.frame_bytes)
        randrange = rng.randrange
        random01 = rng.random
        gap_lo, gap_hi = self.gap_lo, self.gap_hi + 1
        depth = 1
        while True:
            if depth <= 1 or (depth < max_frames and random01() < 0.55):
                addr = self.base + depth * self.frame_bytes
                yield pcs[0], addr, True, randrange(gap_lo, gap_hi)
                depth += 1
            else:
                depth -= 1
                addr = self.base + depth * self.frame_bytes
                yield pcs[1], addr, False, randrange(gap_lo, gap_hi)


@dataclass(frozen=True)
class PhaseSpec:
    """A weighted mixture of kernels, interleaved in short runs.

    ``run_length`` accesses are drawn from one kernel before another is
    (re)selected, producing the phase-local behavior real programs show
    rather than a per-access shuffle.
    """

    kernels: Sequence[Tuple[KernelFactory, float]]
    run_length: int = 48

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("PhaseSpec needs at least one kernel")
        if any(w <= 0 for _, w in self.kernels):
            raise ValueError("kernel weights must be positive")


def compose(spec: PhaseSpec, count: int, seed: int) -> List[AccessTuple]:
    """Materialize ``count`` accesses from a phase specification."""
    rng = random.Random(seed)
    streams = [factory(random.Random(seed ^ (0x9E37 + 31 * i))) for i, (factory, _) in enumerate(spec.kernels)]
    weights = [w for _, w in spec.kernels]
    out: List[AccessTuple] = []
    append = out.append
    run_length = spec.run_length
    if len(streams) == 1:
        stream = streams[0]
        for _ in range(count):
            append(next(stream))
        return out
    choices = rng.choices
    indices = list(range(len(streams)))
    produced = 0
    while produced < count:
        stream = streams[choices(indices, weights)[0]]
        take = min(run_length, count - produced)
        for _ in range(take):
            append(next(stream))
        produced += take
    return out
