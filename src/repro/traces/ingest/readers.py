"""Streaming readers for real trace formats.

Three on-disk formats decode to the one in-memory record shape the
:class:`~repro.traces.trace.Trace` constructor already takes —
``(pc, address, is_write, gap, depends)`` tuples:

* ``champsim`` — fixed 24-byte little-endian binary records
  (``pc:u64  addr:u64  gap:u32  flags:u8  pad:3``; flag bit 0 = store,
  bit 1 = address-dependent load), the shape ChampSim-style tracers
  emit;
* ``text`` — whitespace-separated ``pc addr r/w [gap] [dep]`` lines
  (hex with ``0x`` prefix or decimal; ``#`` comments and blank lines
  skipped), the lowest-common-denominator dump format;
* ``csv`` — header-driven columns ``pc``, ``addr``/``address``,
  ``is_write``/``write``/``rw``, optional ``gap`` and ``dep``, the
  shape instrumentation passes and pandas pipelines produce.

Every format is transparently gzip-decompressed (sniffed from the
``1f 8b`` magic, never from the extension).  Readers are *streaming*:
they pull bounded byte ranges through a counting raw-file wrapper and
yield records one at a time, so peak resident decode state is bounded
by the chunk size regardless of file size — the property the ingest
tests pin.  Any malformed input (torn gzip member, short binary
record, unparseable line) raises a one-line
:class:`~repro.exec.faults.ConfigError` naming the file and offset.
"""

from __future__ import annotations

import csv
import gzip
import io
import struct
from typing import IO, Iterator, Protocol, Tuple

from repro.exec.faults import ConfigError

Record = Tuple[int, int, bool, int, bool]

#: default decode chunk, in records — bounds resident decode state,
#: never the result (chunking is invisible in every hash).
DEFAULT_CHUNK = 65536

_GZIP_MAGIC = b"\x1f\x8b"

#: champsim-style record: pc u64, addr u64, gap u32, flags u8, 3 pad.
_CHAMPSIM_STRUCT = struct.Struct("<QQIB3x")
CHAMPSIM_RECORD_SIZE = _CHAMPSIM_STRUCT.size
_CF_WRITE = 1
_CF_DEP = 2


class TraceSource(Protocol):
    """A streaming decoder for one on-disk trace file."""

    path: str
    format: str

    def records(self) -> Iterator[Record]:
        """Yield decoded records; resident state stays chunk-bounded."""
        ...

    def bytes_read(self) -> int:
        """Raw file bytes consumed so far (compressed size for .gz)."""
        ...


class _CountingFile(io.RawIOBase):
    """Raw-file wrapper counting bytes actually read from disk.

    Sits *below* any gzip layer, so the count reflects file-level I/O:
    the streaming tests assert a windowed decode never reads the whole
    file, and the throughput bench reports true input bandwidth.
    """

    def __init__(self, raw: IO[bytes]) -> None:
        self.raw = raw
        self.count = 0

    def readable(self) -> bool:
        return True

    def readinto(self, buffer) -> int:
        data = self.raw.read(len(buffer))
        buffer[: len(data)] = data
        self.count += len(data)
        return len(data)

    def close(self) -> None:
        self.raw.close()
        super().close()


class _BaseSource:
    format = ""

    def __init__(self, path: str, chunk: int = DEFAULT_CHUNK) -> None:
        if chunk <= 0:
            raise ConfigError(f"trace chunk size must be positive, got {chunk}")
        self.path = path
        self.chunk = chunk
        self._counter: _CountingFile | None = None

    def bytes_read(self) -> int:
        return self._counter.count if self._counter is not None else 0

    def _open(self) -> IO[bytes]:
        """Open the file, gzip-transparently, behind the byte counter."""
        try:
            raw = open(self.path, "rb")
        except OSError as exc:
            raise ConfigError(f"cannot open trace file: {exc}") from None
        self._counter = _CountingFile(raw)
        buffered = io.BufferedReader(self._counter, buffer_size=1 << 16)
        if buffered.peek(2)[:2] == _GZIP_MAGIC:
            return gzip.GzipFile(fileobj=buffered, mode="rb")  # type: ignore[return-value]
        return buffered

    def _fail(self, detail: str) -> ConfigError:
        return ConfigError(f"{self.path}: {detail}")

    def records(self) -> Iterator[Record]:
        stream = self._open()
        try:
            yield from self._decode(stream)
        except (EOFError, gzip.BadGzipFile) as exc:
            raise self._fail(f"corrupt gzip stream ({exc})") from None
        except OSError as exc:
            raise self._fail(f"read error ({exc})") from None
        finally:
            stream.close()

    def _decode(self, stream: IO[bytes]) -> Iterator[Record]:
        raise NotImplementedError


class ChampsimSource(_BaseSource):
    """Fixed-width binary records, decoded one chunk of records a time."""

    format = "champsim"

    def _decode(self, stream: IO[bytes]) -> Iterator[Record]:
        record_size = CHAMPSIM_RECORD_SIZE
        offset = 0
        while True:
            buffer = stream.read(self.chunk * record_size)
            if not buffer:
                return
            tail = len(buffer) % record_size
            if tail:
                raise self._fail(
                    f"short binary record at byte {offset + len(buffer) - tail}"
                    f" ({tail} trailing bytes, record size {record_size})"
                )
            for pc, addr, gap, flags in _CHAMPSIM_STRUCT.iter_unpack(buffer):
                yield (pc, addr, bool(flags & _CF_WRITE), gap,
                       bool(flags & _CF_DEP))
            offset += len(buffer)


def _parse_int(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token, 10)


_RW = {"r": False, "w": True, "R": False, "W": True}


class TextSource(_BaseSource):
    """``pc addr r/w [gap] [dep]`` lines; ``#`` comments and blanks skip."""

    format = "text"

    def _decode(self, stream: IO[bytes]) -> Iterator[Record]:
        text = io.TextIOWrapper(stream, encoding="utf-8", errors="strict")
        for lineno, line in enumerate(text, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            fields = body.split()
            if not 3 <= len(fields) <= 5:
                raise self._fail(
                    f"line {lineno}: expected 'pc addr r/w [gap] [dep]', "
                    f"got {len(fields)} fields"
                )
            try:
                pc = _parse_int(fields[0])
                addr = _parse_int(fields[1])
                write = _RW[fields[2]]
                gap = _parse_int(fields[3]) if len(fields) > 3 else 0
                dep = bool(_parse_int(fields[4])) if len(fields) > 4 else False
            except (ValueError, KeyError):
                raise self._fail(f"line {lineno}: malformed record "
                                 f"{body!r}") from None
            if gap < 0:
                raise self._fail(f"line {lineno}: negative instruction gap")
            yield (pc, addr, write, gap, dep)


_CSV_PC = ("pc",)
_CSV_ADDR = ("addr", "address")
_CSV_WRITE = ("is_write", "write", "rw")
_CSV_GAP = ("gap",)
_CSV_DEP = ("dep", "depends")

_WRITE_TOKENS = {"1": True, "0": False, "true": True, "false": False,
                 "w": True, "r": False}


class CsvSource(_BaseSource):
    """Header-driven CSV (instrumentation-dump style)."""

    format = "csv"

    @staticmethod
    def _column(header: list, names: Tuple[str, ...]) -> int:
        for name in names:
            if name in header:
                return header.index(name)
        return -1

    def _decode(self, stream: IO[bytes]) -> Iterator[Record]:
        text = io.TextIOWrapper(stream, encoding="utf-8", errors="strict",
                                newline="")
        reader = csv.reader(text)
        try:
            header = [cell.strip().lower() for cell in next(reader)]
        except StopIteration:
            raise self._fail("empty CSV trace (missing header)") from None
        pc_col = self._column(header, _CSV_PC)
        addr_col = self._column(header, _CSV_ADDR)
        write_col = self._column(header, _CSV_WRITE)
        if min(pc_col, addr_col, write_col) < 0:
            raise self._fail(
                f"CSV header must name pc, addr, and is_write columns, "
                f"got {header}"
            )
        gap_col = self._column(header, _CSV_GAP)
        dep_col = self._column(header, _CSV_DEP)
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                pc = _parse_int(row[pc_col].strip())
                addr = _parse_int(row[addr_col].strip())
                write = _WRITE_TOKENS[row[write_col].strip().lower()]
                gap = _parse_int(row[gap_col].strip()) if gap_col >= 0 else 0
                dep = (bool(_parse_int(row[dep_col].strip()))
                       if dep_col >= 0 else False)
            except (ValueError, KeyError, IndexError):
                raise self._fail(f"line {lineno}: malformed CSV record "
                                 f"{row!r}") from None
            if gap < 0:
                raise self._fail(f"line {lineno}: negative instruction gap")
            yield (pc, addr, write, gap, dep)


_SOURCES = {
    "champsim": ChampsimSource,
    "text": TextSource,
    "csv": CsvSource,
}

FORMATS = tuple(sorted(_SOURCES))

_SUFFIXES = {
    ".bin": "champsim",
    ".champsim": "champsim",
    ".champsimtrace": "champsim",
    ".csv": "csv",
    ".txt": "text",
    ".trace": "text",
    ".out": "text",
}


def detect_format(path: str) -> str:
    """Infer the trace format from the file name (``.gz`` stripped)."""
    name = path.lower()
    if name.endswith(".gz"):
        name = name[:-3]
    for suffix, fmt in _SUFFIXES.items():
        if name.endswith(suffix):
            return fmt
    raise ConfigError(
        f"cannot infer trace format of {path!r}; "
        f"pass --trace-format ({', '.join(FORMATS)})"
    )


def open_source(path: str, fmt: str,
                chunk: int = DEFAULT_CHUNK) -> TraceSource:
    """Build the streaming reader for one (path, format) pair."""
    try:
        source_cls = _SOURCES[fmt]
    except KeyError:
        raise ConfigError(
            f"unknown trace format {fmt!r} (expected one of "
            f"{', '.join(FORMATS)})"
        ) from None
    return source_cls(path, chunk=chunk)
