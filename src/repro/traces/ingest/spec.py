"""Ingested-workload recipes: digests, windowing, segment weights.

An :class:`IngestSpec` is to a real trace file what the synthetic
registry entry is to a generated benchmark: a small frozen recipe that
travels inside execution cells, keys the artifact/result caches, and
can rebuild its segments in any worker process.  Two deliberate
asymmetries versus the synthetic path:

* **Content digest, not path, in every key.**  ``payload()`` hashes
  the file's SHA-256 plus the decode/window recipe — never the path —
  so renaming or copying a trace keeps every cached artifact valid,
  and two hosts with the same file share results through the shared
  store tier.  The digest is computed once per file and persisted in a
  ``<file>.repro-digest.json`` sidecar (revalidated by size+mtime), so
  repeated runs never re-hash a multi-GB trace.

* **Chunk size is not keyed.**  ``chunk`` bounds resident decode
  state; it must never change results, and the determinism suite pins
  bit-identical hashes across chunk sizes.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.faults import ConfigError
from repro.traces.ingest.readers import (
    DEFAULT_CHUNK,
    detect_format,
    open_source,
)
from repro.traces.trace import Segment, Trace

_SIDECAR_SUFFIX = ".repro-digest.json"
_SIDECAR_SCHEMA = 1
_DIGEST_BLOCK = 1 << 20


def trace_digest(path: str) -> str:
    """SHA-256 of the file, streamed; cached in a sidecar next to it.

    The sidecar records (size, mtime_ns, sha256) and is reused while
    both stat fields still match; writing it is best-effort so
    read-only trace directories still work (they just re-hash).
    """
    try:
        stat = os.stat(path)
    except OSError as exc:
        raise ConfigError(f"cannot stat trace file: {exc}") from None
    sidecar = path + _SIDECAR_SUFFIX
    try:
        with open(sidecar, "r", encoding="utf-8") as handle:
            cached = json.load(handle)
        if (cached.get("schema") == _SIDECAR_SCHEMA
                and cached.get("size") == stat.st_size
                and cached.get("mtime_ns") == stat.st_mtime_ns
                and isinstance(cached.get("sha256"), str)):
            return cached["sha256"]
    except (OSError, ValueError, TypeError):
        pass
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_DIGEST_BLOCK)
            if not block:
                break
            digest.update(block)
    hexdigest = digest.hexdigest()
    try:
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump({"schema": _SIDECAR_SCHEMA, "size": stat.st_size,
                       "mtime_ns": stat.st_mtime_ns, "sha256": hexdigest},
                      handle)
    except OSError:
        pass
    return hexdigest


def _workload_name(path: str) -> str:
    """Derive a workload name from the file name.

    Segment names are ``<workload>.<segment>`` everywhere (the mix
    builder and graph planner split on the first dot), so dots and
    other separators collapse to ``-``.
    """
    stem = os.path.basename(path)
    for suffix in (".gz", ".bin", ".champsim", ".champsimtrace", ".csv",
                   ".txt", ".trace", ".out"):
        if stem.lower().endswith(suffix):
            stem = stem[: -len(suffix)]
    name = re.sub(r"[^A-Za-z0-9_-]+", "-", stem).strip("-_")
    if not name:
        raise ConfigError(
            f"cannot derive a workload name from {path!r}; pass --trace-name"
        )
    return name


@dataclass(frozen=True)
class IngestSpec:
    """Recipe for one ingested workload: file digest + decode window.

    ``skip`` records are discarded (warmup), then ``segments`` windows
    of ``accesses`` records each become weighted
    :class:`~repro.traces.trace.Segment` objects (SimPoint-style;
    ``weights`` empty means equal weights).  ``path`` and ``chunk``
    are carried for execution but excluded from ``payload()``.
    """

    path: str
    format: str
    digest: str
    name: str
    skip: int = 0
    accesses: int = 4_000
    segments: int = 1
    weights: Tuple[float, ...] = ()
    chunk: int = DEFAULT_CHUNK

    def __post_init__(self) -> None:
        if "." in self.name or not self.name:
            raise ConfigError(
                f"ingested workload name {self.name!r} must be non-empty "
                f"and dot-free"
            )
        if self.skip < 0:
            raise ConfigError("--trace-skip must be non-negative")
        if self.accesses <= 0:
            raise ConfigError("--trace-accesses must be positive")
        if self.segments <= 0:
            raise ConfigError("--trace-segments must be positive")
        if self.weights and len(self.weights) != self.segments:
            raise ConfigError(
                f"--trace-weights needs {self.segments} values "
                f"(one per segment), got {len(self.weights)}"
            )
        if any(weight <= 0 for weight in self.weights):
            raise ConfigError("--trace-weights must all be positive")

    # -- keys --------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Cache-key form: content digest + window recipe, no path/chunk."""
        return {
            "digest": self.digest,
            "format": self.format,
            "skip": self.skip,
            "accesses": self.accesses,
            "segments": self.segments,
            "weights": list(self.weights),
        }

    def segment_names(self) -> List[str]:
        """Static segment names (no file I/O) for the graph planner."""
        return [f"{self.name}.s{i}" for i in range(self.segments)]

    def segment_weights(self) -> Tuple[float, ...]:
        if self.weights:
            return self.weights
        return tuple([1.0 / self.segments] * self.segments)

    # -- materialization ---------------------------------------------------

    def build(self) -> List[Segment]:
        """Stream-decode the measured window into weighted segments.

        Reads exactly ``skip + segments * accesses`` records and stops
        — on a multi-GB trace the file is never fully read, let alone
        materialized (the streaming test asserts both via the source's
        byte counter).
        """
        source = open_source(self.path, self.format, chunk=self.chunk)
        names = self.segment_names()
        weights = self.segment_weights()
        segments: List[Segment] = []
        window: List[Tuple[int, int, bool, int, bool]] = []
        skipped = 0
        iterator = source.records()
        for record in iterator:
            if skipped < self.skip:
                skipped += 1
                continue
            window.append(record)
            if len(window) == self.accesses:
                index = len(segments)
                trace = Trace.from_accesses(names[index], window)
                segments.append(Segment(names[index], trace, weights[index]))
                window = []
                if len(segments) == self.segments:
                    break
        iterator.close()
        if len(segments) < self.segments:
            total = self.skip + self.segments * self.accesses
            got = skipped + len(segments) * self.accesses + len(window)
            raise ConfigError(
                f"{self.path}: trace too short — window needs {total} "
                f"records (skip={self.skip}, {self.segments}x"
                f"{self.accesses}), file has {got}"
            )
        return segments


def parse_weights(text: str) -> Tuple[float, ...]:
    """Parse a ``w1,w2,...`` flag/env value into a weight tuple."""
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ConfigError(f"malformed --trace-weights {text!r}; "
                          f"expected comma-separated numbers") from None


def resolve_ingest(
    path: str,
    fmt: Optional[str] = None,
    name: Optional[str] = None,
    skip: int = 0,
    accesses: int = 4_000,
    segments: int = 1,
    weights: Sequence[float] = (),
    chunk: int = DEFAULT_CHUNK,
    reserved: Sequence[str] = (),
) -> IngestSpec:
    """Build an :class:`IngestSpec` from CLI/env inputs.

    Computes (or revalidates) the content digest here, exactly once per
    invocation, so every downstream cache key is ready before any cell
    is scheduled.  ``reserved`` guards collisions with the synthetic
    benchmark registry.
    """
    resolved_format = fmt or detect_format(path)
    resolved_name = name if name is not None else _workload_name(path)
    if resolved_name in reserved:
        raise ConfigError(
            f"ingested workload name {resolved_name!r} collides with a "
            f"synthetic benchmark; pass --trace-name"
        )
    digest = trace_digest(path)
    return IngestSpec(
        path=os.path.abspath(path),
        format=resolved_format,
        digest=digest,
        name=resolved_name,
        skip=skip,
        accesses=accesses,
        segments=segments,
        weights=tuple(weights),
        chunk=chunk,
    )
