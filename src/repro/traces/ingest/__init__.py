"""Streaming real-trace ingestion (DESIGN.md §17).

Reads real trace formats — ChampSim-style binary records, gzip'd
plain-text address streams, and CSV instrumentation dumps — through a
common :class:`TraceSource` protocol that yields bounded-size record
chunks, so multi-GB traces never fully materialize.  ``IngestSpec``
carries the windowing recipe (skip / per-segment accesses / SimPoint
weights) plus a content digest, and plugs into the existing
trace/Stage-1 artifact keys unchanged.
"""

from repro.traces.ingest.readers import (
    DEFAULT_CHUNK,
    FORMATS,
    TraceSource,
    detect_format,
    open_source,
)
from repro.traces.ingest.spec import (
    IngestSpec,
    parse_weights,
    resolve_ingest,
    trace_digest,
)

__all__ = [
    "DEFAULT_CHUNK",
    "FORMATS",
    "TraceSource",
    "detect_format",
    "open_source",
    "IngestSpec",
    "parse_weights",
    "resolve_ingest",
    "trace_digest",
]
