"""``repro.obs`` — zero-dependency observability for the run pipeline.

Three pieces, all stdlib-only:

* :mod:`repro.obs.spans` — nestable wall-clock spans (``trace-gen``,
  ``stage1``, ``stage2``, ``stage3-timing``, per-cell compute).
* :mod:`repro.obs.metrics` — named counters and fixed-bucket
  histograms fed from the simulators' aggregate stats.
* :mod:`repro.obs.events` — the per-run ``events.jsonl`` sink and its
  reader, consumed by ``repro.cli stats``.

This module is the switchboard.  Instrumentation sites call the
module-level helpers (:func:`span`, :func:`inc`, :func:`histogram`)
unconditionally; when telemetry is off — the default — each helper is
a global load plus an ``is None`` test, cheap enough that the perf
harness gates the disabled path below 2% of a Stage-2 replay.

Telemetry is *observational only*: nothing here reads the ``random``
module or mutates simulator state, so the pinned hashes in
``tests/test_determinism.py`` hold with telemetry on or off.

Process model: the parent enables a context for the whole drive;
each cell computation (parent or worker process) runs under its own
:func:`capture` scope, and worker payloads travel back attached to
cell results.  Serial and parallel drives therefore produce the same
per-cell span *sets* — only the timings differ.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, Span, SpanCollector

__all__ = [
    "TelemetryContext",
    "capture",
    "disable",
    "enable",
    "enabled",
    "histogram",
    "inc",
    "inc_many",
    "span",
    "telemetry_default",
]


class TelemetryContext:
    """One span collector plus one metrics registry."""

    __slots__ = ("collector", "metrics")

    def __init__(self) -> None:
        self.collector = SpanCollector()
        self.metrics = MetricsRegistry()

    def payload(self) -> Dict[str, Any]:
        """Pickle/JSON-safe snapshot for shipping across processes."""
        snapshot = self.metrics.payload()
        snapshot["spans"] = [r.to_dict() for r in self.collector.snapshot()]
        return snapshot


# The active context, or None when telemetry is off.  Module-global on
# purpose: instrumentation sits in per-access hot paths and cannot
# afford to thread a handle through every signature.
_CONTEXT: Optional[TelemetryContext] = None


def enabled() -> bool:
    return _CONTEXT is not None


def enable() -> TelemetryContext:
    """Install (or return) the active context."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = TelemetryContext()
    return _CONTEXT


def disable() -> None:
    global _CONTEXT
    _CONTEXT = None


def current() -> Optional[TelemetryContext]:
    return _CONTEXT


def span(name: str):
    """A context manager timing ``name``; free no-op when disabled."""
    ctx = _CONTEXT
    if ctx is None:
        return NULL_SPAN
    return Span(ctx.collector, name)


def inc(name: str, value: int = 1) -> None:
    ctx = _CONTEXT
    if ctx is not None:
        ctx.metrics.inc(name, value)


def inc_many(items: Sequence) -> None:
    """Fold ``(name, delta)`` pairs in one registry call.

    Flush sites that report many counters at once should prefer this
    over per-name :func:`inc`: the whole batch costs one lock
    acquisition (see ``MetricsRegistry.inc_many``), keeping the
    enabled-path overhead inside the perf harness's budget.
    """
    ctx = _CONTEXT
    if ctx is not None:
        ctx.metrics.inc_many(items)


def histogram(name: str, bounds: Sequence[float]) -> Optional[Histogram]:
    """The named histogram, or ``None`` when telemetry is off.

    Hot paths are expected to fetch this once per run and guard the
    per-access ``observe`` behind an ``is not None`` attribute test.
    """
    ctx = _CONTEXT
    if ctx is None:
        return None
    return ctx.metrics.histogram(name, bounds)


@contextmanager
def capture() -> Iterator[Optional[TelemetryContext]]:
    """Record one cell's telemetry in an isolated, fresh context.

    Only meaningful while telemetry is enabled (yields ``None``
    otherwise).  The surrounding context — e.g. the parent's drive
    span — is saved and restored, so per-cell payloads are identical
    whether the cell ran in the parent (serial mode) or in a worker
    process whose module-global starts empty.
    """
    global _CONTEXT
    if _CONTEXT is None:
        yield None
        return
    outer = _CONTEXT
    inner = _CONTEXT = TelemetryContext()
    try:
        yield inner
    finally:
        _CONTEXT = outer


def telemetry_default() -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry by default."""
    import os

    return os.environ.get("REPRO_TELEMETRY", "").lower() in (
        "1", "on", "true", "yes",
    )
