"""Nestable wall-clock spans (the tracing half of ``repro.obs``).

A span is one timed region of the pipeline — ``trace-gen``, ``stage1``,
``stage2``, ``stage3-timing``, a ``cell`` compute, a ``drive`` — named
at the call site and nested by a per-thread stack, so a collector ends
up with slash-joined paths (``cell/stage1``) that reconstruct the call
tree without the collector ever walking frames.

Spans are pure observation: they read ``time.perf_counter`` and append
one record on exit.  They never touch the ``random`` module or any
simulator state, which is what lets the determinism pins run unchanged
with telemetry enabled (see ``tests/test_determinism.py``).

The disabled fast path matters more than the enabled one: every
instrumentation site calls :func:`repro.obs.span`, which returns the
shared :data:`NULL_SPAN` singleton when no collector is installed —
one global load, one ``is None`` test, and a no-op context manager.
The perf harness (``repro.perf.bench_telemetry``) measures that cost
and gates it below 2% of a Stage-2 replay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: its name, nesting path, and timing."""

    name: str
    path: str       # slash-joined ancestry, e.g. "cell/stage2"
    start_s: float  # offset from the owning collector's epoch
    dur_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
        }


class SpanCollector:
    """Thread-safe sink for finished spans with per-thread nesting.

    Each thread keeps its own ancestry stack (spans opened on one
    thread never become parents of spans on another); the finished
    records land in one shared list, appended under a lock so the
    collector survives threaded callers.  Process boundaries are
    handled above this layer: worker processes run their own collector
    and ship ``payload()`` back with the cell result.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.records: List[SpanRecord] = []
        self._drained = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def add(self, record: SpanRecord) -> None:
        # Lock-free on purpose: ``list.append`` is atomic under the
        # GIL, and this runs on every span exit (the enabled hot
        # path).  Readers still lock — they slice and swap cursors,
        # which appends never invalidate.
        self.records.append(record)

    def snapshot(self) -> List[SpanRecord]:
        with self._lock:
            return list(self.records)

    def drain_new(self) -> List[SpanRecord]:
        """Records added since the last drain (for incremental sinks).

        The cursor lives on the collector — not on any consumer — so
        multiple event writers against one ambient context each record
        is emitted exactly once overall.
        """
        with self._lock:
            fresh = self.records[self._drained:]
            self._drained = len(self.records)
            return fresh


class Span:
    """Context manager timing one region inside a collector."""

    __slots__ = ("_collector", "name", "path", "_t0")

    def __init__(self, collector: SpanCollector, name: str) -> None:
        self._collector = collector
        self.name = name
        self.path = name
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        stack = self._collector._stack()
        if stack:
            self.path = f"{stack[-1]}/{self.name}"
        stack.append(self.path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        ended = time.perf_counter()
        collector = self._collector
        collector._stack().pop()
        collector.add(SpanRecord(
            name=self.name,
            path=self.path,
            start_s=self._t0 - collector.epoch,
            dur_s=ended - self._t0,
        ))


class NullSpan:
    """Shared no-op context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NULL_SPAN = NullSpan()
