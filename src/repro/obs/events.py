"""JSONL event sink: one ``events.jsonl`` per recorded run.

Events live beside the run manifests, under the result-store root::

    <root>/runs/<run_id>.events.jsonl

One line per event, four event types (``EVENT_SCHEMA`` versions the
layout; readers ignore files with an unknown schema):

* ``run`` — exactly one, first line: run id, label, wall seconds,
  worker count, planned/settled cell counts, unix timestamp.
* ``span`` — one per finished span.  ``cell`` carries the owning
  cell's cache key (``null`` for engine-level spans such as ``drive``),
  ``label`` the human cell label, ``path`` the slash-joined nesting.
* ``counter`` — one per (cell, counter) pair, plus run-level totals
  with ``cell: null`` (result-cache and artifact-cache hit counts,
  fault-tolerance tallies).
* ``hist`` — one per (cell, histogram): fixed bounds, bucket counts,
  count/sum/min/max.

Workers never write this file.  Their span and metric payloads travel
back to the parent attached to cell results (see
:func:`repro.exec.runner._execute_cell`), and the parent writes the
merged file once per drive — so there is exactly one writer and the
file needs no locking.  Writes are atomic (tmp + rename) and
best-effort: a failed telemetry write never fails the run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: Bump when the event layout changes; readers skip unknown schemas.
EVENT_SCHEMA = 1

#: Filename suffix under ``<root>/runs/``.
EVENTS_SUFFIX = ".events.jsonl"


def events_path(store_root, run_id: str) -> Path:
    """Where a run's event log lives (beside its manifest)."""
    from repro.exec.manifest import MANIFEST_DIR

    return Path(store_root) / MANIFEST_DIR / f"{run_id}{EVENTS_SUFFIX}"


def run_event(run_id: str, label: str, wall_s: float, jobs: int,
              planned: int, cells: int, ts: float) -> Dict[str, Any]:
    return {
        "type": "run",
        "schema": EVENT_SCHEMA,
        "run_id": run_id,
        "label": label,
        "wall_s": wall_s,
        "jobs": jobs,
        "planned": planned,
        "cells": cells,
        "ts": ts,
    }


def span_event(cell: Optional[str], label: Optional[str],
               span: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "span", "cell": cell, "label": label, **span}


def counter_event(cell: Optional[str], name: str, value: int) -> Dict[str, Any]:
    return {"type": "counter", "cell": cell, "name": name, "value": value}


def hist_event(cell: Optional[str], name: str,
               hist: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "hist", "cell": cell, "name": name, **hist}


def write_events(path, events: Iterable[Dict[str, Any]]) -> Optional[Path]:
    """Atomically (re)write one run's event log; ``None`` on failure.

    Re-driving the same run (``repro.cli resume``) replaces the log
    with the latest drive's events, mirroring how the manifest's
    completion state converges.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def read_events(path) -> List[Dict[str, Any]]:
    """Parse one event log; skips malformed lines, [] when unreadable."""
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    if events and events[0].get("type") == "run" \
            and events[0].get("schema") not in (None, EVENT_SCHEMA):
        return []
    return events


def list_event_logs(store_root) -> Iterator[Tuple[str, Path]]:
    """Yield ``(run_id, path)`` for every event log, oldest first."""
    from repro.exec.manifest import MANIFEST_DIR

    root = Path(store_root) / MANIFEST_DIR
    if not root.is_dir():
        return
    entries = []
    for path in root.glob(f"*{EVENTS_SUFFIX}"):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        entries.append((mtime, path.name, path))
    entries.sort()
    for _, name, path in entries:
        yield name[: -len(EVENTS_SUFFIX)], path
