"""Counters and fixed-bucket histograms (the metrics half of ``repro.obs``).

Two metric kinds cover everything the pipeline wants to report:

* **Counters** — monotonically increasing integers (LLC hits, misses,
  evictions, bypasses, sampler trainings, cache-layer hit counts).
  The hot paths never increment these per access; the simulators flush
  the aggregate ``LLCStats`` they already keep once per replay, so a
  counter costs one dict update per *replay*, not per access.
* **Histograms** — fixed, caller-declared bucket bounds (no dynamic
  rebucketing, so histograms from different worker processes merge by
  summing counts).  Used for per-predictor confidence distributions;
  the per-access ``observe`` is a bisect over ~a dozen bounds and only
  runs when telemetry is enabled — the disabled path is an attribute
  ``is None`` test at the call site.

A :class:`MetricsRegistry` is always owned by one telemetry context
(see ``repro.obs``): worker processes run their own registry and ship
``payload()`` back with the cell result; the parent merges payloads
with :func:`merge_counters` / :func:`merge_hist` when aggregating.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` counts.

    ``counts[i]`` holds values ``<= bounds[i]`` (first bucket) or in
    ``(bounds[i-1], bounds[i]]``; the final bucket is the overflow
    ``> bounds[-1]``.  Bounds are frozen at registration so payloads
    from different processes are always mergeable.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError("histogram bounds must be sorted ascending")
        self.bounds: List[float] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Histogram":
        hist = Histogram(payload["bounds"])
        hist.counts = [int(c) for c in payload["counts"]]
        hist.count = int(payload["count"])
        hist.total = float(payload["sum"])
        hist.min = payload.get("min")
        hist.max = payload.get("max")
        return hist

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold another histogram's dict payload into this one.

        Payloads with different bounds are ignored rather than raised
        on: telemetry must never take an experiment down.
        """
        if list(payload.get("bounds", ())) != self.bounds:
            return
        for index, count in enumerate(payload["counts"]):
            self.counts[index] += int(count)
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        for name, pick in (("min", min), ("max", max)):
            theirs = payload.get(name)
            if theirs is None:
                continue
            ours = getattr(self, name)
            setattr(self, name, theirs if ours is None else pick(ours, theirs))


class MetricsRegistry:
    """Named counters + histograms for one telemetry context."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.hists: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def inc_many(self, items: Sequence[Tuple[str, int]]) -> None:
        """Fold a batch of ``(name, delta)`` pairs under one lock.

        Flush sites that report a dozen aggregate counters per replay
        (``flush_llc_metrics``) pay one acquisition per *flush* instead
        of one per counter — the bulk of the enabled-path overhead the
        perf harness's ``telemetry_enabled_overhead`` gate watches.
        """
        counters = self.counters
        with self._lock:
            for name, value in items:
                counters[name] = counters.get(name, 0) + value

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        """Get-or-create; the first registration's bounds win."""
        hist = self.hists.get(name)
        if hist is None:
            with self._lock:
                hist = self.hists.get(name)
                if hist is None:
                    hist = self.hists[name] = Histogram(bounds)
        return hist

    def payload(self) -> Dict[str, Any]:
        """JSON/pickle-safe snapshot for cross-process shipping."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "hists": {name: hist.to_dict()
                          for name, hist in self.hists.items()},
            }


def merge_counters(totals: Dict[str, int], counters: Dict[str, int]) -> None:
    for name, value in counters.items():
        totals[name] = totals.get(name, 0) + int(value)


def merge_hists(totals: Dict[str, Histogram],
                hists: Dict[str, Dict[str, Any]]) -> None:
    for name, payload in hists.items():
        existing = totals.get(name)
        if existing is None:
            totals[name] = Histogram.from_dict(payload)
        else:
            existing.merge(payload)
