"""Progress and timing instrumentation for experiment batches.

Each :meth:`repro.exec.ParallelRunner.run` call produces an
:class:`ExecReport`: per-cell wall time and cache status plus batch
aggregates (hit rate, worker utilization).  ``summary()`` is a single
line suitable for CLI output; ``table()`` matches the bench harness's
fixed-width table style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exec.faults import CellFailure

RULE = "-" * 78


@dataclass(frozen=True)
class CellOutcome:
    """How one cell was satisfied (or why it was not)."""

    label: str
    key: str
    cached: bool
    seconds: float
    failed: bool = False
    attempts: int = 1

    @property
    def status(self) -> str:
        if self.failed:
            return "failed"
        return "cached" if self.cached else "computed"


@dataclass(frozen=True)
class ExecReport:
    """Aggregate timing/caching report for one batch of cells.

    ``trace_*`` and ``stage1_*`` count lookups in the shared artifact
    cache (:mod:`repro.exec.artifacts`) summed over every *computed*
    cell; result-cache hits never consult artifacts, so a fully warm
    batch reports zeros here.
    """

    outcomes: Tuple[CellOutcome, ...]
    wall_seconds: float
    jobs: int
    label: str = ""
    trace_hits: int = 0
    trace_misses: int = 0
    stage1_hits: int = 0
    stage1_misses: int = 0
    # Shared-context Stage-2 replays (repro.sim.batch): ``batches``
    # counts batch cells executed, ``batched`` the candidates they
    # covered.  Zero for per-candidate runs.
    batches: int = 0
    batched: int = 0
    # Fault-tolerance accounting: ``planned`` is the batch size the
    # run was asked for (outcomes may be fewer after an interrupt),
    # ``failures`` the terminal per-cell failure records, ``retries``
    # the re-executions after in-cell errors/timeouts, ``timeouts``
    # the watchdog expirations, ``requeued`` the cells resubmitted
    # after pool deaths or batch degradation, and ``pool_rebuilds``
    # the worker pools rebuilt after a ``BrokenProcessPool``.
    planned: int = 0
    failures: Tuple[CellFailure, ...] = ()
    retries: int = 0
    timeouts: int = 0
    requeued: int = 0
    pool_rebuilds: int = 0
    # Graph-scheduler accounting (zero when REPRO_GRAPH=off or no
    # artifact store): ``graph_nodes`` artifact nodes planned,
    # ``graph_loads``/``graph_computes`` the forward pass's decisions
    # over the needed set, ``graph_shared`` nodes referenced by more
    # than one cell, ``graph_denied`` materialized blobs the plan
    # recomputes instead of loading, and ``graph_prelude`` the
    # materialize tasks run ahead of the cell wave.
    graph_nodes: int = 0
    graph_loads: int = 0
    graph_computes: int = 0
    graph_shared: int = 0
    graph_denied: int = 0
    graph_prelude: int = 0
    # Distributed-mesh accounting: which execution backend drove the
    # batch, and shared-tier store traffic (read-through hits served
    # by the shared directory — result lookups in the parent plus
    # artifact reads inside workers — and write-backs pushed up to
    # it).  Zero/"local" for plain single-host runs.
    backend: str = "local"
    store_shared_hits: int = 0
    store_shared_fills: int = 0
    # Health-layer accounting (DESIGN.md §16): ``hedges`` duplicate
    # submissions launched against stragglers and ``hedge_wins`` the
    # races the duplicate won; ``hb_lost`` workers declared lost by
    # the heartbeat timeout (a subset of the requeue/rebuild traffic
    # above); ``store_breaker_trips`` shared-tier circuit-breaker
    # openings during this batch and ``store_breaker_open`` whether
    # the run *ended* with the shared tier degraded to local-only.
    hedges: int = 0
    hedge_wins: int = 0
    hb_lost: int = 0
    store_breaker_trips: int = 0
    store_breaker_open: bool = False

    @property
    def cells(self) -> int:
        return len(self.outcomes)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.failed)

    @property
    def pending(self) -> int:
        """Cells never settled (interrupted before compute finished)."""
        return max(0, self.planned - self.cells)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def computed(self) -> int:
        """Cells actually executed (neither cached nor failed)."""
        return sum(1 for outcome in self.outcomes
                   if not outcome.cached and not outcome.failed)

    @property
    def misses(self) -> int:
        """Cache misses that went on to compute.

        Failed cells are not misses: they never produced a result, so
        counting them here (the old ``cells - hits``) under-reported
        the warm-cache rate for batches with failures.
        """
        return self.computed

    @property
    def hit_rate(self) -> float:
        """Hits over cache *lookups that could have hit* (hits+computed)."""
        resolved = self.hits + self.computed
        return self.hits / resolved if resolved else 0.0

    @property
    def cell_seconds(self) -> float:
        """Total compute time across cells (cache hits cost ~0)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool kept busy over the batch."""
        budget = self.wall_seconds * max(1, self.jobs)
        if budget <= 0.0:
            return 0.0
        return min(1.0, self.cell_seconds / budget)

    @property
    def artifact_lookups(self) -> int:
        return (self.trace_hits + self.trace_misses
                + self.stage1_hits + self.stage1_misses)

    def summary(self) -> str:
        name = f"exec[{self.label}]" if self.label else "exec"
        line = (
            f"{name}: {self.cells} cells  jobs={self.jobs}  "
            f"hits={self.hits}/{self.cells} ({self.hit_rate:.0%})  "
            f"wall={self.wall_seconds:.2f}s  work={self.cell_seconds:.2f}s  "
            f"util={self.utilization:.0%}"
        )
        if self.backend != "local":
            line += f"  backend={self.backend}"
        if (self.store_shared_hits or self.store_shared_fills
                or self.store_breaker_trips or self.store_breaker_open):
            line += (f"  shared: hits={self.store_shared_hits} "
                     f"fills={self.store_shared_fills}")
            if self.store_breaker_open:
                line += " breaker=open"
            elif self.store_breaker_trips:
                line += f" breaker-trips={self.store_breaker_trips}"
        if self.artifact_lookups:
            line += (
                f"  artifacts: trace {self.trace_hits}/"
                f"{self.trace_hits + self.trace_misses}  "
                f"stage1 {self.stage1_hits}/"
                f"{self.stage1_hits + self.stage1_misses}"
            )
        if self.batches:
            line += f"  batched={self.batched}/{self.batches} replays"
        if self.graph_nodes:
            line += (
                f"  graph: {self.graph_nodes} nodes "
                f"load={self.graph_loads} compute={self.graph_computes} "
                f"shared={self.graph_shared}"
            )
            if self.graph_denied:
                line += f" denied={self.graph_denied}"
            if self.graph_prelude:
                line += f" prelude={self.graph_prelude}"
        if (self.failed or self.retries or self.timeouts or self.requeued
                or self.pool_rebuilds):
            line += (
                f"  faults: failed={self.failed} retries={self.retries} "
                f"timeouts={self.timeouts} requeued={self.requeued} "
                f"rebuilds={self.pool_rebuilds}"
            )
        if self.hedges or self.hb_lost:
            line += (f"  health: hedged={self.hedges} "
                     f"wins={self.hedge_wins} hb-lost={self.hb_lost}")
        if self.pending:
            line += f"  pending={self.pending}"
        return line

    def table(self) -> str:
        lines = [RULE, f"{'cell':48s} {'status':>10s} {'seconds':>10s}", RULE]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.label[:48]:48s} {outcome.status:>10s} "
                f"{outcome.seconds:10.3f}"
            )
        lines.append(RULE)
        return "\n".join(lines)

    def failures_table(self) -> str:
        """Fixed-width table of terminal failures; empty when clean."""
        if not self.failures:
            return ""
        lines = [RULE,
                 f"{'failed cell':32s} {'kind':>8s} {'tries':>6s}  error",
                 RULE]
        for failure in self.failures:
            error = f"{failure.exc_type}: {failure.message}"
            lines.append(
                f"{failure.label[:32]:32s} {failure.kind:>8s} "
                f"{failure.attempts:>6d}  {error[:60]}"
            )
        lines.append(RULE)
        return "\n".join(lines)
