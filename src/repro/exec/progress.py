"""Progress and timing instrumentation for experiment batches.

Each :meth:`repro.exec.ParallelRunner.run` call produces an
:class:`ExecReport`: per-cell wall time and cache status plus batch
aggregates (hit rate, worker utilization).  ``summary()`` is a single
line suitable for CLI output; ``table()`` matches the bench harness's
fixed-width table style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

RULE = "-" * 78


@dataclass(frozen=True)
class CellOutcome:
    """How one cell was satisfied."""

    label: str
    key: str
    cached: bool
    seconds: float

    @property
    def status(self) -> str:
        return "cached" if self.cached else "computed"


@dataclass(frozen=True)
class ExecReport:
    """Aggregate timing/caching report for one batch of cells.

    ``trace_*`` and ``stage1_*`` count lookups in the shared artifact
    cache (:mod:`repro.exec.artifacts`) summed over every *computed*
    cell; result-cache hits never consult artifacts, so a fully warm
    batch reports zeros here.
    """

    outcomes: Tuple[CellOutcome, ...]
    wall_seconds: float
    jobs: int
    label: str = ""
    trace_hits: int = 0
    trace_misses: int = 0
    stage1_hits: int = 0
    stage1_misses: int = 0
    # Shared-context Stage-2 replays (repro.sim.batch): ``batches``
    # counts batch cells executed, ``batched`` the candidates they
    # covered.  Zero for per-candidate runs.
    batches: int = 0
    batched: int = 0

    @property
    def cells(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def misses(self) -> int:
        return self.cells - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.cells if self.cells else 0.0

    @property
    def cell_seconds(self) -> float:
        """Total compute time across cells (cache hits cost ~0)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool kept busy over the batch."""
        budget = self.wall_seconds * max(1, self.jobs)
        if budget <= 0.0:
            return 0.0
        return min(1.0, self.cell_seconds / budget)

    @property
    def artifact_lookups(self) -> int:
        return (self.trace_hits + self.trace_misses
                + self.stage1_hits + self.stage1_misses)

    def summary(self) -> str:
        name = f"exec[{self.label}]" if self.label else "exec"
        line = (
            f"{name}: {self.cells} cells  jobs={self.jobs}  "
            f"hits={self.hits}/{self.cells} ({self.hit_rate:.0%})  "
            f"wall={self.wall_seconds:.2f}s  work={self.cell_seconds:.2f}s  "
            f"util={self.utilization:.0%}"
        )
        if self.artifact_lookups:
            line += (
                f"  artifacts: trace {self.trace_hits}/"
                f"{self.trace_hits + self.trace_misses}  "
                f"stage1 {self.stage1_hits}/"
                f"{self.stage1_hits + self.stage1_misses}"
            )
        if self.batches:
            line += f"  batched={self.batched}/{self.batches} replays"
        return line

    def table(self) -> str:
        lines = [RULE, f"{'cell':48s} {'status':>10s} {'seconds':>10s}", RULE]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.label[:48]:48s} {outcome.status:>10s} "
                f"{outcome.seconds:10.3f}"
            )
        lines.append(RULE)
        return "\n".join(lines)
