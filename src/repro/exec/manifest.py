"""Run manifests: explicit, resumable completion state for cell batches.

The result store already gives interrupted runs *implicit* resume —
completed cells are cache hits on the next invocation.  A
:class:`RunManifest` makes that state explicit and reportable: each
:meth:`~repro.exec.runner.ParallelRunner.run` (or
``run_search_batches``) call with an attached store records the run's
cell-key set and per-cell completion status on disk, so an interrupted
``compare``/``search``/``mix`` can be inspected (``repro.cli resume``
with no argument) and re-driven (``repro.cli resume <run-id>``), and
tests can assert that a resumed run re-executes only unfinished cells.

Layout, under the result-store root::

    <root>/runs/<run_id>.json   # immutable run description
    <root>/runs/<run_id>.done   # append-only "<status> <key>" log

``run_id`` is the stable hash of the run's label, launching CLI
command, and sorted cell-key set, so re-running the same command
reopens the same manifest and its completion log.  Statuses are
``done`` (result computed or served from cache) and ``failed``
(terminal :class:`~repro.exec.faults.CellFailure`); anything not
``done`` counts as pending and is re-executed on resume.  Results
themselves live only in the store — the manifest tracks state, never
data.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exec.cachekey import stable_hash
from repro.exec.health import manifest_fsync

#: Subdirectory of the result-store root holding run manifests.
MANIFEST_DIR = "runs"

#: Bump when the manifest JSON layout changes; old files are ignored.
MANIFEST_SCHEMA = 1

#: CLI flags that change *how* a run executes, never *what* it runs.
#: They are stripped from the command before hashing the run id, so
#: resuming with different execution settings (``resume --jobs 8
#: --backend fleet``) reopens the same manifest and completion log.
EXEC_FLAGS = ("--jobs", "--backend", "--workers", "--shared-store",
              "--hedge")

#: Statuses a ``.done`` log line may carry; anything else on a line is
#: treated as corruption and skipped on replay.
_VALID_STATUSES = ("done", "failed")


def strip_exec_flags(command: Sequence[str]) -> List[str]:
    """Drop execution-only flags (space and ``=`` forms) from an argv."""
    stripped: List[str] = []
    skip = False
    for part in command:
        if skip:
            skip = False
            continue
        if part in EXEC_FLAGS:
            skip = True
            continue
        if any(part.startswith(f"{flag}=") for flag in EXEC_FLAGS):
            continue
        stripped.append(part)
    return stripped


@dataclass
class RunManifest:
    """One recorded run: its cells, launching command, and progress."""

    root: Path                          # the <store>/runs directory
    run_id: str
    label: str
    command: List[str]                  # CLI argv; [] for library runs
    cells: Dict[str, Dict[str, str]]    # key -> {"label", "kind"}
    statuses: Dict[str, str] = field(default_factory=dict)
    # Execution settings of the most recent invocation (backend name,
    # worker spec, job count) — informational, never part of the run
    # id, so a resume with different settings updates it in place.
    exec_info: Dict[str, str] = field(default_factory=dict)
    # True when the ``.done`` log ended mid-line (a torn write from a
    # crash or power loss): the torn tail was skipped on replay and
    # the next append starts on a fresh line.
    _tail_torn: bool = field(default=False, repr=False)

    @property
    def path(self) -> Path:
        return self.root / f"{self.run_id}.json"

    @property
    def done_path(self) -> Path:
        return self.root / f"{self.run_id}.done"

    @property
    def events_path(self) -> Path:
        """Where this run's telemetry event log lives (``repro.obs``)."""
        from repro.obs.events import EVENTS_SUFFIX

        return self.root / f"{self.run_id}{EVENTS_SUFFIX}"

    @classmethod
    def create(cls, store_root, label: str, command: Sequence[str],
               cells: Sequence[Tuple[str, str, str]],
               exec_info: Optional[Dict[str, str]] = None) -> "RunManifest":
        """Open (creating if needed) the manifest for this cell set.

        ``cells`` is a sequence of ``(key, label, kind)`` records.  An
        existing manifest for the same run id is reused, so resumed
        runs continue the original completion log.  Execution-only
        flags are stripped from the command before hashing, so a
        resume with overridden ``--jobs``/``--backend``/``--workers``
        reopens the same run; the manifest file is rewritten when the
        recorded execution settings change (the ``.done`` log is
        untouched).
        """
        keys = sorted(key for key, _, _ in cells)
        run_id = stable_hash({
            "manifest": MANIFEST_SCHEMA,
            "label": label,
            "command": strip_exec_flags(command),
            "keys": keys,
        })
        root = Path(store_root) / MANIFEST_DIR
        manifest = cls(
            root=root, run_id=run_id, label=label, command=list(command),
            cells={key: {"label": cell_label, "kind": kind}
                   for key, cell_label, kind in cells},
            exec_info=dict(exec_info or {}),
        )
        try:
            root.mkdir(parents=True, exist_ok=True)
            existing = _read_manifest(manifest.path)
            if existing is None or existing.exec_info != manifest.exec_info:
                payload = {
                    "schema": MANIFEST_SCHEMA,
                    "run_id": run_id,
                    "label": label,
                    "command": manifest.command,
                    "cells": manifest.cells,
                    "exec": manifest.exec_info,
                }
                fd, tmp = tempfile.mkstemp(dir=str(root), suffix=".tmp")
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp, manifest.path)
        except OSError:
            pass  # manifests are best-effort; execution never depends on them
        manifest._load_statuses()
        return manifest

    @classmethod
    def load(cls, store_root, run_id: str) -> Optional["RunManifest"]:
        """Read one manifest back; ``None`` if absent or unreadable."""
        root = Path(store_root) / MANIFEST_DIR
        return _read_manifest(root / f"{run_id}.json")

    def _load_statuses(self) -> None:
        """Replay the ``.done`` log, tolerating a torn final write.

        A crash (or power loss without :data:`REPRO_MANIFEST_FSYNC`)
        can leave the log's last line truncated mid-record.  Such a
        tail must not wedge a resume: it is skipped — the cell it
        described simply counts as pending and re-executes — and the
        next :meth:`mark` starts on a fresh line.  Unknown statuses
        and keys outside this run are skipped the same way, so a
        corrupted byte range costs at most its own records.
        """
        self.statuses = {}
        self._tail_torn = False
        try:
            with open(self.done_path, "r", encoding="utf-8",
                      errors="replace") as handle:
                content = handle.read()
        except OSError:
            return
        if not content:
            return
        lines = content.split("\n")
        if lines[-1] == "":
            lines.pop()  # well-formed log: trailing newline
        else:
            lines.pop()  # torn tail: the final record never finished
            self._tail_torn = True
        for line in lines:
            status, _, key = line.strip().partition(" ")
            if status in _VALID_STATUSES and key in self.cells:
                self.statuses[key] = status

    def mark(self, key: str, status: str) -> None:
        """Append a status transition for ``key`` (idempotent)."""
        if self.statuses.get(key) == status:
            return
        self.statuses[key] = status
        # A detected torn tail is terminated first so this record
        # starts on its own line instead of extending the partial one.
        prefix = "\n" if self._tail_torn else ""
        try:
            with open(self.done_path, "a", encoding="utf-8") as handle:
                handle.write(f"{prefix}{status} {key}\n")
                if manifest_fsync():
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:
            return
        self._tail_torn = False

    def completed(self) -> Set[str]:
        return {key for key, status in self.statuses.items()
                if status == "done"}

    def pending(self) -> Set[str]:
        """Cells a resume must re-execute (never completed, or failed)."""
        return set(self.cells) - self.completed()

    @property
    def is_complete(self) -> bool:
        return not self.pending()

    def progress(self) -> str:
        done = len(self.completed())
        failed = sum(1 for status in self.statuses.values()
                     if status == "failed")
        line = f"{done}/{len(self.cells)} cells done"
        if failed:
            line += f", {failed} failed"
        return line


def _read_manifest(path: Path) -> Optional[RunManifest]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if (not isinstance(payload, dict)
            or payload.get("schema") != MANIFEST_SCHEMA):
        return None
    try:
        manifest = RunManifest(
            root=path.parent,
            run_id=str(payload["run_id"]),
            label=str(payload.get("label", "")),
            command=[str(part) for part in payload.get("command", [])],
            cells={str(key): {"label": str(meta.get("label", "")),
                              "kind": str(meta.get("kind", ""))}
                   for key, meta in payload["cells"].items()},
            exec_info={str(name): str(value)
                       for name, value in dict(
                           payload.get("exec") or {}).items()},
        )
    except (KeyError, TypeError, AttributeError):
        return None
    manifest._load_statuses()
    return manifest


def list_runs(store_root) -> List[RunManifest]:
    """All readable manifests under ``store_root``, oldest first."""
    root = Path(store_root) / MANIFEST_DIR
    if not root.is_dir():
        return []
    entries = []
    for path in root.glob("*.json"):
        manifest = _read_manifest(path)
        if manifest is None:
            continue
        try:
            mtime = path.stat().st_mtime
        except OSError:
            mtime = 0.0
        entries.append((mtime, path.name, manifest))
    entries.sort(key=lambda entry: (entry[0], entry[1]))
    return [manifest for _, _, manifest in entries]
