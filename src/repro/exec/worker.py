"""Long-lived cell-execution worker: ``python -m repro.exec.worker``.

One worker serves one slot of a :class:`~repro.exec.backends.fleet.
WorkerFleetBackend` (or its SSH variant).  It speaks the framing
protocol from :mod:`repro.exec.protocol` over stdin/stdout:

* on startup it emits a ``hello`` frame (pid + protocol version);
* ``config`` frames apply environment knobs (``REPRO_*``) before any
  cell runs — the only state propagation an SSH-tunneled worker gets;
* ``run`` frames carry a task id plus a nested pickle of the execution
  request; the worker decodes it, runs the cell through exactly the
  same :func:`~repro.exec.runner._execute_cell` entry point the local
  pool uses (so results are bit-identical), and replies with a
  ``result`` frame — or an ``error`` frame whose structured fields
  (exception type, message, remote traceback) the parent folds into a
  :class:`~repro.exec.faults.CellFailure`;
* ``shutdown`` (or stdin EOF) ends the loop cleanly.

Stray ``print`` calls inside simulation code must never corrupt the
frame stream, so the worker claims the raw stdout buffer for frames
and rebinds ``sys.stdout`` to stderr before importing anything
heavyweight.  Per-process memoization (segments, runners, artifact
caches) accumulates across the cells one worker executes — the same
reuse a pool worker gets, now across a whole run instead of one drive.
"""

from __future__ import annotations

import os
import pickle
import sys
import traceback
from typing import Any, BinaryIO, Dict

from repro.exec.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    read_frame,
    write_frame,
)


def apply_env(env: Dict[str, Any]) -> None:
    """Apply a ``config`` frame's environment map to this process.

    ``None`` values unset; everything else is stringified.  Only the
    mapping's own keys are touched, so a worker keeps its inherited
    environment for anything the parent did not explicitly propagate.
    """
    for name, value in env.items():
        if not isinstance(name, str):
            continue
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = str(value)


def execute_request(request: Dict[str, Any]) -> Any:
    """Run one decoded execution request through the shared entry point."""
    from repro.exec.runner import _execute_cell

    return _execute_cell(
        request["cell"],
        request["key"],
        request.get("artifact_root"),
        request.get("attempt", 1),
        True,
        request.get("telemetry", False),
        frozenset(request.get("deny_loads", ())),
        shared_root=request.get("shared_root"),
    )


def _error_frame(task_id: Any, exc: BaseException) -> Dict[str, Any]:
    return {
        "op": "error",
        "id": task_id,
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)),
    }


def _handle_run(message: Dict[str, Any], writer: BinaryIO) -> None:
    task_id = message.get("id")
    try:
        request = pickle.loads(message["task"])
        payload = execute_request(request)
    except Exception as exc:
        write_frame(writer, _error_frame(task_id, exc))
        return
    try:
        write_frame(writer, {"op": "result", "id": task_id,
                             "payload": payload})
    except FrameError:
        raise
    except Exception as exc:
        # The result itself failed to pickle/frame; surface that as a
        # structured failure rather than dying with a half-built frame
        # already on the wire... write_frame buffers the whole frame
        # before writing, so the stream is still clean here.
        write_frame(writer, _error_frame(task_id, exc))


def serve(reader: BinaryIO, writer: BinaryIO) -> int:
    """Frame loop: read requests until EOF/shutdown.  Returns exit code."""
    write_frame(writer, {"op": "hello", "pid": os.getpid(),
                         "protocol": PROTOCOL_VERSION})
    while True:
        try:
            message = read_frame(reader)
        except FrameError:
            # The inbound stream is unrecoverable (truncated/corrupt
            # frame); exit nonzero so the parent records a worker loss.
            return 1
        if message is None:
            return 0
        op = message.get("op") if isinstance(message, dict) else None
        if op == "shutdown":
            return 0
        if op == "config":
            apply_env(dict(message.get("env") or {}))
        elif op == "run":
            _handle_run(message, writer)
        else:
            write_frame(writer, {
                "op": "error", "id": None, "exc_type": "ProtocolError",
                "message": f"unknown frame op {op!r}", "traceback": "",
            })


def main() -> int:
    writer = sys.stdout.buffer
    # Frames own the real stdout; reroute prints (ours and any stray
    # ones inside simulation code) to stderr.
    sys.stdout = sys.stderr
    try:
        return serve(sys.stdin.buffer, writer)
    except BrokenPipeError:
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
