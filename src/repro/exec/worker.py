"""Long-lived cell-execution worker: ``python -m repro.exec.worker``.

One worker serves one slot of a :class:`~repro.exec.backends.fleet.
WorkerFleetBackend` (or its SSH variant).  It speaks the framing
protocol from :mod:`repro.exec.protocol` over stdin/stdout:

* on startup it emits a ``hello`` frame (pid + protocol version);
* ``config`` frames apply environment knobs (``REPRO_*``) before any
  cell runs — the only state propagation an SSH-tunneled worker gets;
* ``run`` frames carry a task id plus a nested pickle of the execution
  request; the worker decodes it, runs the cell through exactly the
  same :func:`~repro.exec.runner._execute_cell` entry point the local
  pool uses (so results are bit-identical), and replies with a
  ``result`` frame — or an ``error`` frame whose structured fields
  (exception type, message, remote traceback) the parent folds into a
  :class:`~repro.exec.faults.CellFailure`;
* ``shutdown`` (or stdin EOF) ends the loop cleanly.

Stray ``print`` calls inside simulation code must never corrupt the
frame stream, so the worker claims the raw stdout buffer for frames
and rebinds ``sys.stdout`` to stderr before importing anything
heavyweight.  Per-process memoization (segments, runners, artifact
caches) accumulates across the cells one worker executes — the same
reuse a pool worker gets, now across a whole run instead of one drive.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
import traceback
from typing import Any, BinaryIO, Dict

from repro.exec import faults, health
from repro.exec.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    FrameError,
    read_frame,
    write_frame,
)

#: Serializes the outbound frame stream between the serve loop and the
#: heartbeat thread.  ``write_frame`` issues one buffered write, but
#: two concurrent writers could still interleave at the OS pipe layer.
_WRITE_LOCK = threading.Lock()


def _write_locked(writer: BinaryIO, message: Dict[str, Any]) -> None:
    with _WRITE_LOCK:
        write_frame(writer, message)


class _Heartbeat:
    """Emits ``heartbeat`` frames every ``interval`` s while a cell runs.

    Started after a ``run`` request decodes, stopped before its result
    (or error) frame is written.  The beat runs on a daemon thread so a
    cell that wedges the interpreter's main thread — a hang, a stuck
    syscall short of a full freeze — still announces liveness, while a
    dead or partitioned process goes silent, which is exactly the
    distinction the parent's heartbeat timeout draws.
    """

    def __init__(self, writer: BinaryIO, task_id: Any,
                 interval: float) -> None:
        self._writer = writer
        self._task_id = task_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._beat, name="repro-heartbeat", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                _write_locked(self._writer, {"op": "heartbeat",
                                             "id": self._task_id})
            except Exception:
                # Parent gone (broken pipe) or stream unusable; the
                # serve loop will find out on its own next write.
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)


def apply_env(env: Dict[str, Any]) -> None:
    """Apply a ``config`` frame's environment map to this process.

    ``None`` values unset; everything else is stringified.  Only the
    mapping's own keys are touched, so a worker keeps its inherited
    environment for anything the parent did not explicitly propagate.
    """
    for name, value in env.items():
        if not isinstance(name, str):
            continue
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = str(value)


def execute_request(request: Dict[str, Any]) -> Any:
    """Run one decoded execution request through the shared entry point."""
    from repro.exec.runner import _execute_cell

    return _execute_cell(
        request["cell"],
        request["key"],
        request.get("artifact_root"),
        request.get("attempt", 1),
        True,
        request.get("telemetry", False),
        frozenset(request.get("deny_loads", ())),
        shared_root=request.get("shared_root"),
    )


def _error_frame(task_id: Any, exc: BaseException) -> Dict[str, Any]:
    return {
        "op": "error",
        "id": task_id,
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)),
    }


def _write_truncated(writer: BinaryIO, message: Dict[str, Any]) -> None:
    """``frame-trunc`` chaos: half a frame on the wire, then die.

    Simulates a worker whose connection tears mid-write — the parent's
    ``read_frame`` raises ``FrameTruncated`` and the slot is lost.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    header = MAGIC + len(payload).to_bytes(4, "little")
    writer.write(header + payload[:max(1, len(payload) // 2)])
    writer.flush()
    os._exit(faults.CRASH_EXIT_CODE)


def _handle_run(message: Dict[str, Any], writer: BinaryIO) -> None:
    task_id = message.get("id")
    try:
        request = pickle.loads(message["task"])
    except Exception as exc:
        _write_locked(writer, _error_frame(task_id, exc))
        return
    key = str(request.get("key", ""))
    attempt = int(request.get("attempt", 1))
    plan = faults.active_plan()
    interval = health.heartbeat_interval()
    beat = None
    if interval is not None and not (
            plan is not None and plan.suppresses_heartbeat(key, attempt)):
        beat = _Heartbeat(writer, task_id, interval)
        beat.start()
    try:
        try:
            payload = execute_request(request)
        except Exception as exc:
            _write_locked(writer, _error_frame(task_id, exc))
            return
    finally:
        if beat is not None:
            beat.stop()
    reply = {"op": "result", "id": task_id, "payload": payload}
    rule = plan.frame_action(key, attempt) if plan is not None else None
    if rule is not None:
        if rule.kind == "frame-drop":
            return  # computed, never reported: a post-compute partition
        if rule.kind == "frame-trunc":
            _write_truncated(writer, reply)  # exits the process
        if rule.kind == "frame-delay":
            time.sleep(rule.seconds)
    try:
        _write_locked(writer, reply)
        if rule is not None and rule.kind == "frame-dup":
            _write_locked(writer, reply)
    except FrameError:
        raise
    except Exception as exc:
        # The result itself failed to pickle/frame; surface that as a
        # structured failure rather than dying with a half-built frame
        # already on the wire... write_frame buffers the whole frame
        # before writing, so the stream is still clean here.
        _write_locked(writer, _error_frame(task_id, exc))


def serve(reader: BinaryIO, writer: BinaryIO) -> int:
    """Frame loop: read requests until EOF/shutdown.  Returns exit code."""
    write_frame(writer, {"op": "hello", "pid": os.getpid(),
                         "protocol": PROTOCOL_VERSION})
    while True:
        try:
            message = read_frame(reader)
        except FrameError:
            # The inbound stream is unrecoverable (truncated/corrupt
            # frame); exit nonzero so the parent records a worker loss.
            return 1
        if message is None:
            return 0
        op = message.get("op") if isinstance(message, dict) else None
        if op == "shutdown":
            return 0
        if op == "config":
            apply_env(dict(message.get("env") or {}))
        elif op == "run":
            _handle_run(message, writer)
        else:
            write_frame(writer, {
                "op": "error", "id": None, "exc_type": "ProtocolError",
                "message": f"unknown frame op {op!r}", "traceback": "",
            })


def main() -> int:
    writer = sys.stdout.buffer
    # Frames own the real stdout; reroute prints (ours and any stray
    # ones inside simulation code) to stderr.
    sys.stdout = sys.stderr
    try:
        return serve(sys.stdin.buffer, writer)
    except BrokenPipeError:
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
