"""Length-prefixed pickle framing for the distributed execution mesh.

Every transport the worker fleet speaks — pipes to local subprocesses,
stdin/stdout tunneled over ``ssh`` — carries the same byte stream: a
sequence of self-delimiting frames, each a small pickled message::

    magic "RPF1" | uint32-LE payload length | pickle payload

Messages are plain dicts with an ``op`` field; the interesting ops are

* parent -> worker: ``config`` (environment/knob propagation),
  ``run`` (``id`` plus a *nested* pickle of the execution request), and
  ``shutdown``;
* worker -> parent: ``hello`` (pid + protocol version, sent once on
  startup), ``result`` (``id`` + the execution payload), ``error``
  (``id`` + structured exception fields), and ``heartbeat`` (``id`` of
  the running task, emitted every ``REPRO_HEARTBEAT`` seconds while a
  cell executes so the parent can tell a long cell from a dead slot;
  receivers that predate it ignore unknown ops, so it needs no
  protocol-version bump).

The ``run`` request rides as nested bytes deliberately: the envelope
unpickles with builtins only, so a cell class the worker cannot import
(or a corrupt cell pickle) fails *inside* the worker's request decode
and comes back as a structured ``error`` frame carrying the task id —
never as a dead connection the parent has to guess about.

Framing failures are typed: :class:`FrameTruncated` for streams that
end mid-frame, :class:`FrameOversized` for length prefixes beyond
:data:`MAX_FRAME_BYTES` (a corrupt or hostile peer, not a real
message), and :class:`FrameError` for bad magic or undecodable
payloads.  Readers treat any of them as the end of that worker — the
runner's worker-loss machinery (requeue + respawn) takes over.
"""

from __future__ import annotations

import pickle
from typing import Any, BinaryIO, Optional

MAGIC = b"RPF1"

#: Bump when the message vocabulary changes incompatibly; ``hello``
#: frames carry it so mismatched peers fail fast and loudly.
PROTOCOL_VERSION = 1

#: Ceiling on one frame's payload.  Real messages (cells, results,
#: telemetry) are kilobytes to a few megabytes; a length prefix past
#: this is stream corruption and must not drive a giant allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER_BYTES = len(MAGIC) + 4


class FrameError(RuntimeError):
    """The byte stream does not parse as a frame."""


class FrameTruncated(FrameError):
    """The stream ended in the middle of a frame."""


class FrameOversized(FrameError):
    """A frame's declared length exceeds :data:`MAX_FRAME_BYTES`."""


def write_frame(stream: BinaryIO, message: Any) -> None:
    """Pickle ``message`` and write one framed record, flushed."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameOversized(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    stream.write(MAGIC + len(payload).to_bytes(4, "little") + payload)
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on clean EOF at byte 0."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = stream.read(remaining)
        if not chunk:
            if not chunks:
                return None
            got = count - remaining
            raise FrameTruncated(
                f"stream ended after {got} of {count} frame bytes")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[Any]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`FrameError` (or a subclass) for truncation, bad
    magic, oversized declared lengths, and payloads that fail to
    unpickle.  All of them mean the stream is unrecoverable — framing
    carries no resync marker, so the caller must drop the connection.
    """
    header = _read_exact(stream, _HEADER_BYTES)
    if header is None:
        return None
    if header[:len(MAGIC)] != MAGIC:
        raise FrameError(f"bad frame magic {header[:len(MAGIC)]!r}")
    length = int.from_bytes(header[len(MAGIC):], "little")
    if length > MAX_FRAME_BYTES:
        raise FrameOversized(
            f"declared frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit")
    payload = _read_exact(stream, length)
    if payload is None:
        raise FrameTruncated("stream ended before the frame payload")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"frame payload failed to unpickle: {exc}") from exc
