"""Array-packed binary artifacts: shared traces and Stage-1 streams.

A compare over N policies previously paid trace synthesis and the
Stage-1 (L1/L2 + prefetcher) simulation once *per worker process*, and
again on every fresh invocation.  This module memoizes both as compact
binary blobs in the content-addressed :class:`~repro.exec.store.
ResultStore`, so any number of policies, workers, and sessions pay
each cost exactly once per (recipe, hierarchy) combination.

Two artifact kinds exist:

* ``trace`` — one benchmark's synthesized segments, keyed by the
  :class:`~repro.exec.runner.TraceSpec` payload (benchmark, LLC sizing
  used for generation, access budget, generator seed);
* ``stage1`` — one segment's :class:`~repro.sim.hierarchy.
  UpperLevelResult`, keyed by the trace *generation scope* (LLC bytes,
  accesses, seed — segment names embed the benchmark), the segment
  name, the :class:`~repro.sim.hierarchy.HierarchyConfig`, and the
  prefetcher toggle.

Blobs are **not pickled**.  The container is a small self-describing
frame::

    magic "RPA1" | uint32-LE meta length | canonical-JSON meta | payload

where the meta records the cache-key ``SCHEMA_VERSION``, the artifact
kind, the producer's byte order, scalar fields, and a manifest of
``array``-module segments (name, typecode, element count) that the
payload concatenates in order.  Loading validates all of it; any
mismatch (schema bump, truncation, foreign endianness that fails to
byteswap, corruption) degrades to a miss and the artifact is rebuilt —
the cold path is always available and bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exec.cachekey import SCHEMA_VERSION, canonical_json, stable_hash
from repro.exec.store import ResultStore
from repro.sim.hierarchy import HierarchyConfig, UpperLevelResult
from repro.sim.llc import LLCAccess
from repro.traces.trace import Segment, Trace

MAGIC = b"RPA1"

#: flag bits shared by trace accesses and LLC stream entries
_F_WRITE = 1
_F_DEP = 2       # trace: address-dependent load (pointer chase)
_F_PREFETCH = 2  # stage1 stream: prefetch fill


# -- framing ---------------------------------------------------------------


def pack_artifact(kind: str, scalars: Dict[str, Any],
                  arrays: Sequence[Tuple[str, str, Sequence[int]]]) -> bytes:
    """Frame scalars plus named integer arrays into one binary blob."""
    manifest: List[List[Any]] = []
    payload: List[bytes] = []
    for name, typecode, values in arrays:
        packed = array(typecode, values)
        manifest.append([name, typecode, len(packed)])
        payload.append(packed.tobytes())
    meta = canonical_json({
        "schema": SCHEMA_VERSION,
        "artifact": kind,
        "endian": sys.byteorder,
        "scalars": scalars,
        "arrays": manifest,
    }).encode("utf-8")
    header = MAGIC + len(meta).to_bytes(4, "little")
    return b"".join([header, meta] + payload)


def unpack_artifact(
    blob: bytes, kind: str
) -> Optional[Tuple[Dict[str, Any], Dict[str, array]]]:
    """Parse a blob back into (scalars, name -> array); None if invalid."""
    try:
        if blob[:4] != MAGIC:
            return None
        meta_len = int.from_bytes(blob[4:8], "little")
        meta = json.loads(blob[8:8 + meta_len].decode("utf-8"))
        if meta.get("schema") != SCHEMA_VERSION or meta.get("artifact") != kind:
            return None
        arrays: Dict[str, array] = {}
        cursor = 8 + meta_len
        for name, typecode, count in meta["arrays"]:
            packed = array(typecode)
            size = count * packed.itemsize
            if cursor + size > len(blob):
                return None
            packed.frombytes(blob[cursor:cursor + size])
            if meta.get("endian") != sys.byteorder:
                packed.byteswap()
            arrays[name] = packed
            cursor += size
        if cursor != len(blob):
            return None
        return meta["scalars"], arrays
    except (ValueError, TypeError, KeyError, IndexError, OverflowError):
        return None


# -- keys ------------------------------------------------------------------


def scope_payload(llc_bytes: int, accesses: int, seed: int) -> Dict[str, int]:
    """Trace *generation scope*: the Stage-1 key fields shared by every
    segment of one (suite, sizing) combination.  The runner and the
    graph planner must hash identical scopes, so both build them here."""
    return {"llc_bytes": llc_bytes, "accesses": accesses, "seed": seed}


def ingest_scope(ingest_payload: Dict[str, Any]) -> Dict[str, Any]:
    """Stage-1 scope for an *ingested* workload's segments.

    Real-trace content is fixed by (digest, window) alone — the
    synthetic generation scope's LLC sizing and seed play no part —
    so keying on the ingest payload maximizes Stage-1 sharing across
    differently-sized runs over the same trace file."""
    return {"ingest": ingest_payload}


def trace_key(trace_payload: Dict[str, Any]) -> str:
    return stable_hash({
        "schema": SCHEMA_VERSION,
        "artifact": "trace",
        "trace": trace_payload,
    })


def stage1_key(scope: Dict[str, Any], segment_name: str,
               hierarchy_payload: Dict[str, int], prefetch: bool) -> str:
    return stable_hash({
        "schema": SCHEMA_VERSION,
        "artifact": "stage1",
        "scope": scope,
        "segment": segment_name,
        "hierarchy": hierarchy_payload,
        "prefetch": prefetch,
    })


# -- trace <-> blob --------------------------------------------------------


def pack_segments(segments: Sequence[Segment]) -> bytes:
    """Pack one benchmark's weighted segments (names/weights in meta)."""
    arrays: List[Tuple[str, str, Sequence[int]]] = []
    for i, segment in enumerate(segments):
        trace = segment.trace
        flags = [
            (_F_WRITE if write else 0) | (_F_DEP if dep else 0)
            for write, dep in zip(trace.writes, trace.deps)
        ]
        arrays.append((f"{i}:pcs", "Q", trace.pcs))
        arrays.append((f"{i}:addresses", "Q", trace.addresses))
        arrays.append((f"{i}:gaps", "Q", trace.gaps))
        arrays.append((f"{i}:flags", "B", flags))
    scalars = {
        "names": [segment.name for segment in segments],
        "weights": [segment.weight for segment in segments],
    }
    return pack_artifact("trace", scalars, arrays)


def unpack_segments(blob: bytes) -> Optional[List[Segment]]:
    parsed = unpack_artifact(blob, "trace")
    if parsed is None:
        return None
    scalars, arrays = parsed
    try:
        segments: List[Segment] = []
        for i, (name, weight) in enumerate(zip(scalars["names"],
                                               scalars["weights"])):
            flags = arrays[f"{i}:flags"]
            trace = Trace(
                name,
                arrays[f"{i}:pcs"].tolist(),
                arrays[f"{i}:addresses"].tolist(),
                [bool(f & _F_WRITE) for f in flags],
                arrays[f"{i}:gaps"].tolist(),
                [bool(f & _F_DEP) for f in flags],
            )
            segments.append(Segment(name, trace, weight))
        return segments
    except (KeyError, ValueError, TypeError):
        return None


# -- UpperLevelResult <-> blob ---------------------------------------------


def pack_upper(upper: UpperLevelResult) -> bytes:
    stream = upper.llc_stream
    flags = [
        (_F_WRITE if access.is_write else 0)
        | (_F_PREFETCH if access.is_prefetch else 0)
        for access in stream
    ]
    arrays: List[Tuple[str, str, Sequence[int]]] = [
        ("service", "q", upper.service),
        ("instr_indices", "q", upper.instr_indices),
        ("s_pc", "Q", [access.pc for access in stream]),
        ("s_block", "Q", [access.block for access in stream]),
        ("s_offset", "B", [access.offset for access in stream]),
        ("s_flags", "B", flags),
        ("s_mem", "q", [access.mem_index for access in stream]),
        ("s_instr", "q", [access.instr_index for access in stream]),
    ]
    scalars = {
        "num_instructions": upper.num_instructions,
        "l1_hits": upper.l1_hits,
        "l1_misses": upper.l1_misses,
        "l2_hits": upper.l2_hits,
        "l2_misses": upper.l2_misses,
        "prefetches_issued": upper.prefetches_issued,
    }
    return pack_artifact("stage1", scalars, arrays)


def unpack_upper(blob: bytes) -> Optional[UpperLevelResult]:
    parsed = unpack_artifact(blob, "stage1")
    if parsed is None:
        return None
    scalars, arrays = parsed
    try:
        stream = [
            LLCAccess(
                pc=pc,
                block=block,
                offset=offset,
                is_write=bool(flag & _F_WRITE),
                is_prefetch=bool(flag & _F_PREFETCH),
                mem_index=mem,
                instr_index=instr,
            )
            for pc, block, offset, flag, mem, instr in zip(
                arrays["s_pc"], arrays["s_block"], arrays["s_offset"],
                arrays["s_flags"], arrays["s_mem"], arrays["s_instr"],
            )
        ]
        return UpperLevelResult(
            service=arrays["service"].tolist(),
            instr_indices=arrays["instr_indices"].tolist(),
            llc_stream=stream,
            num_instructions=scalars["num_instructions"],
            l1_hits=scalars["l1_hits"],
            l1_misses=scalars["l1_misses"],
            l2_hits=scalars["l2_hits"],
            l2_misses=scalars["l2_misses"],
            prefetches_issued=scalars["prefetches_issued"],
        )
    except (KeyError, ValueError, TypeError):
        return None


# -- the cache -------------------------------------------------------------


def peek_kind(path) -> Optional[str]:
    """Artifact kind of a blob file from its frame header, or ``None``.

    Reads only the header + meta (never the payload), so inspecting a
    large cache stays cheap.  Used by ``repro.cli cache stats``.
    """
    try:
        with open(path, "rb") as handle:
            header = handle.read(8)
            if header[:4] != MAGIC:
                return None
            meta_len = int.from_bytes(header[4:8], "little")
            if meta_len > 1_000_000:
                return None
            meta = json.loads(handle.read(meta_len).decode("utf-8"))
        kind = meta.get("artifact")
        return kind if isinstance(kind, str) else None
    except (OSError, ValueError, TypeError):
        return None


@dataclass
class ArtifactStats:
    """Hit/miss counters per artifact kind, over one cache lifetime.

    Also accumulates blob-read throughput samples (bytes and
    microseconds spent in successful store reads) — the graph
    scheduler's cost model learns the store's load speed from them.
    """

    trace_hits: int = 0
    trace_misses: int = 0
    stage1_hits: int = 0
    stage1_misses: int = 0
    read_bytes: int = 0
    read_us: int = 0
    # Shared-tier reads (a TieredResultStore serving a local miss from
    # the shared directory) are sampled separately: the cost model
    # learns a distinct read throughput per tier.
    shared_hits: int = 0
    shared_read_bytes: int = 0
    shared_read_us: int = 0

    def counts(self) -> Dict[str, int]:
        return {
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
            "stage1_hits": self.stage1_hits,
            "stage1_misses": self.stage1_misses,
            "read_bytes": self.read_bytes,
            "read_us": self.read_us,
            "shared_hits": self.shared_hits,
            "shared_read_bytes": self.shared_read_bytes,
            "shared_read_us": self.shared_read_us,
        }


class ArtifactCache:
    """Trace and Stage-1 artifacts over one :class:`ResultStore`.

    Lookups that fail for *any* reason (absent, stale schema, corrupt)
    count as misses; after a miss the caller computes the artifact and
    stores it back, so the cache is self-healing and the simulation
    result never depends on whether a lookup succeeded.

    ``deny_loads`` is the graph scheduler's plan hook: keys in the set
    are treated as misses without touching the store, forcing the
    planned recompute when loading was judged slower.  Denied or not,
    results are bit-identical — only the source of the bytes changes.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self.stats = ArtifactStats()
        self.deny_loads: frozenset = frozenset()

    def _read(self, key: str) -> Optional[bytes]:
        """Plan-aware, throughput-timed store read.

        With a tiered store, reads served by the shared tier are
        sampled into the ``shared_*`` counters instead of the local
        ones — per-tier throughput is what lets the graph planner
        price a remote load honestly.
        """
        if key in self.deny_loads:
            return None
        start = time.perf_counter()
        blob = self.store.get_bytes(key)
        if blob is not None:
            elapsed_us = int((time.perf_counter() - start) * 1e6)
            if getattr(self.store, "last_tier", "local") == "shared":
                self.stats.shared_hits += 1
                self.stats.shared_read_bytes += len(blob)
                self.stats.shared_read_us += elapsed_us
            else:
                self.stats.read_bytes += len(blob)
                self.stats.read_us += elapsed_us
        return blob

    # -- traces -----------------------------------------------------------

    def load_segments(self, trace_payload: Dict[str, Any]
                      ) -> Optional[List[Segment]]:
        blob = self._read(trace_key(trace_payload))
        segments = None if blob is None else unpack_segments(blob)
        if segments is None:
            self.stats.trace_misses += 1
        else:
            self.stats.trace_hits += 1
        return segments

    def store_segments(self, trace_payload: Dict[str, Any],
                       segments: Sequence[Segment]) -> None:
        self.store.put_bytes(trace_key(trace_payload), pack_segments(segments))

    # -- stage-1 results --------------------------------------------------

    def load_upper(self, scope: Dict[str, Any], segment_name: str,
                   hierarchy_payload: Dict[str, int],
                   prefetch: bool) -> Optional[UpperLevelResult]:
        key = stage1_key(scope, segment_name, hierarchy_payload, prefetch)
        blob = self._read(key)
        upper = None if blob is None else unpack_upper(blob)
        if upper is None:
            self.stats.stage1_misses += 1
        else:
            self.stats.stage1_hits += 1
        return upper

    def store_upper(self, scope: Dict[str, Any], segment_name: str,
                    hierarchy_payload: Dict[str, int], prefetch: bool,
                    upper: UpperLevelResult) -> None:
        key = stage1_key(scope, segment_name, hierarchy_payload, prefetch)
        self.store.put_bytes(key, pack_upper(upper))

    def stage1_store(self, scope: Dict[str, Any],
                     hierarchy: HierarchyConfig,
                     prefetch: bool,
                     scope_overrides: Optional[Dict[str, Dict[str, Any]]]
                     = None) -> "Stage1ArtifactStore":
        return Stage1ArtifactStore(self, scope, hierarchy, prefetch,
                                   scope_overrides)


class Stage1ArtifactStore:
    """Per-(scope, hierarchy) adapter the simulation runners plug in.

    :class:`~repro.sim.single.SingleThreadRunner` and
    :class:`~repro.sim.multi.MultiProgrammedRunner` consult ``load``
    before running Stage 1 and call ``save`` after computing it; their
    own in-memory memoization still sits in front, so within one runner
    each segment is (de)serialized at most once.

    ``scope_overrides`` maps a *workload name* (the part of a segment
    name before the first dot) to a replacement scope — how a mixed
    suite keys its synthetic segments by generation scope and its
    ingested segments by content digest in one store.
    """

    def __init__(self, cache: ArtifactCache, scope: Dict[str, Any],
                 hierarchy: HierarchyConfig, prefetch: bool,
                 scope_overrides: Optional[Dict[str, Dict[str, Any]]]
                 = None) -> None:
        self.cache = cache
        self.scope = scope
        self.scope_overrides = scope_overrides or {}
        self.hierarchy_payload = dataclasses.asdict(hierarchy)
        self.prefetch = prefetch

    def _scope_for(self, segment_name: str) -> Dict[str, Any]:
        if not self.scope_overrides:
            return self.scope
        workload = segment_name.split(".", 1)[0]
        return self.scope_overrides.get(workload, self.scope)

    def load(self, segment: Segment) -> Optional[UpperLevelResult]:
        return self.cache.load_upper(self._scope_for(segment.name),
                                     segment.name,
                                     self.hierarchy_payload, self.prefetch)

    def save(self, segment: Segment, upper: UpperLevelResult) -> None:
        self.cache.store_upper(self._scope_for(segment.name), segment.name,
                               self.hierarchy_payload, self.prefetch, upper)
