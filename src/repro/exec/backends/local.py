"""``LocalPoolBackend``: today's ``ProcessPoolExecutor``, behind the
:class:`~repro.exec.backends.base.ExecutionBackend` interface.

This is the default backend and the bit-identity reference: it submits
the same :func:`~repro.exec.runner._execute_cell` call the pre-backend
drive loop made, through the same executor, so refactoring the runner
onto the interface changes nothing observable.  ``BrokenProcessPool``
surfaces as ``lost`` frames; the runner's requeue + rebuild machinery
handles them exactly as before.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional

from repro.exec.backends.base import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    ExecutionBackend,
    Frame,
)


def _execute_request(request: Dict[str, Any]) -> Any:
    """Pool-worker entry point: decode one request dict and run it."""
    from repro.exec.worker import execute_request

    return execute_request(request)


class LocalPoolBackend(ExecutionBackend):
    """Worker slots backed by a local :class:`ProcessPoolExecutor`."""

    name = "local"

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Dict[Future, int] = {}

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, task_id: int, request: Any) -> None:
        if self._pool is None:
            raise BackendUnavailable("local pool is not running")
        try:
            future = self._pool.submit(_execute_request, request)
        except Exception as exc:
            raise BackendUnavailable(f"local pool rejected work: {exc}")
        self._futures[future] = task_id

    def poll(self, timeout: Optional[float]) -> List[Frame]:
        if not self._futures:
            return []
        done, _ = wait(set(self._futures), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        frames: List[Frame] = []
        for future in done:
            task_id = self._futures.pop(future)
            try:
                payload = future.result()
            except BrokenProcessPool:
                frames.append(Frame(task_id, FRAME_LOST,
                                    "process pool broke under this cell"))
            except Exception as exc:
                frames.append(Frame(task_id, FRAME_ERROR, exc))
            else:
                frames.append(Frame(task_id, FRAME_OK, payload))
        return frames

    def in_flight(self) -> List[int]:
        return list(self._futures.values())

    def discard(self, task_id: int, kill: bool = True) -> None:
        # Dropping the future from the map filters any late completion;
        # the pool reclaims the slot when the function returns either
        # way, so hard and soft discards coincide here.
        for future, tid in list(self._futures.items()):
            if tid == task_id:
                if kill:
                    future.cancel()
                del self._futures[future]
                return

    def rebuild(self) -> List[int]:
        dropped = list(self._futures.values())
        self._futures.clear()
        self._teardown()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return dropped

    def close(self) -> None:
        self._futures.clear()
        self._teardown()

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # Workers may be dead or hung; terminate before shutdown so a
        # straggler cannot wedge the parent.
        processes = dict(getattr(pool, "_processes", None) or {})
        for process in processes.values():
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
