"""Pluggable execution backends for the distributed experiment mesh.

Three transports behind one interface (see :mod:`.base`):

* ``local`` — :class:`LocalPoolBackend`, today's process pool
  (default, bit-identity reference);
* ``fleet`` — :class:`WorkerFleetBackend`, N long-lived worker
  subprocesses speaking the length-prefixed pickle framing protocol;
* ``ssh`` — :class:`SSHBackend`, the same protocol tunneled over
  ``ssh host python -m repro.exec.worker``.

Selection: ``--backend`` / ``REPRO_BACKEND`` picks the transport;
``--workers`` / ``REPRO_WORKERS`` sizes it (a slot count for fleet, a
``host[:slots],...`` spec for ssh).  The local backend sizes from
``--jobs`` as always.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exec.backends.base import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    ExecutionBackend,
    Frame,
)
from repro.exec.backends.fleet import (
    WorkerFleetBackend,
    knob_env,
    worker_command,
)
from repro.exec.backends.local import LocalPoolBackend
from repro.exec.backends.ssh import (
    SSHBackend,
    parse_worker_spec,
    total_slots,
)
from repro.exec.faults import ConfigError

BACKEND_NAMES = ("local", "fleet", "ssh")


def resolve_backend_name(backend: Optional[str] = None) -> str:
    """Effective backend name: explicit arg > ``REPRO_BACKEND`` > local."""
    name = (backend or os.environ.get("REPRO_BACKEND") or "local")
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown execution backend {name!r} "
            f"(expected one of {', '.join(BACKEND_NAMES)})")
    return name


def resolve_workers_spec(workers: Optional[str] = None) -> Optional[str]:
    """Effective worker spec: explicit arg > ``REPRO_WORKERS`` > none."""
    spec = workers if workers is not None else os.environ.get("REPRO_WORKERS")
    if spec is None:
        return None
    spec = spec.strip()
    return spec or None


def resolve_slots(name: str, jobs: int,
                  workers_spec: Optional[str]) -> int:
    """Worker-slot count for a backend choice.

    ``local`` sizes from ``jobs``.  ``fleet`` takes an integer worker
    count (falling back to ``jobs``).  ``ssh`` requires a host spec and
    sizes from the summed per-host slots.
    """
    if name == "local":
        return jobs
    if name == "fleet":
        if workers_spec is None:
            return jobs
        try:
            slots = int(workers_spec)
        except ValueError:
            raise ConfigError(
                f"--workers: fleet backend expects an integer worker "
                f"count, got {workers_spec!r}") from None
        if slots < 1:
            raise ConfigError("--workers: worker count must be >= 1")
        return slots
    if workers_spec is None:
        raise ConfigError(
            "--workers host[:slots],... is required for the ssh backend")
    return total_slots(workers_spec)


def create_backend(name: str, slots: int,
                   workers_spec: Optional[str]) -> ExecutionBackend:
    """Instantiate a started-but-not-running backend for ``slots``."""
    if name == "local":
        return LocalPoolBackend(slots)
    if name == "fleet":
        return WorkerFleetBackend([worker_command()] * slots)
    return SSHBackend(parse_worker_spec(workers_spec or ""))


__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ConfigError",
    "ExecutionBackend",
    "FRAME_ERROR",
    "FRAME_LOST",
    "FRAME_OK",
    "Frame",
    "LocalPoolBackend",
    "SSHBackend",
    "WorkerFleetBackend",
    "create_backend",
    "knob_env",
    "parse_worker_spec",
    "resolve_backend_name",
    "resolve_slots",
    "resolve_workers_spec",
    "total_slots",
    "worker_command",
]
