"""``WorkerFleetBackend``: N long-lived worker subprocesses speaking
the length-prefixed pickle framing protocol over stdin/stdout pipes.

This is the transport-agnostic core of the distributed mesh: the
backend only needs an argv per slot that starts
``python -m repro.exec.worker`` *somewhere* — a local subprocess here,
an ``ssh host ...`` tunnel in :mod:`repro.exec.backends.ssh`.  One
daemon reader thread per worker pumps inbound frames into a shared
queue; the drive loop's ``poll`` drains it.  A worker whose stream
ends (crash, kill, dropped connection, corrupt frame) surfaces as a
``lost`` frame for whatever task it was running, and the runner's
requeue + rebuild machinery — the same path that handles
``BrokenProcessPool`` — guarantees the cell still runs exactly once
per key.

Environment/knob propagation: after the ``hello`` handshake each
worker receives one ``config`` frame carrying a snapshot of the
parent's ``REPRO_*`` environment, so fault-injection specs, kernel
backends, scale knobs, and the shared-store tier behave identically on
every host.
"""

from __future__ import annotations

import os
import pickle
import queue
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.exec.backends.base import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    ExecutionBackend,
    Frame,
)
from repro.exec.faults import RemoteCellError
from repro.exec.protocol import FrameError, read_frame, write_frame

#: How long ``close`` waits for a worker to exit after stdin EOF
#: before escalating to terminate/kill.
_CLOSE_GRACE_S = 2.0


def worker_command() -> List[str]:
    """Argv that starts one local worker (monkeypatchable in tests)."""
    return [sys.executable, "-m", "repro.exec.worker"]


def knob_env() -> Dict[str, str]:
    """Snapshot of the ``REPRO_*`` knobs to propagate to workers."""
    return {name: value for name, value in os.environ.items()
            if name.startswith("REPRO_")}


@dataclass
class _Worker:
    """One slot: a subprocess plus its in-flight bookkeeping."""

    proc: subprocess.Popen
    index: int
    task_id: Optional[int] = None
    alive: bool = True
    ready: bool = False
    thread: Optional[threading.Thread] = field(default=None, repr=False)


class WorkerFleetBackend(ExecutionBackend):
    """Worker slots backed by long-lived framing-protocol subprocesses."""

    name = "fleet"

    def __init__(self, commands: Sequence[Sequence[str]],
                 env: Optional[Dict[str, str]] = None) -> None:
        if not commands:
            raise BackendUnavailable("worker fleet needs at least one slot")
        self._commands = [list(command) for command in commands]
        self._env = dict(env) if env is not None else knob_env()
        self.workers = len(self._commands)
        self._fleet: List[_Worker] = []
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._discarded: set = set()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._fleet:
            return
        for index, command in enumerate(self._commands):
            worker = self._spawn(index, command)
            if worker is None:
                self.close()
                raise BackendUnavailable(
                    f"worker slot {index} failed to start: "
                    f"{' '.join(command)}")
            self._fleet.append(worker)

    def _spawn(self, index: int, command: Sequence[str]
               ) -> Optional[_Worker]:
        try:
            proc = subprocess.Popen(list(command), stdin=subprocess.PIPE,
                                    stdout=subprocess.PIPE)
        except OSError:
            return None
        worker = _Worker(proc=proc, index=index)
        worker.thread = threading.Thread(
            target=self._pump, args=(worker,), daemon=True,
            name=f"repro-fleet-{index}")
        worker.thread.start()
        try:
            write_frame(proc.stdin, {"op": "config", "env": self._env})
        except Exception:
            self._shutdown_worker(worker)
            return None
        return worker

    def _pump(self, worker: _Worker) -> None:
        """Reader thread: inbound frames -> the shared event queue."""
        stream = worker.proc.stdout
        while True:
            try:
                message = read_frame(stream)
            except (FrameError, OSError, ValueError):
                # Truncated/corrupt stream or closed pipe: the worker
                # is gone for our purposes.
                message = None
            self._events.put((worker, message))
            if message is None:
                return

    # -- work --------------------------------------------------------------

    def submit(self, task_id: int, request: Any) -> None:
        worker = self._idle_worker()
        if worker is None:
            raise BackendUnavailable("no live idle worker slot")
        frame = {"op": "run", "id": task_id,
                 "task": pickle.dumps(request,
                                      protocol=pickle.HIGHEST_PROTOCOL)}
        try:
            write_frame(worker.proc.stdin, frame)
        except Exception as exc:
            worker.alive = False
            raise BackendUnavailable(
                f"worker slot {worker.index} rejected work: {exc}")
        worker.task_id = task_id

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._fleet:
            if worker.alive and worker.task_id is None:
                return worker
        return None

    def poll(self, timeout: Optional[float]) -> List[Frame]:
        frames: List[Frame] = []
        block = any(worker.task_id is not None for worker in self._fleet
                    if worker.alive) or timeout is not None
        try:
            event = self._events.get(timeout=timeout) if block \
                else self._events.get_nowait()
        except queue.Empty:
            return frames
        while True:
            frame = self._handle_event(*event)
            if frame is not None:
                frames.append(frame)
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                return frames

    def _handle_event(self, worker: _Worker, message: Any
                      ) -> Optional[Frame]:
        if message is None:
            # Stream ended: worker death.  Whatever it was running is
            # lost; an idle worker's death just shrinks capacity until
            # the next rebuild.
            worker.alive = False
            task_id, worker.task_id = worker.task_id, None
            if task_id is None or task_id in self._discarded:
                self._discarded.discard(task_id)
                return None
            return Frame(task_id, FRAME_LOST,
                         f"worker slot {worker.index} died mid-cell")
        op = message.get("op") if isinstance(message, dict) else None
        if op == "hello":
            worker.ready = True
            return None
        if op not in ("result", "error"):
            return None
        task_id = message.get("id")
        if task_id is None:
            task_id = worker.task_id
        if worker.task_id == task_id:
            worker.task_id = None
        if task_id is None or task_id in self._discarded:
            self._discarded.discard(task_id)
            return None
        if op == "result":
            return Frame(task_id, FRAME_OK, message.get("payload"))
        exc = RemoteCellError(
            exc_type=str(message.get("exc_type", "RuntimeError")),
            message=str(message.get("message", "")),
            remote_traceback=str(message.get("traceback", "")))
        return Frame(task_id, FRAME_ERROR, exc)

    def in_flight(self) -> List[int]:
        return [worker.task_id for worker in self._fleet
                if worker.task_id is not None
                and worker.task_id not in self._discarded]

    def discard(self, task_id: int) -> None:
        # The worker under a discarded (timed-out) task keeps crunching
        # until the next rebuild reclaims the slot; until then any late
        # completion for the task is filtered out here.
        self._discarded.add(task_id)
        for worker in self._fleet:
            if worker.task_id == task_id:
                worker.task_id = None
                worker.alive = False  # slot unusable until rebuild
                return

    def rebuild(self) -> List[int]:
        dropped = self.in_flight()
        self.close()
        self._discarded.clear()
        self.start()
        return dropped

    def close(self) -> None:
        fleet, self._fleet = self._fleet, []
        for worker in fleet:
            self._shutdown_worker(worker)
        # Drop queued events from the old generation of workers so a
        # post-rebuild poll cannot see stale frames.
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break

    @staticmethod
    def _shutdown_worker(worker: _Worker) -> None:
        proc = worker.proc
        # An idle healthy worker exits cleanly on stdin EOF; a busy or
        # broken one (hung cell, dead pipe) gets terminated outright —
        # waiting politely on a straggler is exactly what the watchdog
        # rebuild exists to avoid.
        graceful = worker.alive and worker.task_id is None
        worker.alive = False
        try:
            if proc.stdin is not None:
                proc.stdin.close()  # EOF => clean worker exit
        except Exception:
            pass
        if not graceful:
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            proc.wait(timeout=_CLOSE_GRACE_S)
        except Exception:
            try:
                proc.kill()
                proc.wait(timeout=_CLOSE_GRACE_S)
            except Exception:
                pass
        try:
            if proc.stdout is not None:
                proc.stdout.close()
        except Exception:
            pass
