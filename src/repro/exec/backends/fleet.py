"""``WorkerFleetBackend``: N long-lived worker subprocesses speaking
the length-prefixed pickle framing protocol over stdin/stdout pipes.

This is the transport-agnostic core of the distributed mesh: the
backend only needs an argv per slot that starts
``python -m repro.exec.worker`` *somewhere* — a local subprocess here,
an ``ssh host ...`` tunnel in :mod:`repro.exec.backends.ssh`.  One
daemon reader thread per worker pumps inbound frames into a shared
queue; the drive loop's ``poll`` drains it.  A worker whose stream
ends (crash, kill, dropped connection, corrupt frame) surfaces as a
``lost`` frame for whatever task it was running, and the runner's
requeue + rebuild machinery — the same path that handles
``BrokenProcessPool`` — guarantees the cell still runs exactly once
per key.

Environment/knob propagation: after the ``hello`` handshake each
worker receives one ``config`` frame carrying a snapshot of the
parent's ``REPRO_*`` environment, so fault-injection specs, kernel
backends, scale knobs, and the shared-store tier behave identically on
every host.
"""

from __future__ import annotations

import os
import pickle
import queue
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence

from repro.exec import health
from repro.exec.backends.base import (
    FRAME_ERROR,
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    ExecutionBackend,
    Frame,
)
from repro.exec.faults import RemoteCellError
from repro.exec.protocol import FrameError, read_frame, write_frame

#: How long ``close`` waits for a worker to exit after stdin EOF
#: before escalating to terminate/kill.
_CLOSE_GRACE_S = 2.0

#: Lines of worker stderr retained per slot for failure diagnosis.
_STDERR_TAIL_LINES = 20

#: Marker embedded in heartbeat-timeout lost frames so the runner can
#: count them separately from plain worker deaths.
HEARTBEAT_LOST = "heartbeat-lost"


def worker_command() -> List[str]:
    """Argv that starts one local worker (monkeypatchable in tests)."""
    return [sys.executable, "-m", "repro.exec.worker"]


def knob_env() -> Dict[str, str]:
    """Snapshot of the ``REPRO_*`` knobs to propagate to workers."""
    return {name: value for name, value in os.environ.items()
            if name.startswith("REPRO_")}


@dataclass
class _Worker:
    """One slot: a subprocess plus its in-flight bookkeeping."""

    proc: subprocess.Popen
    index: int
    task_id: Optional[int] = None
    alive: bool = True
    ready: bool = False
    last_seen: float = 0.0
    thread: Optional[threading.Thread] = field(default=None, repr=False)
    stderr_thread: Optional[threading.Thread] = field(default=None,
                                                      repr=False)
    stderr_tail: Deque[str] = field(
        default_factory=lambda: deque(maxlen=_STDERR_TAIL_LINES),
        repr=False)


class WorkerFleetBackend(ExecutionBackend):
    """Worker slots backed by long-lived framing-protocol subprocesses."""

    name = "fleet"

    def __init__(self, commands: Sequence[Sequence[str]],
                 env: Optional[Dict[str, str]] = None) -> None:
        if not commands:
            raise BackendUnavailable("worker fleet needs at least one slot")
        self._commands = [list(command) for command in commands]
        self._env = dict(env) if env is not None else knob_env()
        self.workers = len(self._commands)
        self._fleet: List[_Worker] = []
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._discarded: set = set()
        self._hb_timeout = health.heartbeat_timeout()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._fleet:
            return
        for index, command in enumerate(self._commands):
            worker = self._spawn(index, command)
            if worker is None:
                self.close()
                raise BackendUnavailable(
                    f"worker slot {index} failed to start: "
                    f"{' '.join(command)}")
            self._fleet.append(worker)

    def _spawn(self, index: int, command: Sequence[str]
               ) -> Optional[_Worker]:
        try:
            proc = subprocess.Popen(list(command), stdin=subprocess.PIPE,
                                    stdout=subprocess.PIPE,
                                    stderr=subprocess.PIPE)
        except OSError:
            return None
        worker = _Worker(proc=proc, index=index)
        worker.last_seen = time.monotonic()
        worker.thread = threading.Thread(
            target=self._pump, args=(worker,), daemon=True,
            name=f"repro-fleet-{index}")
        worker.thread.start()
        worker.stderr_thread = threading.Thread(
            target=self._drain_stderr, args=(worker,), daemon=True,
            name=f"repro-fleet-{index}-stderr")
        worker.stderr_thread.start()
        try:
            write_frame(proc.stdin, {"op": "config", "env": self._env})
        except Exception:
            self._shutdown_worker(worker)
            return None
        return worker

    def _pump(self, worker: _Worker) -> None:
        """Reader thread: inbound frames -> the shared event queue."""
        stream = worker.proc.stdout
        while True:
            try:
                message = read_frame(stream)
            except (FrameError, OSError, ValueError):
                # Truncated/corrupt stream or closed pipe: the worker
                # is gone for our purposes.
                message = None
            if message is not None:
                # Any inbound frame — result, error, heartbeat — proves
                # the worker is alive; the timestamp feeds the parent's
                # heartbeat timeout.
                worker.last_seen = time.monotonic()
            self._events.put((worker, message))
            if message is None:
                return

    @staticmethod
    def _drain_stderr(worker: _Worker) -> None:
        """Reader thread: worker stderr -> tail ring + parent stderr.

        The pass-through keeps worker diagnostics visible exactly as
        when stderr was inherited; the ring keeps the final lines
        available after the process is gone, which is when they matter.
        """
        stream = worker.proc.stderr
        if stream is None:
            return
        try:
            for raw in iter(stream.readline, b""):
                line = raw.decode("utf-8", errors="replace").rstrip("\n")
                worker.stderr_tail.append(line)
                try:
                    print(line, file=sys.stderr)
                except Exception:
                    pass  # interpreter shutdown; keep the ring anyway
        except Exception:
            pass
        try:
            stream.close()
        except Exception:
            pass

    @staticmethod
    def _stderr_tail(worker: _Worker) -> str:
        """Render a worker's retained stderr tail for failure messages."""
        if worker.stderr_thread is not None:
            # The pipe usually drains within moments of death; give it
            # a beat so the tail includes the worker's last words.
            worker.stderr_thread.join(timeout=0.2)
        lines = list(worker.stderr_tail)
        if not lines:
            return ""
        return ("worker stderr tail:\n  "
                + "\n  ".join(lines))

    # -- work --------------------------------------------------------------

    def submit(self, task_id: int, request: Any) -> None:
        worker = self._idle_worker()
        if worker is None:
            raise BackendUnavailable("no live idle worker slot")
        frame = {"op": "run", "id": task_id,
                 "task": pickle.dumps(request,
                                      protocol=pickle.HIGHEST_PROTOCOL)}
        try:
            write_frame(worker.proc.stdin, frame)
        except Exception as exc:
            worker.alive = False
            tail = self._stderr_tail(worker)
            raise BackendUnavailable(
                f"worker slot {worker.index} rejected work: {exc}"
                + (f"\n{tail}" if tail else ""))
        worker.task_id = task_id
        worker.last_seen = time.monotonic()

    def _idle_worker(self) -> Optional[_Worker]:
        for worker in self._fleet:
            if worker.alive and worker.task_id is None:
                return worker
        return None

    def poll(self, timeout: Optional[float]) -> List[Frame]:
        frames: List[Frame] = []
        block = any(worker.task_id is not None for worker in self._fleet
                    if worker.alive) or timeout is not None
        # With heartbeats on, a blocking poll must wake often enough to
        # notice a slot going silent even when no frames arrive at all
        # (a partitioned worker sends nothing) — cap the wait at a
        # fraction of the timeout budget.
        if self._hb_timeout is not None and block:
            quantum = min(max(self._hb_timeout / 4.0, 0.05), 1.0)
            timeout = quantum if timeout is None else min(timeout, quantum)
        try:
            event = self._events.get(timeout=timeout) if block \
                else self._events.get_nowait()
        except queue.Empty:
            frames.extend(self._check_heartbeats())
            return frames
        while True:
            frame = self._handle_event(*event)
            if frame is not None:
                frames.append(frame)
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                frames.extend(self._check_heartbeats())
                return frames

    def _check_heartbeats(self) -> List[Frame]:
        """Declare busy-but-silent slots lost after the heartbeat timeout.

        The slot's process is killed outright: it is either dead
        already, frozen, or partitioned from us, and its task is about
        to be requeued — letting it linger risks a duplicate late
        result after the task re-runs.  The kill's stream EOF surfaces
        as a ``None`` event whose task id is already cleared, so death
        is not double-reported.
        """
        if self._hb_timeout is None:
            return []
        frames: List[Frame] = []
        now = time.monotonic()
        for worker in self._fleet:
            if not worker.alive or worker.task_id is None:
                continue
            silent = now - worker.last_seen
            if silent < self._hb_timeout:
                continue
            task_id, worker.task_id = worker.task_id, None
            worker.alive = False
            try:
                worker.proc.kill()
            except Exception:
                pass
            if task_id in self._discarded:
                self._discarded.discard(task_id)
                continue
            reason = (f"worker slot {worker.index} {HEARTBEAT_LOST}: "
                      f"silent for {silent:.1f}s "
                      f"(timeout {self._hb_timeout:.1f}s)")
            tail = self._stderr_tail(worker)
            if tail:
                reason += "\n" + tail
            frames.append(Frame(task_id, FRAME_LOST, reason))
        return frames

    def _handle_event(self, worker: _Worker, message: Any
                      ) -> Optional[Frame]:
        if message is None:
            # Stream ended: worker death.  Whatever it was running is
            # lost; an idle worker's death just shrinks capacity until
            # the next rebuild.
            worker.alive = False
            task_id, worker.task_id = worker.task_id, None
            if task_id is None or task_id in self._discarded:
                self._discarded.discard(task_id)
                return None
            reason = f"worker slot {worker.index} died mid-cell"
            tail = self._stderr_tail(worker)
            if tail:
                reason += "\n" + tail
            return Frame(task_id, FRAME_LOST, reason)
        op = message.get("op") if isinstance(message, dict) else None
        if op == "hello":
            worker.ready = True
            return None
        if op not in ("result", "error"):
            return None
        task_id = message.get("id")
        if task_id is None:
            task_id = worker.task_id
        if worker.task_id == task_id:
            worker.task_id = None
        if task_id is None or task_id in self._discarded:
            self._discarded.discard(task_id)
            return None
        if op == "result":
            return Frame(task_id, FRAME_OK, message.get("payload"))
        exc = RemoteCellError(
            exc_type=str(message.get("exc_type", "RuntimeError")),
            message=str(message.get("message", "")),
            remote_traceback=str(message.get("traceback", "")))
        return Frame(task_id, FRAME_ERROR, exc)

    def in_flight(self) -> List[int]:
        return [worker.task_id for worker in self._fleet
                if worker.task_id is not None
                and worker.task_id not in self._discarded]

    def discard(self, task_id: int, kill: bool = True) -> None:
        # The worker under a discarded (timed-out) task keeps crunching
        # until the next rebuild reclaims the slot; until then any late
        # completion for the task is filtered out here.  With
        # ``kill=False`` (a hedge race's losing copy) the slot stays
        # healthy: its eventual result frame is filtered by the
        # ``_discarded`` set and clears ``task_id``, freeing the slot
        # with no rebuild at all.
        self._discarded.add(task_id)
        if not kill:
            return
        for worker in self._fleet:
            if worker.task_id == task_id:
                worker.task_id = None
                worker.alive = False  # slot unusable until rebuild
                return

    def _await_ready(self, timeout: float) -> None:
        """Block until every slot's ``hello`` lands; fail fast otherwise.

        Used by the SSH backend's ``start()`` so an unreachable host
        surfaces as a clean :class:`BackendUnavailable` within the
        connect timeout rather than a hang at first ``submit``.  Safe
        only before work is submitted (events drained here can only be
        hellos or deaths).
        """
        deadline = time.monotonic() + timeout
        while not all(worker.ready for worker in self._fleet):
            dead = next((w for w in self._fleet if not w.alive), None)
            if dead is not None:
                tail = self._stderr_tail(dead)
                index = dead.index
                self.close()
                raise BackendUnavailable(
                    f"worker slot {index} died before its hello"
                    + (f"\n{tail}" if tail else ""))
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                pending = [w.index for w in self._fleet if not w.ready]
                self.close()
                raise BackendUnavailable(
                    f"worker slot(s) {pending} not ready within "
                    f"{timeout:.0f}s")
            try:
                event = self._events.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            self._handle_event(*event)

    def rebuild(self) -> List[int]:
        dropped = self.in_flight()
        self.close()
        self._discarded.clear()
        self.start()
        return dropped

    def close(self) -> None:
        fleet, self._fleet = self._fleet, []
        for worker in fleet:
            self._shutdown_worker(worker)
        # Drop queued events from the old generation of workers so a
        # post-rebuild poll cannot see stale frames.
        while True:
            try:
                self._events.get_nowait()
            except queue.Empty:
                break

    @staticmethod
    def _shutdown_worker(worker: _Worker) -> None:
        proc = worker.proc
        # An idle healthy worker exits cleanly on stdin EOF; a busy or
        # broken one (hung cell, dead pipe) gets terminated outright —
        # waiting politely on a straggler is exactly what the watchdog
        # rebuild exists to avoid.
        graceful = worker.alive and worker.task_id is None
        worker.alive = False
        try:
            if proc.stdin is not None:
                proc.stdin.close()  # EOF => clean worker exit
        except Exception:
            pass
        if not graceful:
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            proc.wait(timeout=_CLOSE_GRACE_S)
        except Exception:
            try:
                proc.kill()
                proc.wait(timeout=_CLOSE_GRACE_S)
            except Exception:
                pass
        try:
            if proc.stdout is not None:
                proc.stdout.close()
        except Exception:
            pass
        if worker.stderr_thread is not None:
            # Let the drain thread finish the pipe (it closes it on
            # EOF); fall back to closing it ourselves if it is stuck.
            worker.stderr_thread.join(timeout=_CLOSE_GRACE_S)
        try:
            if proc.stderr is not None:
                proc.stderr.close()
        except Exception:
            pass
