"""The execution-backend interface the parallel drive loop speaks.

A backend owns a set of worker slots and moves *execution requests*
(picklable dicts built by the runner: cell, key, artifact roots,
attempt, telemetry flag, deny set) to wherever the work happens, then
streams completion :class:`Frame` records back.  The drive loop in
:class:`~repro.exec.runner.ParallelRunner` is backend-agnostic: it
keeps a sliding submission window, routes ``ok`` frames to settle,
``error`` frames through retry/failure handling, and ``lost`` frames
(a worker died under the task) through the requeue + rebuild machinery
that previously only knew about ``BrokenProcessPool``.

Contract highlights:

* ``submit`` either accepts the task or raises
  :class:`BackendUnavailable` (no capacity / broken transport); the
  caller requeues and triggers a rebuild.
* ``poll`` blocks up to ``timeout`` seconds (``None`` = until
  something completes) and returns every frame that is ready.  A frame
  is emitted at most once per submitted task id.
* ``rebuild`` tears down every worker, returns the task ids that were
  in flight (the caller decides whether their attempts are bumped),
  and restores full submission capacity.
* ``discard`` forgets an in-flight task: a late completion for it must
  not surface as a frame.  ``kill=True`` (watchdog expiry) may retire
  the slot until the next rebuild; ``kill=False`` (the losing copy of
  a hedge race) must leave the slot healthy — it frees up whenever the
  duplicate work finishes.
* ``close`` is idempotent and must never raise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, List, Optional

#: Frame statuses a backend may emit.
FRAME_OK = "ok"
FRAME_ERROR = "error"
FRAME_LOST = "lost"


class BackendUnavailable(RuntimeError):
    """The backend cannot accept or continue work until rebuilt."""


@dataclass
class Frame:
    """One completion record streamed back from a backend.

    ``payload`` depends on ``status``: the ``(result, seconds,
    artifact-delta, telemetry)`` tuple for ``ok``, an exception object
    for ``error`` (a :class:`~repro.exec.faults.RemoteCellError` when
    the failure happened across a process/host boundary), and a
    human-readable reason string for ``lost``.
    """

    task_id: int
    status: str
    payload: Any = None


class ExecutionBackend(ABC):
    """Pluggable transport executing pickled cells on worker slots."""

    #: Short name recorded in reports, manifests, and telemetry.
    name = "?"

    #: Number of worker slots (max in-flight submissions).
    workers = 0

    @abstractmethod
    def start(self) -> None:
        """Bring the worker slots up; raises if none can start."""

    @abstractmethod
    def submit(self, task_id: int, request: Any) -> None:
        """Dispatch one request; :class:`BackendUnavailable` if unable."""

    @abstractmethod
    def poll(self, timeout: Optional[float]) -> List[Frame]:
        """Frames completed within ``timeout`` seconds (None = block)."""

    @abstractmethod
    def in_flight(self) -> List[int]:
        """Task ids submitted but not yet resolved by a frame."""

    @abstractmethod
    def discard(self, task_id: int, kill: bool = True) -> None:
        """Forget an in-flight task; its late completion is dropped.

        ``kill=False`` is the soft variant for hedge-race losers: the
        task is forgotten but its slot stays usable.
        """

    @abstractmethod
    def rebuild(self) -> List[int]:
        """Restart every worker; returns the dropped in-flight ids."""

    @abstractmethod
    def close(self) -> None:
        """Tear everything down.  Idempotent; never raises."""
