"""``SSHBackend``: the fleet framing protocol tunneled over ``ssh``.

Each slot is one ``ssh host python -m repro.exec.worker`` subprocess;
stdin/stdout of the ssh client *are* the frame stream, so everything
in :class:`~repro.exec.backends.fleet.WorkerFleetBackend` — pumps,
worker-loss frames, config-frame knob propagation, rebuilds — works
unchanged.  The only new machinery is the host spec:

    --workers "hostA:4,hostB:2,hostC"

gives hostA four slots, hostB two, hostC one.  Knobs:

* ``REPRO_REMOTE_PYTHON`` — interpreter to run on the remote side
  (default ``python3``); the repo must be importable there (installed,
  or exported via a remote ``PYTHONPATH``).
* ``REPRO_SSH_COMMAND`` — the ssh client argv prefix (default
  ``ssh -o BatchMode=yes``); tests substitute a local command here to
  exercise the tunnel without an sshd.  An explicit prefix owns the
  whole client configuration — no extra options are appended to it.
* ``REPRO_SSH_CONNECT_TIMEOUT`` — seconds before an unreachable host
  fails (default 10): applied as ``-o ConnectTimeout=…`` on the
  default client command, and as the deadline for the worker ``hello``
  handshake that ``start()`` now enforces, so a dead host is a clean
  ``BackendUnavailable`` at startup instead of a hang at first submit.
"""

from __future__ import annotations

import os
import shlex
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import health
from repro.exec.backends.fleet import WorkerFleetBackend
from repro.exec.faults import ConfigError

DEFAULT_REMOTE_PYTHON = "python3"
DEFAULT_SSH_COMMAND = ("ssh", "-o", "BatchMode=yes")

#: Slack added to the connect timeout before the hello handshake is
#: declared failed — covers remote interpreter startup and module
#: import on a reachable host.
_READY_GRACE_S = 20.0


def parse_worker_spec(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host[:slots],...`` into ``[(host, slots), ...]``."""
    hosts: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, slots_text = part.rpartition(":")
        if not sep:
            host, slots_text = part, "1"
        try:
            slots = int(slots_text)
        except ValueError:
            raise ConfigError(
                f"--workers: bad slot count {slots_text!r} in {part!r} "
                f"(expected host or host:slots)") from None
        if not host or slots < 1:
            raise ConfigError(
                f"--workers: bad worker spec {part!r} "
                f"(expected host or host:slots with slots >= 1)")
        hosts.append((host, slots))
    if not hosts:
        raise ConfigError("--workers: empty worker spec")
    return hosts


def total_slots(spec: str) -> int:
    return sum(slots for _, slots in parse_worker_spec(spec))


class SSHBackend(WorkerFleetBackend):
    """Fleet slots launched on remote hosts through an ssh tunnel."""

    name = "ssh"

    def __init__(self, hosts: Sequence[Tuple[str, int]],
                 env: Optional[Dict[str, str]] = None,
                 python: Optional[str] = None,
                 ssh_command: Optional[Sequence[str]] = None) -> None:
        python = python or os.environ.get(
            "REPRO_REMOTE_PYTHON") or DEFAULT_REMOTE_PYTHON
        self._connect_timeout = health.ssh_connect_timeout()
        if ssh_command is None:
            override = os.environ.get("REPRO_SSH_COMMAND")
            if override:
                ssh_command = shlex.split(override)
            else:
                ssh_command = list(DEFAULT_SSH_COMMAND)
                if self._connect_timeout is not None:
                    ssh_command += [
                        "-o",
                        f"ConnectTimeout={int(self._connect_timeout)}"]
        commands = []
        for host, slots in hosts:
            command = list(ssh_command) + [host, python,
                                           "-m", "repro.exec.worker"]
            commands.extend([command] * slots)
        super().__init__(commands, env=env)

    def start(self) -> None:
        starting = not self._fleet
        super().start()
        if starting and self._connect_timeout is not None:
            self._await_ready(self._connect_timeout + _READY_GRACE_S)
