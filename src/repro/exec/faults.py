"""Deterministic fault injection and failure records for ``repro.exec``.

The fault-tolerance layer needs two things this module provides:

* **Structured failure records** — :class:`CellFailure` captures how a
  cell died (exception type, traceback, attempt count) instead of
  letting the exception abort the whole run, and
  :class:`CellExecutionError` is the typed exception raised in
  ``on_error="raise"`` mode (and by callers that cannot tolerate
  partial results, like the feature-search evaluator).

* **A deterministic fault-injection harness** — ``REPRO_FAULT_INJECT``
  describes faults to inject into cell execution so the test suite and
  CI can prove the hard invariant: a run with injected crashes,
  hangs, and retries produces results bit-identical to a clean run.

``REPRO_FAULT_INJECT`` grammar::

    spec    := clause (';' clause)*
    clause  := kind (':' option (',' option)*)?
    kind    := 'raise' | 'crash' | 'hang' | 'corrupt'
    option  := 'every=N' | 'phase=K' | 'times=T' | 'seconds=S'
             | 'key=HEXPREFIX'

Selection is *key-based*, never order-based: a rule fires for a cell
when its ``key=`` prefix matches the cell's cache key, or (without a
``key=``) when ``task_seed(key) % every == phase``.  ``times`` bounds
the attempts the rule fires on (attempts ``1..times``, default 1), so
a retried cell eventually runs clean; ``seconds`` is the hang
duration.  Keys and attempt numbers are deterministic, so the same
spec injects the same faults into the same cells regardless of worker
count or scheduling.

Kinds:

* ``raise`` — raise :class:`InjectedFault` inside the cell body
  (exercises retry and failure collection);
* ``crash`` — ``os._exit`` the worker process (exercises
  ``BrokenProcessPool`` recovery; degrades to ``raise`` when executed
  in-process so a serial run is not killed);
* ``hang`` — sleep ``seconds`` before running the cell (exercises the
  per-cell watchdog timeout);
* ``corrupt`` — after the result is stored, overwrite the blob with a
  kind-matching but undecodable payload (exercises the
  "corruption is a miss" re-execution path).

Examples::

    REPRO_FAULT_INJECT="raise:every=5"            # ~20% of cells fail once
    REPRO_FAULT_INJECT="crash:key=3fa2"           # kill the worker on one cell
    REPRO_FAULT_INJECT="hang:key=3fa2,seconds=30" # one straggler
    REPRO_FAULT_INJECT="raise:every=7;corrupt:every=11"
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exec.cachekey import task_seed

#: Exit status used by injected worker crashes (arbitrary, nonzero).
CRASH_EXIT_CODE = 13

#: ``result`` payload written by ``corrupt`` faults: the right shape to
#: pass the store's schema/kind checks, guaranteed to fail every cell's
#: ``decode``.
CORRUPT_RESULT = "__repro-fault-corrupt__"

FAULT_KINDS = ("raise", "crash", "hang", "corrupt")


class ConfigError(ValueError):
    """Invalid execution-layer configuration (flags or environment).

    Subclasses :class:`ValueError` for backward compatibility; the CLI
    catches it and prints a clean one-line error instead of a
    traceback.
    """


class InjectedFault(RuntimeError):
    """Exception raised by ``raise`` (and in-process ``crash``) faults."""


class RemoteCellError(RuntimeError):
    """A cell raised on the far side of a process/host boundary.

    Fleet and SSH workers cannot ship exception *objects* back (the
    type may not unpickle, and a hostile/corrupt stream must never
    drive arbitrary unpickling on the parent), so they ship structured
    fields instead.  This wrapper carries them; :func:`make_failure`
    unwraps it so the recorded :class:`CellFailure` names the original
    remote exception type — a run's failure records read the same
    whether the cell died in-process, in a pool worker, or on another
    host.
    """

    def __init__(self, exc_type: str, message: str,
                 remote_traceback: str = "") -> None:
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(message)


class CellExecutionError(RuntimeError):
    """A cell failed terminally (retries exhausted, not recoverable).

    Raised by ``on_error="raise"`` runs after in-flight work drains,
    and by callers (e.g. the search evaluator) that cannot proceed on
    partial results.  ``failure`` holds the first terminal
    :class:`CellFailure` when one is available.
    """

    def __init__(self, failure: Optional["CellFailure"] = None,
                 message: Optional[str] = None) -> None:
        self.failure = failure
        if message is None:
            message = ("cell execution failed" if failure is None
                       else failure.summary())
        super().__init__(message)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell's terminal failure."""

    label: str
    key: str
    kind: str            # "error" | "timeout"
    exc_type: str
    message: str
    traceback: str
    attempts: int
    seconds: float = 0.0

    def summary(self) -> str:
        return (f"{self.label}: {self.exc_type}: {self.message} "
                f"[{self.kind}, {self.attempts} attempt(s)]")


def make_failure(label: str, key: str, exc: BaseException, kind: str,
                 attempts: int, seconds: float = 0.0) -> CellFailure:
    """Build a :class:`CellFailure` from a caught exception.

    Exceptions re-raised from worker processes chain the remote
    traceback via ``__cause__``; ``format_exception`` renders the full
    chain, so the worker-side frames survive into the record.  A
    :class:`RemoteCellError` from a fleet/SSH worker is unwrapped to
    its carried remote type and traceback, so failure records are
    backend-independent.
    """
    if isinstance(exc, RemoteCellError):
        return CellFailure(label=label, key=key, kind=kind,
                           exc_type=exc.exc_type, message=str(exc),
                           traceback=exc.remote_traceback,
                           attempts=attempts, seconds=seconds)
    tb = "".join(traceback.format_exception(type(exc), exc,
                                            exc.__traceback__))
    return CellFailure(label=label, key=key, kind=kind,
                       exc_type=type(exc).__name__, message=str(exc),
                       traceback=tb, attempts=attempts, seconds=seconds)


# -- fault-injection spec --------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One clause of a ``REPRO_FAULT_INJECT`` spec."""

    kind: str
    every: int = 1
    phase: int = 0
    times: int = 1
    seconds: float = 3600.0
    key: str = ""

    def selects(self, key: str, attempt: int) -> bool:
        if attempt > self.times:
            return False
        if self.key:
            return key.startswith(self.key)
        return task_seed(key) % self.every == self.phase


def parse_fault_spec(spec: str) -> Tuple[FaultRule, ...]:
    """Parse a ``REPRO_FAULT_INJECT`` spec; :class:`ConfigError` if bad."""
    rules = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: unknown fault kind {kind!r} in "
                f"{clause!r} (expected one of {', '.join(FAULT_KINDS)})")
        options: Dict[str, str] = {}
        if rest:
            for option in rest.split(","):
                name, sep, value = option.partition("=")
                if not sep:
                    raise ConfigError(
                        f"REPRO_FAULT_INJECT: malformed option {option!r} "
                        f"in {clause!r} (expected name=value)")
                options[name.strip().lower()] = value.strip()
        try:
            rule = FaultRule(
                kind=kind,
                every=int(options.pop("every", 1)),
                phase=int(options.pop("phase", 0)),
                times=int(options.pop("times", 1)),
                seconds=float(options.pop("seconds", 3600.0)),
                key=options.pop("key", ""),
            )
        except ValueError:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: non-numeric option value in "
                f"{clause!r}") from None
        if options:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: unknown option(s) "
                f"{sorted(options)} in {clause!r}")
        if rule.every < 1:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: every must be >= 1 in {clause!r}")
        rules.append(rule)
    return tuple(rules)


@dataclass(frozen=True)
class FaultPlan:
    """Parsed spec plus the two injection hooks the runner calls."""

    rules: Tuple[FaultRule, ...]

    def fire(self, key: str, attempt: int, in_worker: bool = False) -> None:
        """Worker-side hook, called just before a cell executes.

        May raise :class:`InjectedFault`, kill the process, or sleep.
        ``corrupt`` rules are parent-side and never fire here.
        """
        for rule in self.rules:
            if rule.kind == "corrupt" or not rule.selects(key, attempt):
                continue
            if rule.kind == "hang":
                time.sleep(rule.seconds)
            elif rule.kind == "crash" and in_worker:
                os._exit(CRASH_EXIT_CODE)
            else:  # "raise", or "crash" outside a worker process
                raise InjectedFault(
                    f"injected {rule.kind} fault "
                    f"(key={key[:12]}, attempt={attempt})")

    def corrupts(self, key: str, attempt: int) -> bool:
        """Parent-side hook: corrupt this cell's stored result blob?"""
        return any(rule.kind == "corrupt" and rule.selects(key, attempt)
                   for rule in self.rules)


_PLANS: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULT_INJECT``, or ``None``.

    Parsed per call (workers may see a different environment than the
    parent) with a cache keyed by the raw spec string.
    """
    spec = os.environ.get("REPRO_FAULT_INJECT", "")
    if not spec.strip():
        return None
    plan = _PLANS.get(spec)
    if plan is None:
        plan = FaultPlan(parse_fault_spec(spec))
        _PLANS[spec] = plan
    return plan


def corrupt_result_blob(store: Any, key: str, kind: str) -> None:
    """Overwrite ``key``'s result blob with an undecodable payload.

    The payload keeps the correct schema stamp and cell ``kind`` so it
    defeats the store-level checks and exercises the decode layer,
    which must treat it as a cache miss and re-execute the cell.
    """
    store.put(key, {"kind": kind, "result": CORRUPT_RESULT})
