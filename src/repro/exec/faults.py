"""Deterministic fault injection and failure records for ``repro.exec``.

The fault-tolerance layer needs two things this module provides:

* **Structured failure records** — :class:`CellFailure` captures how a
  cell died (exception type, traceback, attempt count) instead of
  letting the exception abort the whole run, and
  :class:`CellExecutionError` is the typed exception raised in
  ``on_error="raise"`` mode (and by callers that cannot tolerate
  partial results, like the feature-search evaluator).

* **A deterministic fault-injection harness** — ``REPRO_FAULT_INJECT``
  describes faults to inject into cell execution so the test suite and
  CI can prove the hard invariant: a run with injected crashes,
  hangs, and retries produces results bit-identical to a clean run.

``REPRO_FAULT_INJECT`` grammar::

    spec    := clause (';' clause)*
    clause  := kind (':' option (',' option)*)?
    kind    := 'raise' | 'crash' | 'hang' | 'corrupt'
             | 'frame-drop' | 'frame-trunc' | 'frame-delay' | 'frame-dup'
             | 'hb-loss' | 'shared-fail'
    option  := 'every=N' | 'phase=K' | 'times=T' | 'seconds=S'
             | 'key=HEXPREFIX'

Selection is *key-based*, never order-based: a rule fires for a cell
when its ``key=`` prefix matches the cell's cache key, or (without a
``key=``) when ``task_seed(key) % every == phase``.  ``times`` bounds
the attempts the rule fires on (attempts ``1..times``, default 1), so
a retried cell eventually runs clean; ``seconds`` is the hang
duration.  Keys and attempt numbers are deterministic, so the same
spec injects the same faults into the same cells regardless of worker
count or scheduling.

Kinds:

* ``raise`` — raise :class:`InjectedFault` inside the cell body
  (exercises retry and failure collection);
* ``crash`` — ``os._exit`` the worker process (exercises
  ``BrokenProcessPool`` recovery; degrades to ``raise`` when executed
  in-process so a serial run is not killed);
* ``hang`` — sleep ``seconds`` before running the cell (exercises the
  per-cell watchdog timeout);
* ``corrupt`` — after the result is stored, overwrite the blob with a
  kind-matching but undecodable payload (exercises the
  "corruption is a miss" re-execution path).

Network-chaos kinds (DESIGN.md §16) simulate partitions and flaky
infrastructure rather than cell bugs:

* ``frame-drop`` — the worker silently discards the cell's result
  frame (a partition after compute: recovery needs heartbeats or the
  cell watchdog);
* ``frame-trunc`` — the worker writes a truncated result frame and
  dies (a torn write mid-stream: the parent sees ``FrameTruncated``
  and declares the slot lost);
* ``frame-delay`` — the worker sleeps ``seconds`` *after* running the
  cell, before writing the result (a slow link, distinct from ``hang``
  which stalls before compute);
* ``frame-dup`` — the worker writes the result frame twice (a
  retransmit; the parent must ignore the duplicate);
* ``hb-loss`` — the worker suppresses heartbeat frames for the
  selected cell while still computing (a one-way partition: the
  parent's heartbeat timeout must fire even though the cell would
  eventually finish);
* ``shared-fail`` — shared-tier store operations raise ``OSError``
  (a dead NFS mount: drives the circuit breaker).  Selection is
  per *operation*, not per cell: ``times`` bounds how many shared ops
  fail (default unlimited for this kind), ``key=`` restricts to
  matching cache keys.

Examples::

    REPRO_FAULT_INJECT="raise:every=5"            # ~20% of cells fail once
    REPRO_FAULT_INJECT="crash:key=3fa2"           # kill the worker on one cell
    REPRO_FAULT_INJECT="hang:key=3fa2,seconds=30" # one straggler
    REPRO_FAULT_INJECT="raise:every=7;corrupt:every=11"
    REPRO_FAULT_INJECT="frame-drop:every=6;hb-loss:every=4"
    REPRO_FAULT_INJECT="shared-fail"              # dead shared tier
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exec.cachekey import task_seed

#: Exit status used by injected worker crashes (arbitrary, nonzero).
CRASH_EXIT_CODE = 13

#: ``result`` payload written by ``corrupt`` faults: the right shape to
#: pass the store's schema/kind checks, guaranteed to fail every cell's
#: ``decode``.
CORRUPT_RESULT = "__repro-fault-corrupt__"

FAULT_KINDS = ("raise", "crash", "hang", "corrupt",
               "frame-drop", "frame-trunc", "frame-delay", "frame-dup",
               "hb-loss", "shared-fail")

#: Kinds that mangle the worker→parent result frame.
FRAME_KINDS = ("frame-drop", "frame-trunc", "frame-delay", "frame-dup")


class ConfigError(ValueError):
    """Invalid execution-layer configuration (flags or environment).

    Subclasses :class:`ValueError` for backward compatibility; the CLI
    catches it and prints a clean one-line error instead of a
    traceback.
    """


class InjectedFault(RuntimeError):
    """Exception raised by ``raise`` (and in-process ``crash``) faults."""


class RemoteCellError(RuntimeError):
    """A cell raised on the far side of a process/host boundary.

    Fleet and SSH workers cannot ship exception *objects* back (the
    type may not unpickle, and a hostile/corrupt stream must never
    drive arbitrary unpickling on the parent), so they ship structured
    fields instead.  This wrapper carries them; :func:`make_failure`
    unwraps it so the recorded :class:`CellFailure` names the original
    remote exception type — a run's failure records read the same
    whether the cell died in-process, in a pool worker, or on another
    host.
    """

    def __init__(self, exc_type: str, message: str,
                 remote_traceback: str = "") -> None:
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(message)


class CellExecutionError(RuntimeError):
    """A cell failed terminally (retries exhausted, not recoverable).

    Raised by ``on_error="raise"`` runs after in-flight work drains,
    and by callers (e.g. the search evaluator) that cannot proceed on
    partial results.  ``failure`` holds the first terminal
    :class:`CellFailure` when one is available.
    """

    def __init__(self, failure: Optional["CellFailure"] = None,
                 message: Optional[str] = None) -> None:
        self.failure = failure
        if message is None:
            message = ("cell execution failed" if failure is None
                       else failure.summary())
        super().__init__(message)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell's terminal failure."""

    label: str
    key: str
    kind: str            # "error" | "timeout"
    exc_type: str
    message: str
    traceback: str
    attempts: int
    seconds: float = 0.0

    def summary(self) -> str:
        return (f"{self.label}: {self.exc_type}: {self.message} "
                f"[{self.kind}, {self.attempts} attempt(s)]")


def make_failure(label: str, key: str, exc: BaseException, kind: str,
                 attempts: int, seconds: float = 0.0) -> CellFailure:
    """Build a :class:`CellFailure` from a caught exception.

    Exceptions re-raised from worker processes chain the remote
    traceback via ``__cause__``; ``format_exception`` renders the full
    chain, so the worker-side frames survive into the record.  A
    :class:`RemoteCellError` from a fleet/SSH worker is unwrapped to
    its carried remote type and traceback, so failure records are
    backend-independent.
    """
    if isinstance(exc, RemoteCellError):
        return CellFailure(label=label, key=key, kind=kind,
                           exc_type=exc.exc_type, message=str(exc),
                           traceback=exc.remote_traceback,
                           attempts=attempts, seconds=seconds)
    tb = "".join(traceback.format_exception(type(exc), exc,
                                            exc.__traceback__))
    return CellFailure(label=label, key=key, kind=kind,
                       exc_type=type(exc).__name__, message=str(exc),
                       traceback=tb, attempts=attempts, seconds=seconds)


# -- fault-injection spec --------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One clause of a ``REPRO_FAULT_INJECT`` spec."""

    kind: str
    every: int = 1
    phase: int = 0
    times: int = 1
    seconds: float = 3600.0
    key: str = ""

    def selects(self, key: str, attempt: int) -> bool:
        if attempt > self.times:
            return False
        if self.key:
            return key.startswith(self.key)
        return task_seed(key) % self.every == self.phase


def parse_fault_spec(spec: str) -> Tuple[FaultRule, ...]:
    """Parse a ``REPRO_FAULT_INJECT`` spec; :class:`ConfigError` if bad."""
    rules = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, _, rest = clause.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: unknown fault kind {kind!r} in "
                f"{clause!r} (expected one of {', '.join(FAULT_KINDS)})")
        options: Dict[str, str] = {}
        if rest:
            for option in rest.split(","):
                name, sep, value = option.partition("=")
                if not sep:
                    raise ConfigError(
                        f"REPRO_FAULT_INJECT: malformed option {option!r} "
                        f"in {clause!r} (expected name=value)")
                options[name.strip().lower()] = value.strip()
        # ``times`` for shared-fail counts failing *operations*, and a
        # dead mount fails every op — so its default is unlimited (0),
        # where cell-scoped kinds default to a single faulted attempt.
        default_times = 0 if kind == "shared-fail" else 1
        try:
            rule = FaultRule(
                kind=kind,
                every=int(options.pop("every", 1)),
                phase=int(options.pop("phase", 0)),
                times=int(options.pop("times", default_times)),
                seconds=float(options.pop("seconds", 3600.0)),
                key=options.pop("key", ""),
            )
        except ValueError:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: non-numeric option value in "
                f"{clause!r}") from None
        if options:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: unknown option(s) "
                f"{sorted(options)} in {clause!r}")
        if rule.every < 1:
            raise ConfigError(
                f"REPRO_FAULT_INJECT: every must be >= 1 in {clause!r}")
        rules.append(rule)
    return tuple(rules)


@dataclass(frozen=True)
class FaultPlan:
    """Parsed spec plus the two injection hooks the runner calls."""

    rules: Tuple[FaultRule, ...]

    def fire(self, key: str, attempt: int, in_worker: bool = False) -> None:
        """Worker-side hook, called just before a cell executes.

        May raise :class:`InjectedFault`, kill the process, or sleep.
        Only the execution kinds act here: ``corrupt`` is parent-side,
        and the chaos kinds have their own hooks below.
        """
        for rule in self.rules:
            if (rule.kind not in ("raise", "crash", "hang")
                    or not rule.selects(key, attempt)):
                continue
            if rule.kind == "hang":
                time.sleep(rule.seconds)
            elif rule.kind == "crash" and in_worker:
                os._exit(CRASH_EXIT_CODE)
            else:  # "raise", or "crash" outside a worker process
                raise InjectedFault(
                    f"injected {rule.kind} fault "
                    f"(key={key[:12]}, attempt={attempt})")

    def corrupts(self, key: str, attempt: int) -> bool:
        """Parent-side hook: corrupt this cell's stored result blob?"""
        return any(rule.kind == "corrupt" and rule.selects(key, attempt)
                   for rule in self.rules)

    def frame_action(self, key: str, attempt: int) -> Optional[FaultRule]:
        """Worker-side hook: how to mangle this cell's result frame.

        Returns the first matching ``frame-*`` rule (``rule.kind``
        names the action, ``rule.seconds`` the delay for
        ``frame-delay``), or ``None`` to write the frame normally.
        """
        for rule in self.rules:
            if rule.kind in FRAME_KINDS and rule.selects(key, attempt):
                return rule
        return None

    def suppresses_heartbeat(self, key: str, attempt: int) -> bool:
        """Worker-side hook: silence heartbeats while this cell runs?"""
        return any(rule.kind == "hb-loss" and rule.selects(key, attempt)
                   for rule in self.rules)

    def shared_fail(self, key: str = "") -> bool:
        """Should this shared-tier store operation fail?

        Unlike the cell-scoped hooks this charges a per-*operation*
        budget: each call that answers True consumes one of the rule's
        ``times`` (0 = unlimited).  ``key=`` restricts to matching
        cache keys (blob ops pass their logical name).
        """
        for rule in self.rules:
            if rule.kind != "shared-fail":
                continue
            if rule.key and not key.startswith(rule.key):
                continue
            spent = _SHARED_FAIL_SPENT.get(id(rule), 0)
            if rule.times and spent >= rule.times:
                continue
            _SHARED_FAIL_SPENT[id(rule)] = spent + 1
            return True
        return False


_PLANS: Dict[str, FaultPlan] = {}

#: shared-fail operations already charged, keyed by rule identity.
#: Plans are cached per spec string, so rule identity is stable for
#: the lifetime of a spec; tests switching specs get fresh budgets.
_SHARED_FAIL_SPENT: Dict[int, int] = {}


def reset_injection_state() -> None:
    """Forget charged shared-fail budgets (test isolation hook)."""
    _SHARED_FAIL_SPENT.clear()


def shared_tier_fault(key: str = "") -> None:
    """Raise ``OSError`` when an active ``shared-fail`` rule fires.

    The tiered store calls this before every shared-tier operation;
    with no active plan (the overwhelmingly common case) it is one
    ``os.environ`` lookup.
    """
    plan = active_plan()
    if plan is not None and plan.shared_fail(key):
        raise OSError("injected shared-tier fault (REPRO_FAULT_INJECT)")


def active_plan() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULT_INJECT``, or ``None``.

    Parsed per call (workers may see a different environment than the
    parent) with a cache keyed by the raw spec string.
    """
    spec = os.environ.get("REPRO_FAULT_INJECT", "")
    if not spec.strip():
        return None
    plan = _PLANS.get(spec)
    if plan is None:
        plan = FaultPlan(parse_fault_spec(spec))
        _PLANS[spec] = plan
    return plan


def corrupt_result_blob(store: Any, key: str, kind: str) -> None:
    """Overwrite ``key``'s result blob with an undecodable payload.

    The payload keeps the correct schema stamp and cell ``kind`` so it
    defeats the store-level checks and exercises the decode layer,
    which must treat it as a cache miss and re-execute the cell.
    """
    store.put(key, {"kind": kind, "result": CORRUPT_RESULT})
