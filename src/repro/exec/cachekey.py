"""Stable, content-addressed cache keys for experiment cells.

Every experiment cell (a single-thread benchmark run, a
multi-programmed mix replay, or a feature-search candidate
evaluation) is identified by the SHA-256 of a canonical JSON payload
describing *everything* that determines its result:

* the trace recipe (benchmark names, LLC sizing used for generation,
  access budget, generator seed),
* the cache hierarchy and timing configuration,
* the policy under test, including the full MPPPB configuration with
  features rendered in the paper's spec notation, and
* ``SCHEMA_VERSION``, which must be bumped whenever a simulator change
  alters results without changing any of the above.

Python's builtin ``hash`` is salted per process and therefore useless
here; canonical JSON + SHA-256 gives the same key across processes,
hosts, and sessions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.core.mpppb import MPPPBConfig
from repro.cpu.timing import TimingConfig
from repro.sim.hierarchy import HierarchyConfig

#: Bump whenever simulator semantics change in a way that invalidates
#: previously cached results (new timing model, trace generator tweaks,
#: policy behavior fixes, ...).  Old blobs are then treated as misses.
SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Render ``payload`` as order-independent, minimal JSON."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_hash(payload: Mapping) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def wellknown_key(name: str) -> str:
    """Key of a reserved singleton blob (not content-addressed).

    A few store entries are named registers rather than cached results
    — e.g. the graph scheduler's persisted cost model — and live at a
    fixed, schema-stamped key so every run against the same cache
    directory reads and refines the same blob.
    """
    return stable_hash({"schema": SCHEMA_VERSION, "wellknown": name})


def task_seed(key: str) -> int:
    """Deterministic 32-bit seed derived from a cell's cache key.

    Workers (and the bit-identical serial fallback) seed the global
    ``random`` module with this before running a cell, so any code
    that reaches for unseeded randomness still behaves reproducibly
    and identically regardless of which worker executes the cell.
    """
    return int(key[:8], 16)


def hierarchy_payload(hierarchy: HierarchyConfig) -> Dict[str, int]:
    return dataclasses.asdict(hierarchy)


def timing_payload(timing: Optional[TimingConfig]) -> Optional[Dict[str, int]]:
    """``None`` means the runner's default :class:`TimingConfig`."""
    return None if timing is None else dataclasses.asdict(timing)


def mpppb_payload(config: MPPPBConfig) -> Dict[str, Any]:
    """MPPPB tunables with features in the paper's spec notation."""
    return {
        "features": [feature.spec() for feature in config.features],
        "default_policy": config.default_policy,
        "tau_bypass": config.tau_bypass,
        "taus": list(config.taus),
        "placements": list(config.placements),
        "tau_no_promote": config.tau_no_promote,
        "sampler_sets": config.sampler_sets,
        "theta": config.theta,
    }


def policy_payload(name: str, config: Optional[MPPPBConfig]) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"name": name}
    if config is not None:
        payload["mpppb"] = mpppb_payload(config)
    return payload
