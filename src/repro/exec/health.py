"""Health knobs and degraded-mode machinery for the execution mesh.

This module centralizes the policy side of DESIGN.md §16 — the pieces
that decide *when* the mesh should treat a component as unhealthy and
what the degraded behavior is.  Mechanism lives with the component
(worker heartbeat thread in :mod:`repro.exec.worker`, per-slot
liveness tracking in :mod:`repro.exec.backends.fleet`, shared-tier
short-circuiting in :mod:`repro.exec.store`, duplicate submission in
:mod:`repro.exec.runner`); the knobs and the breaker state machine
live here so every layer resolves them identically.

Knobs (all off by default — a run that never opts in pays nothing):

* ``REPRO_HEARTBEAT`` — heartbeat interval in seconds.  While a cell
  runs, a fleet/ssh worker emits a ``heartbeat`` frame this often; the
  parent declares a silent busy slot lost after the timeout below.
* ``REPRO_HEARTBEAT_TIMEOUT`` — seconds of silence before a busy slot
  is declared lost (default ``HEARTBEAT_TIMEOUT_INTERVALS`` × the
  interval).
* ``--hedge`` / ``REPRO_HEDGE`` — straggler hedge multiple: when a
  running cell exceeds this multiple of the observed median cell
  duration and an idle slot exists, a duplicate is launched and the
  first completion wins (bit-identical by construction — both copies
  share the cache key and therefore the deterministic seed).
* ``REPRO_BREAKER_THRESHOLD`` / ``REPRO_BREAKER_COOLDOWN`` — the
  shared-tier circuit breaker: consecutive IO failures before the
  shared store tier is opened (skipped), and seconds before a
  half-open probe retries it.  ``REPRO_BREAKER=off`` disables the
  breaker entirely (every op hits the shared tier, failures and all).
* ``REPRO_SSH_CONNECT_TIMEOUT`` — ssh ``ConnectTimeout`` for the ssh
  backend, and the hello-handshake deadline its ``start()`` enforces.
* ``REPRO_MANIFEST_FSYNC`` — fsync the run manifest's ``.done`` log on
  every append (durability over speed; off by default).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro.exec.faults import ConfigError

#: ``REPRO_*`` values that disable an optional feature.
_OFF = ("", "off", "none", "0")

#: Default multiple of the heartbeat interval a busy slot may stay
#: silent before it is declared lost.
HEARTBEAT_TIMEOUT_INTERVALS = 5

#: Default consecutive shared-tier IO failures before the breaker opens.
BREAKER_THRESHOLD = 3

#: Default seconds an open breaker waits before a half-open probe.
BREAKER_COOLDOWN_S = 5.0

#: Default ssh ``ConnectTimeout`` (and hello-handshake deadline).
SSH_CONNECT_TIMEOUT_S = 10.0


def _positive_float(name: str, raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise ConfigError(f"{name} must be > 0, got {raw!r}")
    return value


def heartbeat_interval() -> Optional[float]:
    """Heartbeat interval seconds from ``REPRO_HEARTBEAT``; None = off."""
    raw = (os.environ.get("REPRO_HEARTBEAT", "") or "").strip().lower()
    if raw in _OFF:
        return None
    return _positive_float("REPRO_HEARTBEAT", raw)


def heartbeat_timeout(interval: Optional[float] = None) -> Optional[float]:
    """Silence budget for a busy slot; None when heartbeats are off.

    Explicit ``REPRO_HEARTBEAT_TIMEOUT`` wins; otherwise several
    intervals (:data:`HEARTBEAT_TIMEOUT_INTERVALS`).  A timeout without
    an interval is meaningless (the parent would declare every busy
    slot lost), so ``None`` interval always resolves to ``None``.
    """
    if interval is None:
        interval = heartbeat_interval()
    if interval is None:
        return None
    raw = (os.environ.get("REPRO_HEARTBEAT_TIMEOUT", "") or "").strip().lower()
    if raw in _OFF:
        return interval * HEARTBEAT_TIMEOUT_INTERVALS
    return _positive_float("REPRO_HEARTBEAT_TIMEOUT", raw)


def resolve_hedge(hedge: Optional[float] = None) -> Optional[float]:
    """Hedge multiple from ``--hedge`` / ``REPRO_HEDGE``; None = off."""
    if hedge is None:
        raw = (os.environ.get("REPRO_HEDGE", "") or "").strip().lower()
        if raw in _OFF:
            return None
        try:
            hedge = float(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_HEDGE must be a multiple >= 1, got {raw!r}") from None
    if hedge <= 0:
        return None
    if hedge < 1.0:
        raise ConfigError(
            f"hedge multiple must be >= 1, got {hedge!r} "
            f"(--hedge / REPRO_HEDGE)")
    return hedge


def breaker_threshold() -> Optional[int]:
    """Consecutive failures before the shared tier opens; None = no breaker."""
    if (os.environ.get("REPRO_BREAKER", "").strip().lower()
            in ("off", "none", "0")):
        return None
    raw = (os.environ.get("REPRO_BREAKER_THRESHOLD", "") or "").strip()
    if not raw:
        return BREAKER_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_BREAKER_THRESHOLD must be an integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigError(
            f"REPRO_BREAKER_THRESHOLD must be >= 1, got {value}")
    return value


def breaker_cooldown() -> float:
    """Seconds an open breaker waits before probing the shared tier."""
    raw = (os.environ.get("REPRO_BREAKER_COOLDOWN", "") or "").strip()
    if not raw:
        return BREAKER_COOLDOWN_S
    return _positive_float("REPRO_BREAKER_COOLDOWN", raw)


def ssh_connect_timeout() -> Optional[float]:
    """ssh ``ConnectTimeout`` seconds; None disables the fast-fail."""
    raw = (os.environ.get("REPRO_SSH_CONNECT_TIMEOUT", "") or "")
    raw = raw.strip().lower()
    if raw in ("off", "none", "0"):
        return None
    if not raw:
        return SSH_CONNECT_TIMEOUT_S
    return _positive_float("REPRO_SSH_CONNECT_TIMEOUT", raw)


def manifest_fsync() -> bool:
    """Whether ``.done`` appends fsync (``REPRO_MANIFEST_FSYNC``)."""
    return (os.environ.get("REPRO_MANIFEST_FSYNC", "").strip().lower()
            in ("1", "true", "yes", "on"))


# -- circuit breaker --------------------------------------------------------

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed → open → half-open state machine over a flaky dependency.

    The classic degradation guard: ``threshold`` *consecutive*
    failures open the breaker, after which :meth:`allow` answers False
    (callers skip the dependency entirely — no per-op stall) until
    ``cooldown`` seconds pass; then exactly one probe is allowed
    (half-open).  A successful probe closes the breaker; a failed one
    re-opens it for another cooldown.

    Deliberately not thread-safe: each store instance lives on one
    thread (the parent drive loop, or one worker process), and a rare
    racy double-probe is harmless.
    """

    def __init__(self, threshold: int = BREAKER_THRESHOLD,
                 cooldown: float = BREAKER_COOLDOWN_S,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.failures = 0       # consecutive failures while closed
        self.trips = 0          # transitions into OPEN
        self.skips = 0          # operations short-circuited while open
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May the caller touch the dependency right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                return True  # the single half-open probe
            self.skips += 1
            return False
        # HALF_OPEN: a probe is already in flight this window.
        self.skips += 1
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self) -> bool:
        """Fold one failure in; True when this call *opened* the breaker."""
        if self.state == HALF_OPEN:
            # The probe failed: straight back to open, new cooldown.
            self.state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.threshold:
            self.state = OPEN
            self._opened_at = self._clock()
            self.trips += 1
            return True
        return False


def make_breaker() -> Optional[CircuitBreaker]:
    """Breaker configured from the environment; None when disabled."""
    threshold = breaker_threshold()
    if threshold is None:
        return None
    return CircuitBreaker(threshold=threshold, cooldown=breaker_cooldown())
