"""Parallel experiment engine: fan independent cells across processes.

The unit of work is a *cell* — a self-describing, picklable recipe for
one experiment whose result depends only on its fields:

* :class:`SingleCell` — one (benchmark, policy) single-thread run,
  producing a :class:`~repro.sim.single.BenchmarkResult`;
* :class:`MixCell` — one (mix, policy) multi-programmed replay,
  producing a :class:`~repro.sim.multi.MixResult`;
* :class:`SearchCell` — one feature-set candidate evaluation,
  producing its average MPKI (a float).

Cells carry trace *recipes* (:class:`TraceSpec` / :class:`SuiteSpec`)
rather than materialized traces: the synthetic workload generators are
deterministic, so workers rebuild identical segments from a few
integers instead of unpickling megabytes per task.  Worker processes
memoize built segments and runners, so stage-1 (upper-level hierarchy)
results are shared across the cells each worker executes — the same
reuse the in-process runners perform today.

:class:`ParallelRunner` consults the on-disk
:class:`~repro.exec.store.ResultStore` before computing, fans cache
misses across a ``ProcessPoolExecutor`` when ``jobs > 1``, and falls
back to in-process serial execution (bit-identical: same entry points,
same deterministic seeding) when ``jobs == 1``.  ``REPRO_JOBS`` and
``REPRO_CACHE_DIR`` configure the defaults; ``REPRO_JOBS=0`` means one
worker per CPU and ``REPRO_CACHE_DIR=off`` disables the disk cache.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.features import Feature
from repro.core.mpppb import MPPPBConfig
from repro.cpu.timing import TimingConfig
from repro.exec.cachekey import (
    SCHEMA_VERSION,
    hierarchy_payload,
    mpppb_payload,
    policy_payload,
    stable_hash,
    task_seed,
    timing_payload,
)
from repro.exec.artifacts import ArtifactCache
from repro.exec.progress import CellOutcome, ExecReport
from repro.exec.store import DEFAULT_CACHE_DIR, DISABLED_SENTINELS, ResultStore
from repro.policies import policy_factory
from repro.search.evaluator import FeatureSetEvaluator
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.multi import MixResult, MultiProgrammedRunner
from repro.sim.single import BenchmarkResult, SingleThreadRunner
from repro.traces.mixes import Mix
from repro.traces.trace import Segment
from repro.traces.workloads import all_segments, benchmark_names, build_segments


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1.

    ``0`` (or any negative value) means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def default_store() -> Optional[ResultStore]:
    """Store configured by ``REPRO_CACHE_DIR`` (default ``.repro-cache``)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "")
    if raw.lower() in DISABLED_SENTINELS:
        return None
    return ResultStore(raw or DEFAULT_CACHE_DIR)


def _verbose_default() -> bool:
    return os.environ.get("REPRO_EXEC_VERBOSE", "").lower() in ("1", "true", "yes")


# -- trace recipes ---------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Deterministic recipe for one benchmark's weighted segments."""

    benchmark: str
    llc_bytes: int
    accesses: int
    seed: int = 2017

    def payload(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "llc_bytes": self.llc_bytes,
            "accesses": self.accesses,
            "seed": self.seed,
        }

    def scope(self) -> Tuple[int, int, int]:
        """Key for runner reuse: specs differing only by benchmark may
        safely share a runner's per-segment caches (segment names embed
        the benchmark name)."""
        return (self.llc_bytes, self.accesses, self.seed)

    def build(self) -> List[Segment]:
        return build_segments(self.benchmark, self.llc_bytes, self.accesses,
                              self.seed)


@dataclass(frozen=True)
class SuiteSpec:
    """Deterministic recipe for a multi-benchmark segment pool."""

    llc_bytes: int
    accesses: int
    seed: int = 2017
    names: Tuple[str, ...] = ()

    def payload(self) -> Dict[str, Any]:
        return {
            "llc_bytes": self.llc_bytes,
            "accesses": self.accesses,
            "seed": self.seed,
            "names": sorted(self.names),
        }

    def trace_spec(self, benchmark: str) -> TraceSpec:
        return TraceSpec(benchmark, self.llc_bytes, self.accesses, self.seed)

    def build(self) -> List[Segment]:
        """All segments, in :func:`all_segments` (sorted-suite) order."""
        return all_segments(self.llc_bytes, self.accesses, self.seed,
                            names=list(self.names))


# -- per-worker-process memoization ---------------------------------------

_SEGMENTS: Dict[TraceSpec, List[Segment]] = {}
_RUNNERS: Dict[str, Any] = {}
_ARTIFACTS: Dict[str, ArtifactCache] = {}


def _artifact_cache(root: Optional[str]) -> Optional[ArtifactCache]:
    """Per-process artifact cache over the store at ``root``.

    Workers receive only the root path (cheap to pickle) and build the
    cache lazily, so every process in a pool shares the same on-disk
    trace/Stage-1 artifacts instead of recomputing them per worker —
    the cross-worker duplication the in-memory memos cannot fix.
    """
    if not root:
        return None
    cache = _ARTIFACTS.get(root)
    if cache is None:
        cache = ArtifactCache(ResultStore(root))
        _ARTIFACTS[root] = cache
    return cache


def _segments(spec: TraceSpec,
              artifacts: Optional[ArtifactCache] = None) -> List[Segment]:
    cached = _SEGMENTS.get(spec)
    if cached is None:
        if artifacts is not None:
            cached = artifacts.load_segments(spec.payload())
        if cached is None:
            cached = spec.build()
            if artifacts is not None:
                artifacts.store_segments(spec.payload(), cached)
        _SEGMENTS[spec] = cached
    return cached


def _suite_segments(suite: SuiteSpec,
                    artifacts: Optional[ArtifactCache]) -> List[Segment]:
    """Suite segments in :meth:`SuiteSpec.build` order, artifact-cached."""
    names = sorted(suite.names) if suite.names else sorted(benchmark_names())
    segments: List[Segment] = []
    for name in names:
        segments.extend(_segments(suite.trace_spec(name), artifacts))
    return segments


def _scope_payload(llc_bytes: int, accesses: int, seed: int) -> Dict[str, int]:
    """Stage-1 artifact scope: the trace *generation* parameters.

    Benchmark identity lives in the segment name, so Stage-1 artifacts
    are shared by every cell generated from the same sizing and seed.
    """
    return {"llc_bytes": llc_bytes, "accesses": accesses, "seed": seed}


def _runner_key(kind: str, hierarchy: HierarchyConfig,
                timing: Optional[TimingConfig], prefetch: bool,
                warmup_fraction: float, scope: Any,
                artifact_root: Optional[str] = None) -> str:
    return stable_hash({
        "kind": kind,
        "hierarchy": hierarchy_payload(hierarchy),
        "timing": timing_payload(timing),
        "prefetch": prefetch,
        "warmup_fraction": warmup_fraction,
        "scope": scope,
        "artifacts": artifact_root,
    })


def _stage1_store(artifacts: Optional[ArtifactCache], llc_bytes: int,
                  accesses: int, seed: int, hierarchy: HierarchyConfig,
                  prefetch: bool):
    if artifacts is None:
        return None
    return artifacts.stage1_store(
        _scope_payload(llc_bytes, accesses, seed), hierarchy, prefetch
    )


def _single_runner(hierarchy: HierarchyConfig, timing: Optional[TimingConfig],
                   prefetch: bool, warmup_fraction: float, spec: TraceSpec,
                   artifacts: Optional[ArtifactCache]) -> SingleThreadRunner:
    root = str(artifacts.store.root) if artifacts is not None else None
    key = _runner_key("single", hierarchy, timing, prefetch, warmup_fraction,
                      spec.scope(), root)
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = SingleThreadRunner(
            hierarchy, timing=timing, prefetch=prefetch,
            warmup_fraction=warmup_fraction,
            stage1_store=_stage1_store(artifacts, spec.llc_bytes,
                                       spec.accesses, spec.seed,
                                       hierarchy, prefetch),
        )
        _RUNNERS[key] = runner
    return runner


def _multi_runner(hierarchy: HierarchyConfig, timing: Optional[TimingConfig],
                  prefetch: bool, warmup_fraction: float, suite: SuiteSpec,
                  artifacts: Optional[ArtifactCache]) -> MultiProgrammedRunner:
    root = str(artifacts.store.root) if artifacts is not None else None
    key = _runner_key("multi", hierarchy, timing, prefetch, warmup_fraction,
                      suite.payload(), root)
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = MultiProgrammedRunner(
            hierarchy, timing=timing, prefetch=prefetch,
            warmup_fraction=warmup_fraction,
            stage1_store=_stage1_store(artifacts, suite.llc_bytes,
                                       suite.accesses, suite.seed,
                                       hierarchy, prefetch),
        )
        _RUNNERS[key] = runner
    return runner


def _search_evaluator(suite: SuiteSpec, hierarchy: HierarchyConfig,
                      base_config: Optional[MPPPBConfig], prefetch: bool,
                      warmup_fraction: float,
                      artifacts: Optional[ArtifactCache]) -> FeatureSetEvaluator:
    root = str(artifacts.store.root) if artifacts is not None else None
    scope = dict(suite.payload(),
                 base=None if base_config is None else mpppb_payload(base_config))
    key = _runner_key("evaluator", hierarchy, None, prefetch, warmup_fraction,
                      scope, root)
    evaluator = _RUNNERS.get(key)
    if evaluator is None:
        evaluator = FeatureSetEvaluator(
            _suite_segments(suite, artifacts), hierarchy,
            base_config=base_config, warmup_fraction=warmup_fraction,
            prefetch=prefetch,
            stage1_store=_stage1_store(artifacts, suite.llc_bytes,
                                       suite.accesses, suite.seed,
                                       hierarchy, prefetch),
        )
        _RUNNERS[key] = evaluator
    return evaluator


# -- cells -----------------------------------------------------------------


@dataclass(frozen=True)
class SingleCell:
    """One single-thread (benchmark, policy) experiment."""

    trace: TraceSpec
    policy: str
    hierarchy: HierarchyConfig
    mpppb_config: Optional[MPPPBConfig] = None
    timing: Optional[TimingConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "single"

    def label(self) -> str:
        return f"{self.trace.benchmark}/{self.policy}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "trace": self.trace.payload(),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "timing": timing_payload(self.timing),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
            "policy": policy_payload(self.policy, self.mpppb_config),
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> BenchmarkResult:
        runner = _single_runner(self.hierarchy, self.timing, self.prefetch,
                                self.warmup_fraction, self.trace, artifacts)
        return runner.run_benchmark(
            self.trace.benchmark, _segments(self.trace, artifacts),
            policy_factory(self.policy, self.mpppb_config),
        )

    def encode(self, result: BenchmarkResult) -> Dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: Dict[str, Any]) -> BenchmarkResult:
        return BenchmarkResult.from_dict(payload)


@dataclass(frozen=True)
class MixCell:
    """One multi-programmed (mix, policy) experiment."""

    suite: SuiteSpec
    mix_name: str
    segment_names: Tuple[str, ...]
    policy: str
    hierarchy: HierarchyConfig
    mpppb_config: Optional[MPPPBConfig] = None
    timing: Optional[TimingConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "mix"

    def label(self) -> str:
        return f"{self.mix_name}/{self.policy}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "segments": list(self.segment_names),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "timing": timing_payload(self.timing),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
            "policy": policy_payload(self.policy, self.mpppb_config),
        }

    def _mix(self, artifacts: Optional[ArtifactCache] = None) -> Mix:
        chosen: List[Segment] = []
        for name in self.segment_names:
            benchmark = name.split(".", 1)[0]
            by_name = {
                segment.name: segment
                for segment in _segments(self.suite.trace_spec(benchmark),
                                         artifacts)
            }
            try:
                chosen.append(by_name[name])
            except KeyError:
                raise KeyError(
                    f"segment {name!r} not found in benchmark {benchmark!r}"
                ) from None
        return Mix(self.mix_name, tuple(chosen))

    def run(self, artifacts: Optional[ArtifactCache] = None) -> MixResult:
        runner = _multi_runner(self.hierarchy, self.timing, self.prefetch,
                               self.warmup_fraction, self.suite, artifacts)
        return runner.run_mix(
            self._mix(artifacts), policy_factory(self.policy, self.mpppb_config)
        )

    def encode(self, result: MixResult) -> Dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: Dict[str, Any]) -> MixResult:
        return MixResult.from_dict(payload)


@dataclass(frozen=True)
class SearchCell:
    """One feature-search candidate: average MPKI over a segment pool."""

    suite: SuiteSpec
    features: Tuple[Feature, ...]
    hierarchy: HierarchyConfig
    base_config: Optional[MPPPBConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "search"

    def label(self) -> str:
        digest = stable_hash({"f": [f.spec() for f in self.features]})
        return f"search/{len(self.features)}f/{digest[:8]}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "features": [feature.spec() for feature in self.features],
            "base": (None if self.base_config is None
                     else mpppb_payload(self.base_config)),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> float:
        evaluator = _search_evaluator(self.suite, self.hierarchy,
                                      self.base_config, self.prefetch,
                                      self.warmup_fraction, artifacts)
        return evaluator.evaluate(self.features)

    def encode(self, result: float) -> float:
        return result

    def decode(self, payload: float) -> float:
        return float(payload)


@dataclass(frozen=True)
class SearchBatchCell:
    """K feature-search candidates resolved by one shared-context replay.

    An execution grouping, not a cache unit: results are stored and
    looked up per candidate under the corresponding
    :class:`SearchCell` keys (see
    :meth:`ParallelRunner.run_search_batches`), so batched and
    per-candidate runs share the on-disk cache freely.  Evaluation
    itself goes through
    :meth:`~repro.search.evaluator.FeatureSetEvaluator.evaluate_batch`,
    i.e. the :class:`~repro.sim.batch.BatchLLCSimulator` engine.
    """

    suite: SuiteSpec
    feature_sets: Tuple[Tuple[Feature, ...], ...]
    hierarchy: HierarchyConfig
    base_config: Optional[MPPPBConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "search-batch"

    def label(self) -> str:
        digest = stable_hash(
            {"f": [[f.spec() for f in fs] for fs in self.feature_sets]})
        return f"search-batch/{len(self.feature_sets)}c/{digest[:8]}"

    def key_payload(self) -> Dict[str, Any]:
        """Identity payload (task seeding); never used as a store key."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "feature_sets": [[feature.spec() for feature in features]
                             for features in self.feature_sets],
            "base": (None if self.base_config is None
                     else mpppb_payload(self.base_config)),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> List[float]:
        evaluator = _search_evaluator(self.suite, self.hierarchy,
                                      self.base_config, self.prefetch,
                                      self.warmup_fraction, artifacts)
        return evaluator.evaluate_batch(self.feature_sets)

    def encode(self, result: List[float]) -> List[float]:
        return list(result)

    def decode(self, payload: Sequence[float]) -> List[float]:
        return [float(value) for value in payload]


Cell = Union[SingleCell, MixCell, SearchCell, SearchBatchCell]


def _execute_cell(cell: Cell, key: str,
                  artifact_root: Optional[str] = None
                  ) -> Tuple[Any, float, Dict[str, int]]:
    """Run one cell with deterministic seeding.

    Returns (result, seconds, artifact hit/miss deltas).  The artifact
    cache only changes *where* trace and Stage-1 data come from, never
    their values, so seeding and results are identical with it on,
    off, cold, or warm.
    """
    artifacts = _artifact_cache(artifact_root)
    before = artifacts.stats.counts() if artifacts is not None else {}
    random.seed(task_seed(key))
    started = time.perf_counter()
    result = cell.run(artifacts)
    seconds = time.perf_counter() - started
    if artifacts is not None:
        after = artifacts.stats.counts()
        delta = {name: after[name] - before[name] for name in after}
    else:
        delta = {}
    return result, seconds, delta


_AUTO_STORE = object()


class ParallelRunner:
    """Cache-aware fan-out executor for experiment cells.

    With ``jobs == 1`` (the default) cache misses run serially in the
    current process through exactly the same entry points the workers
    use, so serial and parallel execution are bit-identical.
    """

    def __init__(self, jobs: Optional[int] = None, store: Any = _AUTO_STORE,
                 verbose: Optional[bool] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store: Optional[ResultStore] = (
            default_store() if store is _AUTO_STORE else store
        )
        self.verbose = _verbose_default() if verbose is None else verbose
        self.last_report: Optional[ExecReport] = None
        # Trace/Stage-1 artifacts live in the same store as results and
        # ride its enable/disable switch; REPRO_ARTIFACT_CACHE=off opts
        # out of just the artifact layer (results stay cached).
        artifacts_off = (os.environ.get("REPRO_ARTIFACT_CACHE", "").lower()
                         in DISABLED_SENTINELS)
        self.artifact_root: Optional[str] = (
            None if self.store is None or artifacts_off
            else str(self.store.root)
        )

    @classmethod
    def from_options(cls, jobs: Optional[int] = None,
                     cache_dir: str = "") -> "ParallelRunner":
        """Build from CLI-style options (``--jobs`` / ``--cache-dir``).

        An empty ``cache_dir`` defers to ``REPRO_CACHE_DIR``; the
        sentinel values ``off`` / ``none`` / ``0`` disable caching.
        """
        if cache_dir and cache_dir.lower() in DISABLED_SENTINELS:
            store: Optional[ResultStore] = None
        elif cache_dir:
            store = ResultStore(cache_dir)
        else:
            store = default_store()
        return cls(jobs=jobs, store=store)

    def run(self, cells: Sequence[Cell], label: str = "") -> List[Any]:
        """Resolve every cell (cache or compute); results in cell order."""
        started = time.perf_counter()
        results: List[Any] = [None] * len(cells)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        pending: List[Tuple[int, str, Cell]] = []

        for index, cell in enumerate(cells):
            key = stable_hash(cell.key_payload())
            payload = self.store.get(key) if self.store is not None else None
            if payload is not None and payload.get("kind") == cell.kind:
                results[index] = cell.decode(payload["result"])
                outcomes[index] = CellOutcome(cell.label(), key, True, 0.0)
            else:
                pending.append((index, key, cell))

        artifact_counts: Dict[str, int] = {}
        workers = min(self.jobs, len(pending))
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_cell, cell, key,
                                self.artifact_root): (index, key, cell)
                    for index, key, cell in pending
                }
                for future in as_completed(futures):
                    index, key, cell = futures[future]
                    result, seconds, delta = future.result()
                    self._record(cell, key, result, seconds, index,
                                 results, outcomes, artifact_counts, delta)
        else:
            for index, key, cell in pending:
                result, seconds, delta = _execute_cell(cell, key,
                                                       self.artifact_root)
                self._record(cell, key, result, seconds, index,
                             results, outcomes, artifact_counts, delta)

        self.last_report = ExecReport(
            outcomes=tuple(outcome for outcome in outcomes
                           if outcome is not None),
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs,
            label=label,
            trace_hits=artifact_counts.get("trace_hits", 0),
            trace_misses=artifact_counts.get("trace_misses", 0),
            stage1_hits=artifact_counts.get("stage1_hits", 0),
            stage1_misses=artifact_counts.get("stage1_misses", 0),
        )
        if self.verbose:
            print(self.last_report.table())
        return results

    def run_search_batches(self, cells: Sequence[SearchCell],
                           batch_size: Optional[int] = None,
                           label: str = "") -> List[float]:
        """Resolve search cells via shared-context batch replays.

        Cache lookups and writes stay *per candidate*, under each
        cell's own ``search`` key, so results computed here serve later
        :meth:`run` calls and vice versa — the batch grouping is purely
        an execution strategy.  Misses are grouped by evaluation scope
        (suite, hierarchy, base config, prefetch, warmup), chunked into
        :class:`SearchBatchCell` tasks of at most ``batch_size``
        candidates (``None`` = one batch per scope), and fanned out
        like any other cells; singleton chunks run as plain cells.
        """
        started = time.perf_counter()
        results: List[Any] = [None] * len(cells)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        pending: List[Tuple[int, str, SearchCell]] = []

        for index, cell in enumerate(cells):
            key = stable_hash(cell.key_payload())
            payload = self.store.get(key) if self.store is not None else None
            if payload is not None and payload.get("kind") == cell.kind:
                results[index] = cell.decode(payload["result"])
                outcomes[index] = CellOutcome(cell.label(), key, True, 0.0)
            else:
                pending.append((index, key, cell))

        groups: Dict[str, List[Tuple[int, str, SearchCell]]] = {}
        for item in pending:
            cell = item[2]
            scope = stable_hash({
                "suite": cell.suite.payload(),
                "hierarchy": hierarchy_payload(cell.hierarchy),
                "base": (None if cell.base_config is None
                         else mpppb_payload(cell.base_config)),
                "prefetch": cell.prefetch,
                "warmup_fraction": cell.warmup_fraction,
            })
            groups.setdefault(scope, []).append(item)

        Chunk = List[Tuple[int, str, SearchCell]]
        tasks: List[Tuple[Cell, str, Chunk]] = []
        for members in groups.values():
            size = batch_size or len(members)
            for start in range(0, len(members), size):
                chunk = members[start:start + size]
                if len(chunk) == 1:
                    _, key, cell = chunk[0]
                    tasks.append((cell, key, chunk))
                    continue
                first = chunk[0][2]
                batch_cell = SearchBatchCell(
                    suite=first.suite,
                    feature_sets=tuple(cell.features
                                       for _, _, cell in chunk),
                    hierarchy=first.hierarchy,
                    base_config=first.base_config,
                    prefetch=first.prefetch,
                    warmup_fraction=first.warmup_fraction,
                )
                tasks.append((batch_cell,
                              stable_hash(batch_cell.key_payload()), chunk))

        artifact_counts: Dict[str, int] = {}
        batches = 0
        batched = 0

        def settle(exec_cell: Cell, chunk: Chunk, result: Any,
                   seconds: float, delta: Dict[str, int]) -> None:
            nonlocal batches, batched
            for name, count in delta.items():
                artifact_counts[name] = artifact_counts.get(name, 0) + count
            if isinstance(exec_cell, SearchBatchCell):
                batches += 1
                batched += len(chunk)
                share = seconds / len(chunk)
                per_candidate = zip(chunk, result)
            else:
                share = seconds
                per_candidate = zip(chunk, [result])
            for (index, key, cell), value in per_candidate:
                results[index] = value
                outcomes[index] = CellOutcome(cell.label(), key, False,
                                              share)
                if self.store is not None:
                    self.store.put(key, {"kind": cell.kind,
                                         "result": cell.encode(value)})

        workers = min(self.jobs, len(tasks))
        if workers > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_cell, exec_cell, exec_key,
                                self.artifact_root): (exec_cell, chunk)
                    for exec_cell, exec_key, chunk in tasks
                }
                for future in as_completed(futures):
                    exec_cell, chunk = futures[future]
                    result, seconds, delta = future.result()
                    settle(exec_cell, chunk, result, seconds, delta)
        else:
            for exec_cell, exec_key, chunk in tasks:
                result, seconds, delta = _execute_cell(exec_cell, exec_key,
                                                       self.artifact_root)
                settle(exec_cell, chunk, result, seconds, delta)

        self.last_report = ExecReport(
            outcomes=tuple(outcome for outcome in outcomes
                           if outcome is not None),
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs,
            label=label,
            trace_hits=artifact_counts.get("trace_hits", 0),
            trace_misses=artifact_counts.get("trace_misses", 0),
            stage1_hits=artifact_counts.get("stage1_hits", 0),
            stage1_misses=artifact_counts.get("stage1_misses", 0),
            batches=batches,
            batched=batched,
        )
        if self.verbose:
            print(self.last_report.table())
        return results

    def _record(self, cell: Cell, key: str, result: Any, seconds: float,
                index: int, results: List[Any],
                outcomes: List[Optional[CellOutcome]],
                artifact_counts: Dict[str, int],
                delta: Dict[str, int]) -> None:
        results[index] = result
        outcomes[index] = CellOutcome(cell.label(), key, False, seconds)
        for name, count in delta.items():
            artifact_counts[name] = artifact_counts.get(name, 0) + count
        if self.store is not None:
            self.store.put(key, {"kind": cell.kind,
                                 "result": cell.encode(result)})
