"""Parallel experiment engine: fan independent cells across processes.

The unit of work is a *cell* — a self-describing, picklable recipe for
one experiment whose result depends only on its fields:

* :class:`SingleCell` — one (benchmark, policy) single-thread run,
  producing a :class:`~repro.sim.single.BenchmarkResult`;
* :class:`MixCell` — one (mix, policy) multi-programmed replay,
  producing a :class:`~repro.sim.multi.MixResult`;
* :class:`SearchCell` — one feature-set candidate evaluation,
  producing its average MPKI (a float).

Cells carry trace *recipes* (:class:`TraceSpec` / :class:`SuiteSpec`)
rather than materialized traces: the synthetic workload generators are
deterministic, so workers rebuild identical segments from a few
integers instead of unpickling megabytes per task.  Worker processes
memoize built segments and runners, so stage-1 (upper-level hierarchy)
results are shared across the cells each worker executes — the same
reuse the in-process runners perform today.

:class:`ParallelRunner` consults the on-disk
:class:`~repro.exec.store.ResultStore` before computing, fans cache
misses across a ``ProcessPoolExecutor`` when ``jobs > 1``, and falls
back to in-process serial execution (bit-identical: same entry points,
same deterministic seeding) when ``jobs == 1``.  ``REPRO_JOBS`` and
``REPRO_CACHE_DIR`` configure the defaults; ``REPRO_JOBS=0`` means one
worker per CPU and ``REPRO_CACHE_DIR=off`` disables the disk cache.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # runtime import would cycle through repro.traces
    from repro.traces.ingest.spec import IngestSpec

from repro.core.features import Feature
from repro.core.mpppb import MPPPBConfig
from repro.cpu.timing import TimingConfig
from repro.exec.cachekey import (
    SCHEMA_VERSION,
    hierarchy_payload,
    mpppb_payload,
    policy_payload,
    stable_hash,
    task_seed,
    timing_payload,
)
from repro.exec.artifacts import ArtifactCache, ingest_scope, scope_payload
from repro.exec.backends import (
    FRAME_LOST,
    FRAME_OK,
    BackendUnavailable,
    ExecutionBackend,
    create_backend,
    resolve_backend_name,
    resolve_slots,
    resolve_workers_spec,
)
from repro.exec.backends.fleet import HEARTBEAT_LOST
from repro.exec.health import resolve_hedge
from repro.exec.faults import (
    CellExecutionError,
    CellFailure,
    ConfigError,
    active_plan,
    corrupt_result_blob,
    make_failure,
)
from repro.exec.manifest import RunManifest
from repro.exec.progress import CellOutcome, ExecReport
from repro import obs
from repro.obs.events import (
    counter_event,
    hist_event,
    run_event,
    span_event,
    write_events,
)
from repro.exec.store import (
    DEFAULT_CACHE_DIR,
    DISABLED_SENTINELS,
    ResultStore,
    make_store,
    resolve_shared,
)
from repro.graph import CostModel, graph_enabled, plan_cells
from repro.policies import policy_factory
from repro.search.evaluator import FeatureSetEvaluator
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.multi import MixResult, MultiProgrammedRunner
from repro.sim.single import BenchmarkResult, SingleThreadRunner
from repro.traces.mixes import Mix
from repro.traces.trace import Segment
from repro.traces.workloads import benchmark_names, build_segments


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_JOBS``, else 1.

    ``0`` (or any negative value) means "one worker per CPU".
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_on_error(on_error: Optional[str] = None) -> str:
    """Failure mode: explicit value, else ``REPRO_ON_ERROR``, else collect."""
    value = (on_error if on_error is not None
             else os.environ.get("REPRO_ON_ERROR", "")) or "collect"
    value = value.lower()
    if value not in ("collect", "raise"):
        raise ConfigError(
            f"on-error mode must be 'collect' or 'raise', got {value!r} "
            f"(--on-error / REPRO_ON_ERROR)")
    return value


def resolve_retries(retries: Optional[int] = None) -> int:
    """Per-cell retry budget: explicit, else ``REPRO_RETRIES``, else 0."""
    if retries is None:
        raw = os.environ.get("REPRO_RETRIES", "") or "0"
        try:
            retries = int(raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_RETRIES must be an integer, got {raw!r}") from None
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    return retries


def resolve_cell_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Watchdog seconds per cell: explicit, else ``REPRO_CELL_TIMEOUT``.

    ``None``, empty, ``0``, or a disable sentinel means no timeout.
    """
    if timeout is None:
        raw = (os.environ.get("REPRO_CELL_TIMEOUT", "") or "").strip().lower()
        if not raw or raw in DISABLED_SENTINELS:
            return None
        try:
            timeout = float(raw)
        except ValueError:
            raise ConfigError(
                "REPRO_CELL_TIMEOUT must be a number of seconds, got "
                f"{raw!r}") from None
    return timeout if timeout > 0 else None


def resolve_retry_backoff() -> float:
    """Base delay for exponential retry backoff (``REPRO_RETRY_BACKOFF``)."""
    raw = os.environ.get("REPRO_RETRY_BACKOFF", "")
    if not raw:
        return 0.05
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            "REPRO_RETRY_BACKOFF must be a number of seconds, got "
            f"{raw!r}") from None
    return max(0.0, value)


def default_store() -> Optional[ResultStore]:
    """Store configured by ``REPRO_CACHE_DIR`` (default ``.repro-cache``)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "")
    if raw.lower() in DISABLED_SENTINELS:
        return None
    return ResultStore(raw or DEFAULT_CACHE_DIR)


def resolve_store(cache_dir: str = "") -> Optional[ResultStore]:
    """Store from a CLI-style ``--cache-dir`` value.

    Empty defers to ``REPRO_CACHE_DIR``; the sentinel values ``off`` /
    ``none`` / ``0`` disable caching.
    """
    if cache_dir and cache_dir.lower() in DISABLED_SENTINELS:
        return None
    if cache_dir:
        return ResultStore(cache_dir)
    return default_store()


def _verbose_default() -> bool:
    return os.environ.get("REPRO_EXEC_VERBOSE", "").lower() in ("1", "true", "yes")


# -- trace recipes ---------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Deterministic recipe for one workload's weighted segments.

    Synthetic benchmarks are generated from (benchmark, LLC sizing,
    access budget, seed).  When ``ingest`` is set the workload is a
    real trace file instead: the segments come from the streamed decode
    window and every key derives from the file's content digest — the
    synthesis fields are ignored.
    """

    benchmark: str
    llc_bytes: int
    accesses: int
    seed: int = 2017
    ingest: Optional[IngestSpec] = None

    def payload(self) -> Dict[str, Any]:
        if self.ingest is not None:
            return {
                "benchmark": self.benchmark,
                "ingest": self.ingest.payload(),
            }
        return {
            "benchmark": self.benchmark,
            "llc_bytes": self.llc_bytes,
            "accesses": self.accesses,
            "seed": self.seed,
        }

    def scope(self) -> Tuple:
        """Key for runner reuse: specs differing only by benchmark may
        safely share a runner's per-segment caches (segment names embed
        the benchmark name)."""
        if self.ingest is not None:
            return (self.llc_bytes, self.accesses, self.seed,
                    ["ingest", self.ingest.digest, self.ingest.format,
                     self.ingest.skip, self.ingest.accesses,
                     self.ingest.segments, list(self.ingest.weights)])
        return (self.llc_bytes, self.accesses, self.seed)

    def stage1_scope(self) -> Dict[str, Any]:
        """Stage-1 artifact scope for this workload's segments."""
        if self.ingest is not None:
            return ingest_scope(self.ingest.payload())
        return scope_payload(self.llc_bytes, self.accesses, self.seed)

    def segment_names(self) -> List[str]:
        """Static segment names (no trace build) for the graph planner."""
        if self.ingest is not None:
            return self.ingest.segment_names()
        from repro.traces.workloads import segment_names
        return segment_names(self.benchmark)

    def build(self) -> List[Segment]:
        if self.ingest is not None:
            return self.ingest.build()
        return build_segments(self.benchmark, self.llc_bytes, self.accesses,
                              self.seed)


@dataclass(frozen=True)
class SuiteSpec:
    """Deterministic recipe for a multi-benchmark segment pool.

    ``ingest`` entries merge real-trace workloads into the pool: the
    suite iterates all workloads — synthetic names and ingested names
    together — in one sorted order, exactly as :func:`~repro.traces.
    workloads.all_segments` sorts the synthetic suite.
    """

    llc_bytes: int
    accesses: int
    seed: int = 2017
    names: Tuple[str, ...] = ()
    ingest: Tuple[IngestSpec, ...] = ()

    def payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "llc_bytes": self.llc_bytes,
            "accesses": self.accesses,
            "seed": self.seed,
            "names": sorted(self.names),
        }
        # Only keyed when present, so ingest-free recipes keep their
        # pinned hashes from before ingestion existed.
        if self.ingest:
            payload["ingest"] = [
                spec.payload() for spec in
                sorted(self.ingest, key=lambda spec: spec.name)
            ]
        return payload

    def workloads(self) -> List[str]:
        """Sorted names of every workload in the pool (synthetic and
        ingested), the order ``build`` emits segments in."""
        names = list(self.names) if self.names else list(benchmark_names())
        names.extend(spec.name for spec in self.ingest)
        return sorted(names)

    def trace_spec(self, benchmark: str) -> TraceSpec:
        for spec in self.ingest:
            if spec.name == benchmark:
                return TraceSpec(benchmark, self.llc_bytes, self.accesses,
                                 self.seed, ingest=spec)
        return TraceSpec(benchmark, self.llc_bytes, self.accesses, self.seed)

    def scope_overrides(self) -> Optional[Dict[str, Dict[str, Any]]]:
        """Per-workload Stage-1 scope overrides for ingested entries."""
        if not self.ingest:
            return None
        return {spec.name: ingest_scope(spec.payload())
                for spec in self.ingest}

    def build(self) -> List[Segment]:
        """All segments, in sorted-workload (suite) order."""
        segments: List[Segment] = []
        for name in self.workloads():
            segments.extend(self.trace_spec(name).build())
        return segments


# -- per-worker-process memoization ---------------------------------------

_SEGMENTS: Dict[TraceSpec, List[Segment]] = {}
_RUNNERS: Dict[str, Any] = {}
_ARTIFACTS: Dict[Tuple[str, Optional[str]], ArtifactCache] = {}


def _artifact_cache(root: Optional[str],
                    shared: Optional[str] = None
                    ) -> Optional[ArtifactCache]:
    """Per-process artifact cache over the store at ``root``.

    Workers receive only the root path(s) (cheap to pickle) and build
    the cache lazily, so every process in a pool shares the same
    on-disk trace/Stage-1 artifacts instead of recomputing them per
    worker — the cross-worker duplication the in-memory memos cannot
    fix.  With a ``shared`` tier root the cache reads through local
    disk into the shared store, so an artifact computed by any worker
    on any host serves every other worker.
    """
    if not root:
        return None
    memo_key = (root, shared or None)
    cache = _ARTIFACTS.get(memo_key)
    if cache is None:
        cache = ArtifactCache(make_store(root, shared))
        _ARTIFACTS[memo_key] = cache
    return cache


def _segments(spec: TraceSpec,
              artifacts: Optional[ArtifactCache] = None) -> List[Segment]:
    # Span covers memo/artifact hits too: serial and parallel drives
    # then emit equal span sets regardless of worker memoization.
    with obs.span("trace-gen"):
        cached = _SEGMENTS.get(spec)
        if cached is None:
            if artifacts is not None:
                cached = artifacts.load_segments(spec.payload())
            if cached is None:
                cached = spec.build()
                if artifacts is not None:
                    artifacts.store_segments(spec.payload(), cached)
            _SEGMENTS[spec] = cached
    return cached


def _suite_segments(suite: SuiteSpec,
                    artifacts: Optional[ArtifactCache]) -> List[Segment]:
    """Suite segments in :meth:`SuiteSpec.build` order, artifact-cached."""
    segments: List[Segment] = []
    for name in suite.workloads():
        segments.extend(_segments(suite.trace_spec(name), artifacts))
    return segments


# Stage-1 artifact scope lives in repro.exec.artifacts so the graph
# planner hashes identical scopes without importing this module.
_scope_payload = scope_payload


def _runner_key(kind: str, hierarchy: HierarchyConfig,
                timing: Optional[TimingConfig], prefetch: bool,
                warmup_fraction: float, scope: Any,
                artifact_root: Optional[str] = None) -> str:
    return stable_hash({
        "kind": kind,
        "hierarchy": hierarchy_payload(hierarchy),
        "timing": timing_payload(timing),
        "prefetch": prefetch,
        "warmup_fraction": warmup_fraction,
        "scope": scope,
        "artifacts": artifact_root,
    })


def _stage1_store(artifacts: Optional[ArtifactCache], llc_bytes: int,
                  accesses: int, seed: int, hierarchy: HierarchyConfig,
                  prefetch: bool, scope_overrides=None):
    if artifacts is None:
        return None
    return artifacts.stage1_store(
        _scope_payload(llc_bytes, accesses, seed), hierarchy, prefetch,
        scope_overrides=scope_overrides,
    )


def _single_runner(hierarchy: HierarchyConfig, timing: Optional[TimingConfig],
                   prefetch: bool, warmup_fraction: float, spec: TraceSpec,
                   artifacts: Optional[ArtifactCache]) -> SingleThreadRunner:
    root = str(artifacts.store.root) if artifacts is not None else None
    key = _runner_key("single", hierarchy, timing, prefetch, warmup_fraction,
                      spec.scope(), root)
    runner = _RUNNERS.get(key)
    if runner is None:
        overrides = (None if spec.ingest is None
                     else {spec.ingest.name: spec.stage1_scope()})
        runner = SingleThreadRunner(
            hierarchy, timing=timing, prefetch=prefetch,
            warmup_fraction=warmup_fraction,
            stage1_store=_stage1_store(artifacts, spec.llc_bytes,
                                       spec.accesses, spec.seed,
                                       hierarchy, prefetch,
                                       scope_overrides=overrides),
        )
        _RUNNERS[key] = runner
    return runner


def _multi_runner(hierarchy: HierarchyConfig, timing: Optional[TimingConfig],
                  prefetch: bool, warmup_fraction: float, suite: SuiteSpec,
                  artifacts: Optional[ArtifactCache]) -> MultiProgrammedRunner:
    root = str(artifacts.store.root) if artifacts is not None else None
    key = _runner_key("multi", hierarchy, timing, prefetch, warmup_fraction,
                      suite.payload(), root)
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = MultiProgrammedRunner(
            hierarchy, timing=timing, prefetch=prefetch,
            warmup_fraction=warmup_fraction,
            stage1_store=_stage1_store(artifacts, suite.llc_bytes,
                                       suite.accesses, suite.seed,
                                       hierarchy, prefetch,
                                       scope_overrides=suite.scope_overrides()),
        )
        _RUNNERS[key] = runner
    return runner


def _search_evaluator(suite: SuiteSpec, hierarchy: HierarchyConfig,
                      base_config: Optional[MPPPBConfig], prefetch: bool,
                      warmup_fraction: float,
                      artifacts: Optional[ArtifactCache]) -> FeatureSetEvaluator:
    root = str(artifacts.store.root) if artifacts is not None else None
    scope = dict(suite.payload(),
                 base=None if base_config is None else mpppb_payload(base_config))
    key = _runner_key("evaluator", hierarchy, None, prefetch, warmup_fraction,
                      scope, root)
    evaluator = _RUNNERS.get(key)
    if evaluator is None:
        evaluator = FeatureSetEvaluator(
            _suite_segments(suite, artifacts), hierarchy,
            base_config=base_config, warmup_fraction=warmup_fraction,
            prefetch=prefetch,
            stage1_store=_stage1_store(artifacts, suite.llc_bytes,
                                       suite.accesses, suite.seed,
                                       hierarchy, prefetch,
                                       scope_overrides=suite.scope_overrides()),
        )
        _RUNNERS[key] = evaluator
    return evaluator


# -- cells -----------------------------------------------------------------


@dataclass(frozen=True)
class SingleCell:
    """One single-thread (benchmark, policy) experiment."""

    trace: TraceSpec
    policy: str
    hierarchy: HierarchyConfig
    mpppb_config: Optional[MPPPBConfig] = None
    timing: Optional[TimingConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "single"

    def label(self) -> str:
        return f"{self.trace.benchmark}/{self.policy}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "trace": self.trace.payload(),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "timing": timing_payload(self.timing),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
            "policy": policy_payload(self.policy, self.mpppb_config),
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> BenchmarkResult:
        runner = _single_runner(self.hierarchy, self.timing, self.prefetch,
                                self.warmup_fraction, self.trace, artifacts)
        return runner.run_benchmark(
            self.trace.benchmark, _segments(self.trace, artifacts),
            policy_factory(self.policy, self.mpppb_config),
        )

    def encode(self, result: BenchmarkResult) -> Dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: Dict[str, Any]) -> BenchmarkResult:
        return BenchmarkResult.from_dict(payload)


@dataclass(frozen=True)
class MixCell:
    """One multi-programmed (mix, policy) experiment."""

    suite: SuiteSpec
    mix_name: str
    segment_names: Tuple[str, ...]
    policy: str
    hierarchy: HierarchyConfig
    mpppb_config: Optional[MPPPBConfig] = None
    timing: Optional[TimingConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "mix"

    def label(self) -> str:
        return f"{self.mix_name}/{self.policy}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "segments": list(self.segment_names),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "timing": timing_payload(self.timing),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
            "policy": policy_payload(self.policy, self.mpppb_config),
        }

    def _mix(self, artifacts: Optional[ArtifactCache] = None) -> Mix:
        chosen: List[Segment] = []
        for name in self.segment_names:
            benchmark = name.split(".", 1)[0]
            by_name = {
                segment.name: segment
                for segment in _segments(self.suite.trace_spec(benchmark),
                                         artifacts)
            }
            try:
                chosen.append(by_name[name])
            except KeyError:
                raise KeyError(
                    f"segment {name!r} not found in benchmark {benchmark!r}"
                ) from None
        return Mix(self.mix_name, tuple(chosen))

    def run(self, artifacts: Optional[ArtifactCache] = None) -> MixResult:
        runner = _multi_runner(self.hierarchy, self.timing, self.prefetch,
                               self.warmup_fraction, self.suite, artifacts)
        return runner.run_mix(
            self._mix(artifacts), policy_factory(self.policy, self.mpppb_config)
        )

    def encode(self, result: MixResult) -> Dict[str, Any]:
        return result.to_dict()

    def decode(self, payload: Dict[str, Any]) -> MixResult:
        return MixResult.from_dict(payload)


@dataclass(frozen=True)
class SearchCell:
    """One feature-search candidate: average MPKI over a segment pool."""

    suite: SuiteSpec
    features: Tuple[Feature, ...]
    hierarchy: HierarchyConfig
    base_config: Optional[MPPPBConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "search"

    def label(self) -> str:
        digest = stable_hash({"f": [f.spec() for f in self.features]})
        return f"search/{len(self.features)}f/{digest[:8]}"

    def key_payload(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "features": [feature.spec() for feature in self.features],
            "base": (None if self.base_config is None
                     else mpppb_payload(self.base_config)),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> float:
        evaluator = _search_evaluator(self.suite, self.hierarchy,
                                      self.base_config, self.prefetch,
                                      self.warmup_fraction, artifacts)
        return evaluator.evaluate(self.features)

    def encode(self, result: float) -> float:
        return result

    def decode(self, payload: float) -> float:
        return float(payload)


@dataclass(frozen=True)
class SearchBatchCell:
    """K feature-search candidates resolved by one shared-context replay.

    An execution grouping, not a cache unit: results are stored and
    looked up per candidate under the corresponding
    :class:`SearchCell` keys (see
    :meth:`ParallelRunner.run_search_batches`), so batched and
    per-candidate runs share the on-disk cache freely.  Evaluation
    itself goes through
    :meth:`~repro.search.evaluator.FeatureSetEvaluator.evaluate_batch`,
    i.e. the :class:`~repro.sim.batch.BatchLLCSimulator` engine.
    """

    suite: SuiteSpec
    feature_sets: Tuple[Tuple[Feature, ...], ...]
    hierarchy: HierarchyConfig
    base_config: Optional[MPPPBConfig] = None
    prefetch: bool = True
    warmup_fraction: float = 0.25

    kind: ClassVar[str] = "search-batch"

    def label(self) -> str:
        digest = stable_hash(
            {"f": [[f.spec() for f in fs] for fs in self.feature_sets]})
        return f"search-batch/{len(self.feature_sets)}c/{digest[:8]}"

    def key_payload(self) -> Dict[str, Any]:
        """Identity payload (task seeding); never used as a store key."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "suite": self.suite.payload(),
            "feature_sets": [[feature.spec() for feature in features]
                             for features in self.feature_sets],
            "base": (None if self.base_config is None
                     else mpppb_payload(self.base_config)),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "prefetch": self.prefetch,
            "warmup_fraction": self.warmup_fraction,
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> List[float]:
        evaluator = _search_evaluator(self.suite, self.hierarchy,
                                      self.base_config, self.prefetch,
                                      self.warmup_fraction, artifacts)
        return evaluator.evaluate_batch(self.feature_sets)

    def encode(self, result: List[float]) -> List[float]:
        return list(result)

    def decode(self, payload: Sequence[float]) -> List[float]:
        return [float(value) for value in payload]


@dataclass(frozen=True)
class MaterializeCell:
    """Prelude task: materialize shared trace/Stage-1 artifacts once.

    The graph scheduler runs these *before* the cell wave so an
    artifact node shared by K cells is computed exactly once and every
    dependent cell loads it, instead of the first K workers racing to
    recompute it.  Produces no cached result — its output is the
    artifact-store side effect plus the measured (accesses, seconds)
    compute samples the scheduler's cost model refines on.  Failures
    are benign: the artifact cache self-heals, so dependent cells just
    recompute what the prelude failed to materialize.
    """

    trace: TraceSpec
    segment_names: Tuple[str, ...]
    hierarchy: HierarchyConfig
    prefetch: bool = True

    kind: ClassVar[str] = "materialize"

    def label(self) -> str:
        return f"graph/{self.trace.benchmark}"

    def key_payload(self) -> Dict[str, Any]:
        """Identity payload (task seeding); never used as a store key."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "trace": self.trace.payload(),
            "segments": list(self.segment_names),
            "hierarchy": hierarchy_payload(self.hierarchy),
            "prefetch": self.prefetch,
        }

    def run(self, artifacts: Optional[ArtifactCache] = None) -> Dict[str, Any]:
        stats = artifacts.stats if artifacts is not None else None
        misses_before = stats.trace_misses if stats is not None else 0
        started = time.perf_counter()
        segments = _segments(self.trace, artifacts)
        trace_seconds = time.perf_counter() - started
        computed_trace = (stats is not None
                          and stats.trace_misses > misses_before)
        overrides = (None if self.trace.ingest is None
                     else {self.trace.ingest.name: self.trace.stage1_scope()})
        runner = SingleThreadRunner(
            self.hierarchy, prefetch=self.prefetch,
            stage1_store=_stage1_store(artifacts, self.trace.llc_bytes,
                                       self.trace.accesses, self.trace.seed,
                                       self.hierarchy, self.prefetch,
                                       scope_overrides=overrides),
        )
        wanted = set(self.segment_names)
        computed = runner.prime_segments(
            [segment for segment in segments if segment.name in wanted])
        return {
            "trace": ([sum(len(s.trace.pcs) for s in segments),
                       trace_seconds] if computed_trace else None),
            "stage1": [[accesses, seconds]
                       for _, accesses, seconds in computed],
        }

    def encode(self, result: Dict[str, Any]) -> Dict[str, Any]:
        return result

    def decode(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return payload


Cell = Union[SingleCell, MixCell, SearchCell, SearchBatchCell,
             MaterializeCell]


def _execute_cell(cell: Cell, key: str,
                  artifact_root: Optional[str] = None,
                  attempt: int = 1,
                  in_worker: bool = False,
                  telemetry: bool = False,
                  deny_loads: frozenset = frozenset(),
                  shared_root: Optional[str] = None
                  ) -> Tuple[Any, float, Dict[str, int],
                             Optional[Dict[str, Any]]]:
    """Run one cell with deterministic seeding.

    Returns (result, seconds, artifact hit/miss deltas, telemetry
    payload).  The artifact cache only changes *where* trace and
    Stage-1 data come from, never their values, so seeding and results
    are identical with it on, off, cold, or warm.  ``attempt`` numbers
    retries (1-based) for the fault-injection harness only — seeding
    depends solely on the key, so a retried cell reproduces the first
    attempt's result exactly.

    With ``telemetry`` the cell runs under an isolated ``repro.obs``
    capture — a fresh span collector and metrics registry — and the
    payload travels back in the return tuple.  That one mechanism
    covers both execution modes: worker processes (whose telemetry
    global starts empty) and in-process serial runs (where the
    parent's ambient context is saved and restored), so serial and
    parallel drives produce identical per-cell span sets.  Telemetry
    is purely observational — it never touches ``random`` — so the
    pinned determinism hashes hold with it on or off.
    """
    plan = active_plan()
    if plan is not None:
        plan.fire(key, attempt, in_worker=in_worker)
    artifacts = _artifact_cache(artifact_root, shared_root)
    if artifacts is not None:
        # The graph plan's deny set rides along with every execution
        # (serial and worker) and is re-set each time, so one shared
        # per-process cache never leaks a previous batch's plan.
        artifacts.deny_loads = deny_loads
    before = artifacts.stats.counts() if artifacts is not None else {}
    if telemetry:
        obs.enable()
    random.seed(task_seed(key))
    started = time.perf_counter()
    with obs.capture() as tele_ctx:
        with obs.span("cell"):
            result = cell.run(artifacts)
    seconds = time.perf_counter() - started
    tele = tele_ctx.payload() if tele_ctx is not None else None
    if artifacts is not None:
        after = artifacts.stats.counts()
        delta = {name: after[name] - before[name] for name in after}
    else:
        delta = {}
    return result, seconds, delta, tele


_AUTO_STORE = object()

#: Cache-lookup sentinel: distinguishes "miss" from a legitimately
#: falsy cached value.
_MISS = object()


@dataclass
class _Task:
    """One unit of fan-out work: a cell, its key, and caller context."""

    cell: Cell
    key: str
    context: Any = None
    attempt: int = 1
    started: float = 0.0  # monotonic submit time (watchdog deadline)


@dataclass
class _DriveStats:
    """Mutable fault accounting for one drive (one run() call)."""

    failures: List[CellFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    requeued: int = 0
    rebuilds: int = 0
    hedges: int = 0      # duplicate submissions launched for stragglers
    hedge_wins: int = 0  # races where the duplicate finished first
    hb_lost: int = 0     # workers declared lost by the heartbeat timeout
    abort: Optional[CellFailure] = None  # set in on_error="raise" mode


class ParallelRunner:
    """Cache-aware, fault-tolerant fan-out executor for experiment cells.

    With ``jobs == 1`` (the default) cache misses run serially in the
    current process through exactly the same entry points the workers
    use, so serial and parallel execution are bit-identical.

    Failure semantics (see DESIGN.md §11): a cell exception is
    captured into a :class:`~repro.exec.faults.CellFailure` instead of
    aborting the batch.  Each cell is retried up to ``retries`` times
    with exponential backoff; a dead worker pool
    (``BrokenProcessPool``) is rebuilt and only unfinished cells are
    requeued, degrading to in-process serial execution after
    ``max_pool_rebuilds`` deaths; with ``cell_timeout`` a watchdog
    abandons stragglers and records them as timeouts.  With
    ``on_error="collect"`` (default) the run completes and failed
    cells yield ``None`` results; with ``"raise"`` the first terminal
    failure raises :class:`~repro.exec.faults.CellExecutionError`
    after in-flight work drains (draining still stores those results).
    Retries and requeues never change results: cell seeding depends
    only on the cache key, never on the attempt number or worker.
    """

    #: Pool deaths tolerated before degrading to serial execution.
    max_pool_rebuilds = 3

    def __init__(self, jobs: Optional[int] = None, store: Any = _AUTO_STORE,
                 verbose: Optional[bool] = None,
                 on_error: Optional[str] = None,
                 retries: Optional[int] = None,
                 cell_timeout: Optional[float] = None,
                 command: Optional[Sequence[str]] = None,
                 backend: Optional[str] = None,
                 workers: Optional[str] = None,
                 shared_store: str = "",
                 hedge: Optional[float] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        # Execution backend: which transport runs cache misses.  Fleet
        # and ssh backends size from --workers / REPRO_WORKERS; their
        # slot count becomes the effective job count so the submission
        # window and report utilization reflect real parallelism.
        self.backend_name = resolve_backend_name(backend)
        self.workers_spec = resolve_workers_spec(workers)
        self.jobs = resolve_slots(self.backend_name, self.jobs,
                                  self.workers_spec)
        self.store: Optional[ResultStore] = (
            default_store() if store is _AUTO_STORE else store
        )
        # Shared store tier (--shared-store / REPRO_SHARED_STORE):
        # results and artifacts read through local disk into a shared
        # directory every worker/host can reach, and write back to
        # both.  Off by default; never wraps a caller-supplied custom
        # store object that lacks a filesystem root.
        shared_root = resolve_shared(shared_store)
        if (shared_root is not None and self.store is not None
                and getattr(self.store, "root", None) is not None
                and getattr(self.store, "shared", None) is None):
            self.store = make_store(str(self.store.root), shared_root)
        # Derive the shared root from the store itself, so a caller
        # passing an already-tiered store gets workers that read
        # through the same shared tier.
        shared_tier = getattr(self.store, "shared", None)
        self.shared_root: Optional[str] = (
            str(shared_tier.root) if shared_tier is not None else None)
        self.verbose = _verbose_default() if verbose is None else verbose
        self.on_error = resolve_on_error(on_error)
        self.retries = resolve_retries(retries)
        self.cell_timeout = resolve_cell_timeout(cell_timeout)
        self.retry_backoff = resolve_retry_backoff()
        # Straggler hedging (--hedge / REPRO_HEDGE, off by default):
        # when a running cell exceeds this multiple of the observed
        # median cell duration and an idle slot exists, launch a
        # duplicate — first completion wins, bit-identical either way
        # (both copies share the cache key and its deterministic seed).
        self.hedge = resolve_hedge(hedge)
        # CLI argv that launched this engine; recorded in run manifests
        # so `repro.cli resume` can re-drive an interrupted run.
        self.command: List[str] = list(command) if command else []
        self.last_report: Optional[ExecReport] = None
        self.last_manifest: Optional[RunManifest] = None
        # Telemetry: where the most recent events.jsonl landed, plus a
        # cursor over the parent-process span collector so each drive
        # only writes the spans recorded since the previous one.
        self.last_events_path = None
        # Trace/Stage-1 artifacts live in the same store as results and
        # ride its enable/disable switch; REPRO_ARTIFACT_CACHE=off opts
        # out of just the artifact layer (results stay cached).
        artifacts_off = (os.environ.get("REPRO_ARTIFACT_CACHE", "").lower()
                         in DISABLED_SENTINELS)
        self.artifact_root: Optional[str] = (
            None if self.store is None or artifacts_off
            else str(self.store.root)
        )
        # Graph-scheduler state for the batch currently driving:
        # materialized keys the plan says to recompute rather than
        # load, and the (cost model, store) pair to refine + persist
        # once the batch's measured timings are in.
        self._deny_loads: frozenset = frozenset()
        self._cost_state: Optional[Tuple[CostModel, ResultStore]] = None

    @classmethod
    def from_options(cls, jobs: Optional[int] = None, cache_dir: str = "",
                     on_error: Optional[str] = None,
                     retries: Optional[int] = None,
                     cell_timeout: Optional[float] = None,
                     command: Optional[Sequence[str]] = None,
                     backend: Optional[str] = None,
                     workers: Optional[str] = None,
                     shared_store: str = "",
                     hedge: Optional[float] = None) -> "ParallelRunner":
        """Build from CLI-style options (``--jobs`` / ``--cache-dir`` /
        ``--on-error`` / ``--retries`` / ``--cell-timeout`` /
        ``--backend`` / ``--workers`` / ``--shared-store`` /
        ``--hedge``).

        An empty ``cache_dir`` defers to ``REPRO_CACHE_DIR``; the
        sentinel values ``off`` / ``none`` / ``0`` disable caching.
        """
        return cls(jobs=jobs, store=resolve_store(cache_dir),
                   on_error=on_error, retries=retries,
                   cell_timeout=cell_timeout, command=command,
                   backend=backend, workers=workers,
                   shared_store=shared_store, hedge=hedge)

    def run(self, cells: Sequence[Cell], label: str = "") -> List[Any]:
        """Resolve every cell (cache or compute); results in cell order.

        Failed cells (retries exhausted, ``on_error="collect"``) leave
        ``None`` in their result slot; ``last_report.failures`` holds
        the structured records.
        """
        sink: List[Tuple[str, str, Optional[Dict[str, Any]]]] = []
        try:
            with obs.span("drive"):
                return self._run_cells(cells, label, sink)
        finally:
            self._write_events(sink)

    def _run_cells(self, cells: Sequence[Cell], label: str,
                   sink: List[Tuple[str, str, Optional[Dict[str, Any]]]]
                   ) -> List[Any]:
        started = time.perf_counter()
        tier_before = self._tier_counts()
        results: List[Any] = [None] * len(cells)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        records: List[Tuple[str, str, str]] = []
        tasks: List[_Task] = []

        for index, cell in enumerate(cells):
            key = stable_hash(cell.key_payload())
            records.append((key, cell.label(), cell.kind))
            value = self._cached_result(cell, key)
            if value is not _MISS:
                results[index] = value
                outcomes[index] = CellOutcome(cell.label(), key, True, 0.0)
            else:
                tasks.append(_Task(cell, key, index))

        manifest = self._open_manifest(label, records)
        if manifest is not None:
            for outcome in outcomes:
                if outcome is not None:
                    manifest.mark(outcome.key, "done")

        artifact_counts: Dict[str, int] = {}
        stats = _DriveStats()
        plan = active_plan()
        graph = self._schedule([(task.cell, task.key) for task in tasks],
                               sink, artifact_counts, stats)

        def settle(task: _Task, result: Any, seconds: float,
                   delta: Dict[str, int],
                   tele: Optional[Dict[str, Any]]) -> None:
            index = task.context
            results[index] = result
            outcomes[index] = CellOutcome(task.cell.label(), task.key, False,
                                          seconds, attempts=task.attempt)
            _merge_counts(artifact_counts, delta)
            if tele is not None:
                sink.append((task.key, task.cell.label(), tele))
            self._store_result(task.cell, task.key, result, plan,
                               task.attempt)
            if manifest is not None:
                manifest.mark(task.key, "done")

        def fail(task: _Task, failure: CellFailure) -> None:
            index = task.context
            outcomes[index] = CellOutcome(task.cell.label(), task.key, False,
                                          failure.seconds, failed=True,
                                          attempts=failure.attempts)
            if manifest is not None:
                manifest.mark(task.key, "failed")

        try:
            self._drive(tasks, stats, settle, fail)
        finally:
            self._finish_report(outcomes, started, label, artifact_counts,
                                stats, planned=len(cells), graph=graph,
                                tier_before=tier_before)
        if self.verbose:
            print(self.last_report.table())
        return results

    def run_search_batches(self, cells: Sequence[SearchCell],
                           batch_size: Optional[int] = None,
                           label: str = "") -> List[float]:
        """Resolve search cells via shared-context batch replays.

        Cache lookups and writes stay *per candidate*, under each
        cell's own ``search`` key, so results computed here serve later
        :meth:`run` calls and vice versa — the batch grouping is purely
        an execution strategy.  Misses are grouped by evaluation scope
        (suite, hierarchy, base config, prefetch, warmup), chunked into
        :class:`SearchBatchCell` tasks of at most ``batch_size``
        candidates (``None`` = one batch per scope), and fanned out
        like any other cells; singleton chunks run as plain cells.
        """
        sink: List[Tuple[str, str, Optional[Dict[str, Any]]]] = []
        try:
            with obs.span("drive"):
                return self._run_search_cells(cells, batch_size, label, sink)
        finally:
            self._write_events(sink)

    def _run_search_cells(
            self, cells: Sequence[SearchCell], batch_size: Optional[int],
            label: str,
            sink: List[Tuple[str, str, Optional[Dict[str, Any]]]]
    ) -> List[float]:
        started = time.perf_counter()
        tier_before = self._tier_counts()
        results: List[Any] = [None] * len(cells)
        outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
        records: List[Tuple[str, str, str]] = []
        pending: List[Tuple[int, str, SearchCell]] = []

        for index, cell in enumerate(cells):
            key = stable_hash(cell.key_payload())
            records.append((key, cell.label(), cell.kind))
            value = self._cached_result(cell, key)
            if value is not _MISS:
                results[index] = value
                outcomes[index] = CellOutcome(cell.label(), key, True, 0.0)
            else:
                pending.append((index, key, cell))

        manifest = self._open_manifest(label, records)
        if manifest is not None:
            for outcome in outcomes:
                if outcome is not None:
                    manifest.mark(outcome.key, "done")

        groups: Dict[str, List[Tuple[int, str, SearchCell]]] = {}
        for item in pending:
            cell = item[2]
            scope = stable_hash({
                "suite": cell.suite.payload(),
                "hierarchy": hierarchy_payload(cell.hierarchy),
                "base": (None if cell.base_config is None
                         else mpppb_payload(cell.base_config)),
                "prefetch": cell.prefetch,
                "warmup_fraction": cell.warmup_fraction,
            })
            groups.setdefault(scope, []).append(item)

        Chunk = List[Tuple[int, str, SearchCell]]
        tasks: List[Tuple[Cell, str, Chunk]] = []
        for members in groups.values():
            size = batch_size or len(members)
            for start in range(0, len(members), size):
                chunk = members[start:start + size]
                if len(chunk) == 1:
                    _, key, cell = chunk[0]
                    tasks.append((cell, key, chunk))
                    continue
                first = chunk[0][2]
                batch_cell = SearchBatchCell(
                    suite=first.suite,
                    feature_sets=tuple(cell.features
                                       for _, _, cell in chunk),
                    hierarchy=first.hierarchy,
                    base_config=first.base_config,
                    prefetch=first.prefetch,
                    warmup_fraction=first.warmup_fraction,
                )
                tasks.append((batch_cell,
                              stable_hash(batch_cell.key_payload()), chunk))

        artifact_counts: Dict[str, int] = {}
        stats = _DriveStats()
        plan = active_plan()
        graph = self._schedule([(cell, key) for _, key, cell in pending],
                               sink, artifact_counts, stats)
        batches = 0
        batched = 0

        def settle(task: _Task, result: Any, seconds: float,
                   delta: Dict[str, int],
                   tele: Optional[Dict[str, Any]]) -> None:
            nonlocal batches, batched
            chunk: Chunk = task.context
            _merge_counts(artifact_counts, delta)
            if tele is not None:
                sink.append((task.key, task.cell.label(), tele))
            if isinstance(task.cell, SearchBatchCell):
                batches += 1
                batched += len(chunk)
                share = seconds / len(chunk)
                per_candidate = zip(chunk, result)
            else:
                share = seconds
                per_candidate = zip(chunk, [result])
            for (index, key, cell), value in per_candidate:
                results[index] = value
                outcomes[index] = CellOutcome(cell.label(), key, False,
                                              share, attempts=task.attempt)
                self._store_result(cell, key, value, plan, task.attempt)
                if manifest is not None:
                    manifest.mark(key, "done")

        def fail(task: _Task, failure: CellFailure) -> None:
            for index, key, cell in task.context:
                outcomes[index] = CellOutcome(cell.label(), key, False,
                                              failure.seconds, failed=True,
                                              attempts=failure.attempts)
                if manifest is not None:
                    manifest.mark(key, "failed")

        def split(task: _Task) -> Optional[List[_Task]]:
            # A failed batch degrades to per-candidate cells (fresh
            # retry budget): one bad candidate must not take the whole
            # chunk down with it.
            chunk: Chunk = task.context
            if not isinstance(task.cell, SearchBatchCell) or len(chunk) <= 1:
                return None
            return [_Task(cell, key, [(index, key, cell)])
                    for index, key, cell in chunk]

        drive_tasks = [_Task(exec_cell, exec_key, chunk)
                       for exec_cell, exec_key, chunk in tasks]
        try:
            self._drive(drive_tasks, stats, settle, fail, split=split)
        finally:
            self._finish_report(outcomes, started, label, artifact_counts,
                                stats, planned=len(cells),
                                batches=batches, batched=batched, graph=graph,
                                tier_before=tier_before)
        if self.verbose:
            print(self.last_report.table())
        return results

    # -- telemetry event sink -----------------------------------------------

    @staticmethod
    def _drain_parent_spans(ctx) -> List[Any]:
        """Parent-context span records not yet written to any event log.

        Engine-level spans (``drive``, the evaluator's ``search-gen-N``)
        land in the parent process's ambient collector, which outlives
        a single drive; the collector-side cursor ensures each record
        is emitted exactly once even across multiple engines.
        """
        return ctx.collector.drain_new()

    @staticmethod
    def _run_counters(report: ExecReport) -> Dict[str, int]:
        """Run-level counters derived from the drive's report."""
        return {
            "exec/cells": report.cells,
            "exec/result-cache-hits": report.hits,
            "exec/computed": report.computed,
            "exec/failed-cells": report.failed,
            "exec/trace-artifact-hits": report.trace_hits,
            "exec/trace-artifact-misses": report.trace_misses,
            "exec/stage1-artifact-hits": report.stage1_hits,
            "exec/stage1-artifact-misses": report.stage1_misses,
            "exec/retries": report.retries,
            "exec/timeouts": report.timeouts,
            "exec/requeued": report.requeued,
            "exec/pool-rebuilds": report.pool_rebuilds,
            "exec/graph-nodes": report.graph_nodes,
            "exec/graph-loads": report.graph_loads,
            "exec/graph-computes": report.graph_computes,
            "exec/graph-shared": report.graph_shared,
            "exec/graph-denied": report.graph_denied,
            "exec/graph-prelude": report.graph_prelude,
            "exec/store-shared-hits": report.store_shared_hits,
            "exec/store-shared-fills": report.store_shared_fills,
            "exec/hedges": report.hedges,
            "exec/hedge-wins": report.hedge_wins,
            "exec/heartbeat-lost": report.hb_lost,
            "exec/store-breaker-trips": report.store_breaker_trips,
            "exec/store-breaker-open": int(report.store_breaker_open),
        }

    def _write_events(self,
                      sink: Sequence[Tuple[str, str, Optional[Dict[str, Any]]]]
                      ) -> None:
        """Merge this drive's telemetry into one ``events.jsonl``.

        Requires telemetry on *and* an open manifest (the events file
        lives beside it and shares its run id).  Best-effort: any
        failure to write leaves the run's results untouched.
        """
        ctx = obs.current()
        manifest = self.last_manifest
        report = self.last_report
        if ctx is None or manifest is None or report is None:
            return
        events: List[Dict[str, Any]] = [run_event(
            manifest.run_id, report.label, report.wall_seconds, report.jobs,
            report.planned, report.cells, time.time(),
        )]
        for record in self._drain_parent_spans(ctx):
            events.append(span_event(None, None, record.to_dict()))
        for name, value in self._run_counters(report).items():
            if value:
                events.append(counter_event(None, name, value))
        for key, cell_label, payload in sink:
            if not payload:
                continue
            for record in payload.get("spans", ()):
                events.append(span_event(key, cell_label, record))
            for name, value in sorted(payload.get("counters", {}).items()):
                events.append(counter_event(key, name, value))
            for name, hist in sorted(payload.get("hists", {}).items()):
                events.append(hist_event(key, name, hist))
        path = write_events(manifest.events_path, events)
        if path is not None:
            self.last_events_path = path

    def flush_telemetry(self):
        """Append parent spans that closed after the last drive.

        The CLI calls this once per command so trailing engine-level
        spans (the final ``search-gen-N``, for example) still reach the
        most recent event log.  Returns that log's path, or ``None``.
        """
        ctx = obs.current()
        if ctx is None or self.last_events_path is None:
            return self.last_events_path
        fresh = self._drain_parent_spans(ctx)
        if not fresh:
            return self.last_events_path
        lines = [json.dumps(span_event(None, None, record.to_dict()),
                            separators=(",", ":"))
                 for record in fresh]
        try:
            with open(self.last_events_path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        except OSError:
            return None
        return self.last_events_path

    # -- graph scheduling ----------------------------------------------------

    def _schedule(self, items: Sequence[Tuple[Cell, str]],
                  sink: List[Tuple[str, str, Optional[Dict[str, Any]]]],
                  artifact_counts: Dict[str, int],
                  stats: _DriveStats) -> Optional[Dict[str, int]]:
        """Plan the artifact graph for this batch's misses.

        Lowers the miss cells into one deduplicated
        :class:`~repro.graph.ExperimentGraph`, runs the cost-model
        forward/backward passes, installs the deny-load set, and
        materializes shared compute nodes through a prelude wave.
        Returns planned-action counters for the report, or ``None``
        when scheduling is off (``REPRO_GRAPH=off``), there is nothing
        to plan, or no artifact store is attached.  Planning failures
        degrade to the unplanned path — the scheduler decides where
        bytes come from, never whether a run completes.
        """
        self._deny_loads = frozenset()
        self._cost_state = None
        if not items or self.artifact_root is None or not graph_enabled():
            return None
        try:
            pstore = make_store(self.artifact_root, self.shared_root)
            model = CostModel.load(pstore)
            plan = plan_cells(items, pstore, model)
        except Exception:
            return None
        self._deny_loads = plan.deny
        self._cost_state = (model, pstore)
        counts = dict(plan.counts)
        counts["denied"] = len(plan.deny)
        counts["prelude"] = len(plan.prelude)
        if plan.prelude:
            self._run_prelude(plan.prelude, model, sink, artifact_counts,
                              stats)
        return counts

    def _run_prelude(self, groups, model: CostModel,
                     sink: List[Tuple[str, str, Optional[Dict[str, Any]]]],
                     artifact_counts: Dict[str, int],
                     stats: _DriveStats) -> None:
        """Materialize shared artifacts once, ahead of the cell wave.

        Rides the same fault-tolerant drive as real cells (retries,
        pool recovery, watchdog), but failures are non-fatal and kept
        out of the batch's failure list: a prelude loss just means the
        dependent cells recompute the artifact themselves.
        """
        cells = [MaterializeCell(trace=group.trace,
                                 segment_names=group.segments,
                                 hierarchy=group.hierarchy,
                                 prefetch=group.prefetch)
                 for group in groups]
        tasks = [_Task(cell, stable_hash(cell.key_payload()), index)
                 for index, cell in enumerate(cells)]
        pstats = _DriveStats()

        def settle(task: _Task, result: Any, seconds: float,
                   delta: Dict[str, int],
                   tele: Optional[Dict[str, Any]]) -> None:
            _merge_counts(artifact_counts, delta)
            if tele is not None:
                sink.append((task.key, task.cell.label(), tele))
            if isinstance(result, dict):
                trace_sample = result.get("trace")
                if trace_sample:
                    model.observe_compute("trace", int(trace_sample[0]),
                                          float(trace_sample[1]))
                for accesses, secs in result.get("stage1", ()):
                    model.observe_compute("stage1", int(accesses),
                                          float(secs))

        def fail(task: _Task, failure: CellFailure) -> None:
            pass

        try:
            self._drive(tasks, pstats, settle, fail)
        except CellExecutionError:
            pass  # non-fatal by design; cells self-heal
        stats.retries += pstats.retries
        stats.timeouts += pstats.timeouts
        stats.requeued += pstats.requeued
        stats.rebuilds += pstats.rebuilds

    def _finish_costs(self, artifact_counts: Dict[str, int]) -> None:
        """Fold the batch's measured load throughput in and persist."""
        state = self._cost_state
        self._cost_state = None
        self._deny_loads = frozenset()
        if state is None:
            return
        model, pstore = state
        read_bytes = artifact_counts.get("read_bytes", 0)
        read_us = artifact_counts.get("read_us", 0)
        if read_bytes and read_us:
            model.observe_load(read_bytes, read_us / 1e6, tier="local")
        shared_bytes = artifact_counts.get("shared_read_bytes", 0)
        shared_us = artifact_counts.get("shared_read_us", 0)
        if shared_bytes and shared_us:
            model.observe_load(shared_bytes, shared_us / 1e6, tier="shared")
        model.save(pstore)

    # -- shared fault-tolerant drive machinery ------------------------------

    def _cached_result(self, cell: Cell, key: str) -> Any:
        """Store lookup; ``_MISS`` on absence, wrong kind, or corruption.

        A payload whose ``kind`` matches but whose ``result`` fails
        ``cell.decode`` degrades to a cache miss (the cell re-executes)
        — the same "corruption is a miss" contract the artifact cache
        keeps in :mod:`repro.exec.artifacts`.
        """
        if self.store is None:
            return _MISS
        payload = self.store.get(key)
        if payload is None or payload.get("kind") != cell.kind:
            return _MISS
        try:
            return cell.decode(payload["result"])
        except Exception:
            return _MISS

    def _store_result(self, cell: Cell, key: str, result: Any,
                      plan, attempt: int) -> None:
        if self.store is None:
            return
        self.store.put(key, {"kind": cell.kind,
                             "result": cell.encode(result)})
        if plan is not None and plan.corrupts(key, attempt):
            corrupt_result_blob(self.store, key, cell.kind)

    def _open_manifest(self, label: str,
                       records: Sequence[Tuple[str, str, str]]
                       ) -> Optional[RunManifest]:
        """Open the run manifest for this batch, when worth recording.

        Needs an attached store (the manifest lives beside it) and
        more than one cell — single-cell runs resume trivially through
        the result cache and would drown ``runs/`` in tiny files
        during hill-climb searches.  ``REPRO_RUN_MANIFEST=off``
        disables manifests entirely.
        """
        self.last_manifest = None
        if self.store is None or len(records) < 2:
            return None
        if (os.environ.get("REPRO_RUN_MANIFEST", "").lower()
                in DISABLED_SENTINELS):
            return None
        exec_info = {"backend": self.backend_name, "jobs": str(self.jobs)}
        if self.workers_spec is not None:
            exec_info["workers"] = self.workers_spec
        if self.shared_root is not None:
            exec_info["shared_store"] = self.shared_root
        manifest = RunManifest.create(self.store.root, label=label,
                                      command=self.command, cells=records,
                                      exec_info=exec_info)
        self.last_manifest = manifest
        return manifest

    def _tier_counts(self) -> Dict[str, int]:
        """Shared-tier counters of the result store (empty if untiered)."""
        counts = getattr(self.store, "tier_counts", None)
        return dict(counts()) if callable(counts) else {}

    def _finish_report(self, outcomes: Sequence[Optional[CellOutcome]],
                       started: float, label: str,
                       artifact_counts: Dict[str, int], stats: _DriveStats,
                       planned: int, batches: int = 0,
                       batched: int = 0,
                       graph: Optional[Dict[str, int]] = None,
                       tier_before: Optional[Dict[str, int]] = None
                       ) -> ExecReport:
        self._finish_costs(artifact_counts)
        graph = graph or {}
        # Shared-tier traffic: parent-side result lookups (store tier
        # counter deltas over this drive) plus worker-side artifact
        # reads (shipped back in the artifact count deltas).
        tier_before = tier_before or {}
        tier_now = self._tier_counts()
        shared_hits = (tier_now.get("shared_hits", 0)
                       - tier_before.get("shared_hits", 0)
                       + artifact_counts.get("shared_hits", 0))
        shared_fills = (tier_now.get("shared_fills", 0)
                        - tier_before.get("shared_fills", 0))
        self.last_report = ExecReport(
            outcomes=tuple(outcome for outcome in outcomes
                           if outcome is not None),
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs,
            label=label,
            trace_hits=artifact_counts.get("trace_hits", 0),
            trace_misses=artifact_counts.get("trace_misses", 0),
            stage1_hits=artifact_counts.get("stage1_hits", 0),
            stage1_misses=artifact_counts.get("stage1_misses", 0),
            batches=batches,
            batched=batched,
            planned=planned,
            failures=tuple(stats.failures),
            retries=stats.retries,
            timeouts=stats.timeouts,
            requeued=stats.requeued,
            pool_rebuilds=stats.rebuilds,
            graph_nodes=graph.get("nodes", 0),
            graph_loads=graph.get("loads", 0),
            graph_computes=graph.get("computes", 0),
            graph_shared=graph.get("shared", 0),
            graph_denied=graph.get("denied", 0),
            graph_prelude=graph.get("prelude", 0),
            backend=self.backend_name,
            store_shared_hits=shared_hits,
            store_shared_fills=shared_fills,
            hedges=stats.hedges,
            hedge_wins=stats.hedge_wins,
            hb_lost=stats.hb_lost,
            store_breaker_trips=(tier_now.get("breaker_trips", 0)
                                 - tier_before.get("breaker_trips", 0)),
            store_breaker_open=bool(tier_now.get("breaker_open", 0)),
        )
        return self.last_report

    def _drive(self, tasks: Sequence[_Task], stats: _DriveStats,
               settle: Callable[[_Task, Any, float, Dict[str, int]], None],
               fail: Callable[[_Task, CellFailure], None],
               split: Optional[Callable[[_Task], Optional[List[_Task]]]]
               = None) -> None:
        """Execute ``tasks`` with isolation, retries, and recovery."""
        queue: Deque[_Task] = deque(tasks)
        workers = min(self.jobs, len(queue))
        if workers > 1:
            self._drive_parallel(queue, settle, fail, split, stats, workers)
        else:
            self._drive_serial(queue, settle, fail, split, stats)
        if stats.abort is not None:
            raise CellExecutionError(stats.abort)

    def _drive_serial(self, queue: Deque[_Task], settle, fail, split,
                      stats: _DriveStats) -> None:
        while queue and stats.abort is None:
            task = queue.popleft()
            try:
                result, seconds, delta, tele = _execute_cell(
                    task.cell, task.key, self.artifact_root, task.attempt,
                    False, obs.enabled(), self._deny_loads,
                    shared_root=self.shared_root)
            except KeyboardInterrupt:
                queue.appendleft(task)
                raise
            except Exception as exc:
                self._after_failure(task, exc, "error", queue, stats, fail,
                                    split)
            else:
                settle(task, result, seconds, delta, tele)

    def _make_backend(self, workers: int) -> ExecutionBackend:
        return create_backend(self.backend_name, workers, self.workers_spec)

    def _request(self, task: _Task) -> Dict[str, Any]:
        """Picklable execution request a backend ships to a worker."""
        return {
            "cell": task.cell,
            "key": task.key,
            "artifact_root": self.artifact_root,
            "shared_root": self.shared_root,
            "attempt": task.attempt,
            "telemetry": obs.enabled(),
            "deny_loads": self._deny_loads,
        }

    def _drive_parallel(self, queue: Deque[_Task], settle, fail, split,
                        stats: _DriveStats, workers: int) -> None:
        backend = self._make_backend(workers)
        try:
            backend.start()
        except BackendUnavailable as exc:
            print(f"repro.exec: {self.backend_name} backend unavailable "
                  f"({exc}); running serially", file=sys.stderr)
            self._drive_serial(queue, settle, fail, split, stats)
            return
        running: Dict[int, _Task] = {}
        next_id = 0
        # Hedge-race state: completed-cell durations seed the straggler
        # baseline; ``hedge_twin`` maps each racing copy to its partner
        # (both directions) and ``hedge_copies`` marks which id is the
        # duplicate.  A cell with a live twin can never fail the run —
        # one copy's loss/error/timeout is absorbed while the other
        # carries the cell.
        durations: List[float] = []
        hedge_twin: Dict[int, int] = {}
        hedge_copies: set = set()
        hedge_seed: Any = _MISS  # lazily computed cold-start baseline

        def drop_twin_pairing(task_id: int) -> Optional[int]:
            """Dissolve ``task_id``'s race; returns its live twin, if any."""
            twin = hedge_twin.pop(task_id, None)
            if twin is not None:
                hedge_twin.pop(twin, None)
            hedge_copies.discard(task_id)
            return twin if twin in running else None

        try:
            while True:
                need_rebuild = False
                # Innocent in-flight cells requeued by a rebuild keep
                # their attempt number after a watchdog timeout (the
                # straggler is at fault, not they) but are bumped after
                # a worker loss (whether *this* cell crashed the worker
                # is unknowable, and a bump keeps first-attempt-only
                # injected crashes from refiring).
                bump_on_rebuild = True
                # Sliding submission window: at most ``workers``
                # requests in flight, so every running task really is
                # running and the watchdog deadline below is a compute
                # deadline, not a queue-wait deadline.
                while queue and len(running) < workers and stats.abort is None:
                    task = queue.popleft()
                    try:
                        backend.submit(next_id, self._request(task))
                    except BackendUnavailable:
                        queue.appendleft(task)
                        need_rebuild = True
                        break
                    except Exception as exc:
                        # The request itself is bad (e.g. unpicklable
                        # cell): a cell-level failure, not a transport
                        # problem.
                        self._after_failure(task, exc, "error", queue,
                                            stats, fail, split)
                        continue
                    task.started = time.monotonic()
                    running[next_id] = task
                    next_id += 1
                if not need_rebuild:
                    if not running:
                        if stats.abort is not None or not queue:
                            return
                        need_rebuild = True  # nothing submitted cleanly
                    else:
                        for frame in backend.poll(self._poll_interval()):
                            task = running.pop(frame.task_id, None)
                            if task is None:
                                continue
                            if frame.status == FRAME_OK:
                                won_race = frame.task_id in hedge_copies
                                twin = drop_twin_pairing(frame.task_id)
                                if twin is not None:
                                    # First completion wins; the losing
                                    # copy is forgotten softly — its
                                    # slot frees when it finishes.
                                    running.pop(twin, None)
                                    backend.discard(twin, kill=False)
                                    if won_race:
                                        stats.hedge_wins += 1
                                result, seconds, delta, tele = frame.payload
                                durations.append(seconds)
                                settle(task, result, seconds, delta, tele)
                            elif frame.status == FRAME_LOST:
                                reason = frame.payload
                                if (isinstance(reason, str)
                                        and HEARTBEAT_LOST in reason):
                                    stats.hb_lost += 1
                                if self.verbose:
                                    print(f"repro.exec: {reason}",
                                          file=sys.stderr)
                                if drop_twin_pairing(frame.task_id) \
                                        is not None:
                                    # The surviving twin carries the
                                    # cell; absorb this copy's loss.
                                    continue
                                # A worker died under this cell; bump
                                # its attempt and requeue — exactly the
                                # old BrokenProcessPool path.
                                task.attempt += 1
                                stats.requeued += 1
                                queue.append(task)
                                need_rebuild = True
                            else:
                                if drop_twin_pairing(frame.task_id) \
                                        is not None:
                                    # Twin still racing: swallow this
                                    # copy's error.  Deterministic cells
                                    # fail identically, so a real cell
                                    # bug still surfaces through the
                                    # twin; what this absorbs is
                                    # attempt-scoped transients.
                                    continue
                                self._after_failure(task, frame.payload,
                                                    "error", queue, stats,
                                                    fail, split)
                        if self.cell_timeout is not None and running:
                            now = time.monotonic()
                            expired = [
                                task_id
                                for task_id, task in running.items()
                                if now - task.started >= self.cell_timeout]
                            for task_id in expired:
                                task = running.pop(task_id)
                                backend.discard(task_id)
                                if drop_twin_pairing(task_id) is not None:
                                    # Not a run-level timeout: the twin
                                    # is still inside its own deadline.
                                    continue
                                stats.timeouts += 1
                                timeout_exc = TimeoutError(
                                    f"cell exceeded cell-timeout of "
                                    f"{self.cell_timeout:g}s")
                                self._after_failure(task, timeout_exc,
                                                    "timeout", queue, stats,
                                                    fail, split)
                                # The straggler still occupies a worker
                                # slot; the only way to reclaim that
                                # capacity is a rebuild.
                                need_rebuild = True
                                bump_on_rebuild = False
                        if (self.hedge is not None and not queue
                                and running and len(running) < workers
                                and stats.abort is None
                                and not need_rebuild):
                            if hedge_seed is _MISS:
                                hedge_seed = self._hedge_seed(
                                    running.values())
                            baseline = (statistics.median(durations)
                                        if durations else hedge_seed)
                            if baseline:
                                next_id = self._launch_hedges(
                                    backend, running, next_id,
                                    baseline * self.hedge, workers,
                                    hedge_twin, hedge_copies, stats)
                if need_rebuild:
                    # Tear every worker down and requeue unfinished
                    # cells — everything already settled stays settled
                    # (and stored), so a rebuild loses zero completed
                    # results.  Of a hedge race caught mid-flight only
                    # the original is requeued; the duplicate existed
                    # purely to race it.
                    for task_id, task in running.items():
                        if (task_id in hedge_copies
                                and hedge_twin.get(task_id) in running):
                            continue
                        if bump_on_rebuild:
                            task.attempt += 1
                        stats.requeued += 1
                        queue.append(task)
                    running.clear()
                    hedge_twin.clear()
                    hedge_copies.clear()
                    stats.rebuilds += 1
                    recovered = False
                    if stats.rebuilds <= self.max_pool_rebuilds:
                        try:
                            backend.rebuild()
                            recovered = True
                        except BackendUnavailable:
                            recovered = False
                    if not recovered:
                        # Rebuild budget spent (or workers will not
                        # come back): finish the remaining cells
                        # in-process.
                        backend.close()
                        self._drive_serial(queue, settle, fail, split, stats)
                        return
        finally:
            backend.close()

    def _after_failure(self, task: _Task, exc: BaseException, kind: str,
                       queue: Deque[_Task], stats: _DriveStats, fail,
                       split) -> None:
        """Route one failed execution: retry, degrade, or record."""
        if task.attempt <= self.retries:
            stats.retries += 1
            self._backoff(task.attempt)
            task.attempt += 1
            queue.append(task)
            return
        if split is not None:
            replacements = split(task)
            if replacements:
                stats.requeued += len(replacements)
                queue.extend(replacements)
                return
        seconds = self.cell_timeout or 0.0 if kind == "timeout" else 0.0
        failure = make_failure(task.cell.label(), task.key, exc, kind,
                               attempts=task.attempt, seconds=seconds)
        stats.failures.append(failure)
        if stats.abort is None and self.on_error == "raise":
            stats.abort = failure
        fail(task, failure)

    def _launch_hedges(self, backend: ExecutionBackend,
                       running: Dict[int, _Task], next_id: int,
                       deadline: float, workers: int,
                       hedge_twin: Dict[int, int], hedge_copies: set,
                       stats: _DriveStats) -> int:
        """Duplicate stragglers onto idle slots; returns the next id.

        A duplicate carries ``attempt + 1`` so attempt-scoped injected
        faults (``times=1`` rules) do not refire on it — which is also
        why a hedge can rescue a cell pinned under an injected hang.
        Results cannot differ: cell seeding depends only on the cache
        key, so the race is bit-identical by construction and first
        completion wins.
        """
        now = time.monotonic()
        for task_id, task in list(running.items()):
            if len(running) >= workers:
                break
            if task_id in hedge_twin:
                continue
            if now - task.started < deadline:
                continue
            clone = _Task(task.cell, task.key, task.context,
                          attempt=task.attempt + 1)
            try:
                backend.submit(next_id, self._request(clone))
            except Exception:
                break  # no healthy idle slot after all; try next poll
            clone.started = time.monotonic()
            running[next_id] = clone
            hedge_twin[task_id] = next_id
            hedge_twin[next_id] = task_id
            hedge_copies.add(next_id)
            stats.hedges += 1
            if self.verbose:
                print(f"repro.exec: hedging straggler "
                      f"{task.cell.label()} after "
                      f"{now - task.started:.2f}s", file=sys.stderr)
            next_id += 1
        return next_id

    def _hedge_seed(self, tasks) -> Optional[float]:
        """Cold-start hedge baseline from the §14 cost model.

        With no completed cell yet, estimate a typical cell duration
        as the modeled trace + stage-1 compute cost of the largest
        in-flight cell, doubled for slack (modeled rates undershoot
        wall time — they exclude stage-2 replay and artifact IO).
        Returns ``None`` (no hedging until a real duration lands) when
        no model or access counts are available.
        """
        try:
            if self._cost_state is not None:
                model = self._cost_state[0]
            elif self.artifact_root is not None:
                model = CostModel.load(
                    make_store(self.artifact_root, self.shared_root))
            else:
                return None
            estimates = [
                model.compute_cost("trace", accesses)
                + model.compute_cost("stage1", accesses)
                for accesses in (self._cell_accesses(task.cell)
                                 for task in tasks)
                if accesses > 0]
            if not estimates:
                return None
            return 2.0 * max(estimates)
        except Exception:
            return None

    @staticmethod
    def _cell_accesses(cell: Cell) -> int:
        """Access count a cell replays (0 when the shape is unknown)."""
        trace = getattr(cell, "trace", None)
        if trace is not None:
            return int(getattr(trace, "accesses", 0) or 0)
        suite = getattr(cell, "suite", None)
        if suite is not None:
            accesses = int(getattr(suite, "accesses", 0) or 0)
            names = (getattr(cell, "benchmarks", None)
                     or getattr(suite, "names", None) or ())
            return accesses * max(1, len(names))
        return 0

    def _poll_interval(self) -> Optional[float]:
        """Wait quantum for the parallel loop; None = block until done."""
        if self.cell_timeout is not None:
            return max(0.02, min(0.1, self.cell_timeout / 5.0))
        if self.hedge is not None:
            # Hedge triggers fire on wall time, not on frames — the
            # loop must wake even when nothing completes.
            return 0.05
        return None

    def _backoff(self, attempt: int) -> None:
        delay = min(self.retry_backoff * (2 ** (attempt - 1)), 2.0)
        if delay > 0:
            time.sleep(delay)


def _merge_counts(totals: Dict[str, int], delta: Dict[str, int]) -> None:
    for name, count in delta.items():
        totals[name] = totals.get(name, 0) + count
