"""Content-addressed on-disk result cache.

Two kinds of blob live under the same root, both keyed by the cell's
stable hash (:mod:`repro.exec.cachekey`):

* **JSON results** — ``<root>/<key[:2]>/<key>.json``; each blob records
  the schema version and the cell kind alongside the serialized result,
  so stale or foreign blobs are treated as misses rather than
  deserialized incorrectly.
* **Binary artifacts** — ``<root>/<key[:2]>/<key>.bin``; opaque bytes
  whose framing and schema validation belong to
  :mod:`repro.exec.artifacts` (packed traces and Stage-1 streams).

The store is safe for concurrent writers (atomic ``os.replace`` of a
temp file) and keeps LRU semantics over both blob kinds.  Recency is
tracked in an append-only ``index.log`` of relative blob paths — a
monotonic insertion/touch order that stays stable even when many blobs
are written within the same filesystem-timestamp second; mtime is only
a fallback for blobs that predate the log.  Hit/miss/store/evict
counters feed the execution report.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.exec import faults, health
from repro.exec.cachekey import SCHEMA_VERSION

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: ``REPRO_CACHE_DIR`` values that disable on-disk caching entirely.
DISABLED_SENTINELS = ("off", "none", "0")

#: Name of the append-only recency log kept at the store root.
INDEX_NAME = "index.log"

#: Advisory lock file serializing eviction/index-compaction across
#: processes sharing one cache directory.
LOCK_NAME = ".lock"


@dataclass
class CacheStats:
    """Counters for one store over one process lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultStore:
    """Blob store keyed by content hash, with LRU eviction."""

    def __init__(self, root, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.root = Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._count: Optional[int] = None  # lazily measured blob count

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _bin_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.bin"

    def _blobs(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json")) + list(self.root.glob("??/*.bin"))

    def __len__(self) -> int:
        return len(self._blobs())

    # -- cross-process exclusion -------------------------------------------

    @contextmanager
    def _exclusive(self) -> Iterator[None]:
        """Advisory inter-process lock over destructive maintenance.

        Writes (``put``/``put_bytes``) stay lock-free — they are
        atomic ``os.replace`` operations and single-``write`` index
        appends — but eviction unlinks blobs *and* compacts the index,
        and two processes doing that concurrently could each pick
        different survivor sets.  ``flock`` on a sidecar file
        serializes them; on platforms without ``fcntl`` (or when the
        lock file cannot be created) this degrades to the old
        unserialized behavior rather than failing.
        """
        if fcntl is None:
            yield
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            handle = open(self.root / LOCK_NAME, "a+")
        except OSError:
            yield
            return
        try:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
            except OSError:
                pass
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            except OSError:
                pass
            handle.close()

    # -- recency index -----------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / INDEX_NAME

    def _touch(self, path: Path) -> None:
        """Record ``path`` as most recently used.

        Appends the blob's relative path to the monotonic recency log;
        appends are ordered by write order, not timestamps, so LRU
        ordering survives bursts of same-second activity.  Also bumps
        the mtime as a fallback signal for stores whose log was lost.
        """
        try:
            os.utime(path)
        except OSError:
            pass
        try:
            with open(self._index_path(), "a", encoding="utf-8") as handle:
                handle.write(f"{path.parent.name}/{path.name}\n")
        except OSError:
            pass

    def _recency(self) -> Dict[str, int]:
        """Relative path -> last log position (higher = more recent)."""
        order: Dict[str, int] = {}
        try:
            with open(self._index_path(), "r", encoding="utf-8") as handle:
                for position, line in enumerate(handle):
                    order[line.strip()] = position
        except OSError:
            pass
        return order

    def _rewrite_index(self, survivors: List[Path]) -> None:
        """Compact the log to the surviving blobs, oldest first."""
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for path in survivors:
                    handle.write(f"{path.parent.name}/{path.name}\n")
            os.replace(tmp, self._index_path())
        except OSError:
            pass

    # -- JSON result blobs -------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on miss."""
        try:
            return self.get_strict(key)
        except OSError:
            self.stats.misses += 1
            return None

    def get_strict(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get`, but IO *failure* propagates as ``OSError``.

        Absence (``FileNotFoundError``) and undecodable content are
        still misses — they are normal cache states.  Everything else
        (permission loss, stale NFS handles, dead mounts) raises, so
        the tiered store's circuit breaker can tell a cold cache from
        a broken one.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` (stamped with the schema)."""
        blob = dict(payload)
        blob["schema"] = SCHEMA_VERSION
        data = json.dumps(blob, separators=(",", ":")).encode("utf-8")
        self._write(self._path(key), data)

    # -- binary artifact blobs --------------------------------------------

    def get_bytes(self, key: str) -> Optional[bytes]:
        """Return the binary blob for ``key``, or ``None`` on miss.

        Framing and schema validation are the caller's responsibility
        (see :mod:`repro.exec.artifacts`).
        """
        try:
            return self.get_bytes_strict(key)
        except OSError:
            self.stats.misses += 1
            return None

    def get_bytes_strict(self, key: str) -> Optional[bytes]:
        """Like :meth:`get_bytes`; IO failure (not absence) raises."""
        path = self._bin_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        self._touch(path)
        self.stats.hits += 1
        return data

    def put_bytes(self, key: str, data: bytes) -> None:
        """Atomically persist an opaque binary blob."""
        self._write(self._bin_path(key), data)

    def stat_bytes(self, key: str) -> Optional[int]:
        """Size of the binary blob for ``key`` without reading it.

        The graph planner stats every candidate artifact this way —
        materialization plus load-cost sizing at ``stat`` price, no
        recency touch, no hit/miss accounting.
        """
        try:
            return self.stat_bytes_strict(key)
        except OSError:
            return None

    def stat_bytes_strict(self, key: str) -> Optional[int]:
        """Like :meth:`stat_bytes`; IO failure (not absence) raises."""
        try:
            return self._bin_path(key).stat().st_size
        except FileNotFoundError:
            return None

    # -- shared write/evict machinery -------------------------------------

    def _write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._touch(path)
        self.stats.stores += 1
        if self._count is None:
            self._count = len(self._blobs())
        elif not existed:
            self._count += 1
        if self._count > self.max_entries:
            self._evict()

    def _evict(self) -> None:
        """Drop least-recently-used blobs until back under ``max_entries``.

        Recency comes from the monotonic ``index.log`` positions;
        filesystem mtime only breaks ties for unlogged blobs (which
        sort oldest), so same-second writes evict in insertion order.
        Runs under the cross-process lock so two writers sharing one
        cache directory cannot interleave unlink/compaction steps.
        """
        with self._exclusive():
            self._evict_locked()

    def _ranked_blobs(self) -> List[Path]:
        """All blobs sorted least- to most-recently used."""
        blobs = self._blobs()
        order = self._recency()

        def rank(path: Path):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                mtime = 0.0
            return (order.get(f"{path.parent.name}/{path.name}", -1),
                    mtime, path.name)

        blobs.sort(key=rank)
        return blobs

    def _drop(self, victims: List[Path], survivors: List[Path]) -> int:
        removed = 0
        for path in victims:
            try:
                path.unlink()
                self.stats.evictions += 1
                removed += 1
            except OSError:
                pass
        # Writers are lock-free, so a blob can land between the ranking
        # snapshot and this compaction (a concurrent put, or a
        # read-through fill from the shared tier while gc runs).
        # Re-list and keep index entries for the newcomers — ranked by
        # their current log positions — so compaction never erases
        # their recency and marks them for premature eviction.
        survivor_set = set(survivors)
        extras = [path for path in self._blobs()
                  if path not in survivor_set]
        if extras:
            order = self._recency()
            extras.sort(key=lambda path: order.get(
                f"{path.parent.name}/{path.name}", -1))
        self._rewrite_index(survivors + extras)
        self._count = len(survivors) + len(extras)
        return removed

    def _evict_locked(self) -> None:
        blobs = self._ranked_blobs()
        excess = max(0, len(blobs) - self.max_entries)
        self._drop(blobs[:excess], blobs[excess:])

    # -- inspection + maintenance (``repro.cli cache``) --------------------

    def usage(self) -> Dict[str, int]:
        """Entry/byte totals split by blob kind (results vs artifacts)."""
        entries = results = artifacts = 0
        total = result_bytes = artifact_bytes = 0
        for path in self._blobs():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            entries += 1
            total += size
            if path.suffix == ".json":
                results += 1
                result_bytes += size
            else:
                artifacts += 1
                artifact_bytes += size
        return {
            "entries": entries,
            "bytes": total,
            "results": results,
            "result_bytes": result_bytes,
            "artifacts": artifacts,
            "artifact_bytes": artifact_bytes,
        }

    def gc(self, max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None) -> int:
        """LRU-evict down to the given targets; returns blobs removed."""
        if max_entries is None and max_bytes is None:
            return 0
        with self._exclusive():
            blobs = self._ranked_blobs()
            sizes = []
            for path in blobs:
                try:
                    sizes.append(path.stat().st_size)
                except OSError:
                    sizes.append(0)
            cut = 0
            if max_entries is not None:
                cut = max(cut, len(blobs) - max(0, max_entries))
            if max_bytes is not None:
                remaining = sum(sizes[cut:])
                while cut < len(blobs) and remaining > max_bytes:
                    remaining -= sizes[cut]
                    cut += 1
            return self._drop(blobs[:cut], blobs[cut:])

    def clear(self) -> int:
        """Remove every blob; returns the number removed."""
        removed = 0
        for path in self._blobs():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self._index_path().unlink()
        except OSError:
            pass
        self._count = 0
        return removed


# -- tiered (local + shared) store ----------------------------------------


@dataclass
class TierStats:
    """Per-tier counters for one :class:`TieredResultStore`."""

    local_hits: int = 0
    shared_hits: int = 0    # read-through hits served by the shared tier
    shared_fills: int = 0   # write-backs pushed up into the shared tier


class TieredResultStore(ResultStore):
    """Two-level store: local disk backed by a shared directory.

    Lookups try the local tier first; a local miss that hits the
    shared tier is *read through* — the blob is promoted into the
    local tier (best effort) and counted as a hit, so a result
    computed by any worker on any host serves every other worker at
    local-disk speed after the first pull.  Writes go to both tiers
    (shared write-back is best effort: a full or flaky shared mount
    degrades to local-only caching, never to a failed run).

    Deny-set and cache-key semantics are untouched: tiers only change
    *where* a blob is found, never which key names it or whether a
    payload validates.  A half-written or corrupt shared blob fails
    the same schema/decode checks as a local one and degrades to a
    miss.  ``last_tier`` records where the most recent hit came from
    (the artifact layer uses it for per-tier throughput accounting).

    Every shared-tier operation runs through a circuit breaker
    (DESIGN.md §16): after ``REPRO_BREAKER_THRESHOLD`` consecutive IO
    *failures* (not misses — absence is a normal cache state) the
    shared tier is skipped wholesale, with one stderr notice, until a
    half-open probe after ``REPRO_BREAKER_COOLDOWN`` seconds finds it
    healthy again.  A dead NFS mount therefore costs a handful of
    failed calls, not one stall per lookup for the rest of the run.
    """

    def __init__(self, root, shared, max_entries: int = 100_000) -> None:
        super().__init__(root, max_entries=max_entries)
        self.shared = ResultStore(shared, max_entries=max_entries)
        self.tiers = TierStats()
        self.last_tier = "local"
        self.breaker = health.make_breaker()

    def _shared_call(self, key: str, op: Callable[[], Any]) -> Any:
        """One shared-tier operation: breaker gate, chaos hook, verdict.

        Returns the operation's value, or ``None`` when the tier is
        skipped (breaker open) or the operation failed.  Lookup misses
        return ``None`` from ``op`` itself and correctly count as
        successes — the tier answered.
        """
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            return None
        try:
            faults.shared_tier_fault(key)
            value = op()
        except OSError as exc:
            if breaker is not None and breaker.record_failure():
                print(
                    f"repro: shared store tier degraded to local-only: "
                    f"circuit breaker open after {breaker.threshold} "
                    f"consecutive IO failure(s) "
                    f"(cooldown {breaker.cooldown:g}s; last: {exc})",
                    file=sys.stderr)
            return None
        if breaker is not None:
            breaker.record_success()
        return value

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        payload = super().get(key)
        if payload is not None:
            self.last_tier = "local"
            self.tiers.local_hits += 1
            return payload
        payload = self._shared_call(
            key, lambda: self.shared.get_strict(key))
        if payload is None:
            return None
        try:
            ResultStore.put(self, key, payload)  # read-through fill
        except OSError:
            pass
        self.stats.misses -= 1  # the local-tier miss became a hit
        self.stats.hits += 1
        self.tiers.shared_hits += 1
        self.last_tier = "shared"
        return payload

    def get_bytes(self, key: str) -> Optional[bytes]:
        data = super().get_bytes(key)
        if data is not None:
            self.last_tier = "local"
            self.tiers.local_hits += 1
            return data
        data = self._shared_call(
            key, lambda: self.shared.get_bytes_strict(key))
        if data is None:
            return None
        try:
            ResultStore.put_bytes(self, key, data)  # read-through fill
        except OSError:
            pass
        self.stats.misses -= 1
        self.stats.hits += 1
        self.tiers.shared_hits += 1
        self.last_tier = "shared"
        return data

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        super().put(key, payload)
        filled = self._shared_call(
            key, lambda: (self.shared.put(key, payload), True)[1])
        if filled:
            self.tiers.shared_fills += 1

    def put_bytes(self, key: str, data: bytes) -> None:
        super().put_bytes(key, data)
        filled = self._shared_call(
            key, lambda: (self.shared.put_bytes(key, data), True)[1])
        if filled:
            self.tiers.shared_fills += 1

    def stat_bytes_tier(self, key: str) -> Optional[tuple]:
        """``(size, tier)`` for the blob, or ``None``; no counters."""
        size = super().stat_bytes(key)
        if size is not None:
            return size, "local"
        size = self._shared_call(
            key, lambda: self.shared.stat_bytes_strict(key))
        if size is not None:
            return size, "shared"
        return None

    def stat_bytes(self, key: str) -> Optional[int]:
        stat = self.stat_bytes_tier(key)
        return None if stat is None else stat[0]

    def tier_counts(self) -> Dict[str, int]:
        breaker = self.breaker
        return {
            "local_hits": self.tiers.local_hits,
            "shared_hits": self.tiers.shared_hits,
            "shared_fills": self.tiers.shared_fills,
            "breaker_trips": 0 if breaker is None else breaker.trips,
            "breaker_skips": 0 if breaker is None else breaker.skips,
            "breaker_open": int(breaker is not None
                                and breaker.state != health.CLOSED),
        }


def resolve_shared(shared: str = "") -> Optional[str]:
    """Shared-tier root from ``--shared-store`` / ``REPRO_SHARED_STORE``.

    Empty defers to the environment; the usual disable sentinels
    (``off`` / ``none`` / ``0``) turn the shared tier off.
    """
    value = shared or os.environ.get("REPRO_SHARED_STORE", "")
    if not value or value.lower() in DISABLED_SENTINELS:
        return None
    return value


def make_store(root, shared: Optional[str] = None) -> ResultStore:
    """A store over ``root``, tiered onto ``shared`` when given."""
    if shared:
        return TieredResultStore(root, shared)
    return ResultStore(root)
