"""Content-addressed on-disk result cache.

Blobs are JSON files stored under ``<root>/<key[:2]>/<key>.json`` where
``key`` is the cell's stable hash (:mod:`repro.exec.cachekey`).  Each
blob records the schema version and the cell kind alongside the
serialized result, so stale or foreign blobs are treated as misses
rather than deserialized incorrectly.

The store is safe for concurrent writers (atomic ``os.replace`` of a
temp file) and keeps simple LRU semantics: ``get`` touches the blob's
mtime and eviction removes the oldest blobs once ``max_entries`` is
exceeded.  Hit/miss/store/evict counters feed the execution report.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exec.cachekey import SCHEMA_VERSION

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: ``REPRO_CACHE_DIR`` values that disable on-disk caching entirely.
DISABLED_SENTINELS = ("off", "none", "0")


@dataclass
class CacheStats:
    """Counters for one store over one process lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultStore:
    """JSON blob store keyed by content hash, with LRU eviction."""

    def __init__(self, root, max_entries: int = 100_000) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.root = Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._count: Optional[int] = None  # lazily measured blob count

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _blobs(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return list(self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self._blobs())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` (stamped with the schema)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = dict(payload)
        blob["schema"] = SCHEMA_VERSION
        existed = path.exists()
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(blob, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        if self._count is None:
            self._count = len(self._blobs())
        elif not existed:
            self._count += 1
        if self._count > self.max_entries:
            self._evict()

    def _evict(self) -> None:
        """Drop oldest blobs until back under ``max_entries``."""
        blobs = self._blobs()
        blobs.sort(key=lambda p: (p.stat().st_mtime, p.name))
        excess = len(blobs) - self.max_entries
        for path in blobs[:max(0, excess)]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                pass
        self._count = len(blobs) - max(0, excess)

    def clear(self) -> int:
        """Remove every blob; returns the number removed."""
        removed = 0
        for path in self._blobs():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._count = 0
        return removed
