"""Experiment execution engine: parallel fan-out + on-disk result cache.

See DESIGN.md section 8 ("Experiment execution engine") for the cache
key schema and determinism guarantees.
"""

from repro.exec.cachekey import (
    SCHEMA_VERSION,
    canonical_json,
    stable_hash,
    task_seed,
)
from repro.exec.backends import (
    BACKEND_NAMES,
    BackendUnavailable,
    ExecutionBackend,
    Frame,
    LocalPoolBackend,
    SSHBackend,
    WorkerFleetBackend,
    parse_worker_spec,
    resolve_backend_name,
)
from repro.exec.faults import (
    CellExecutionError,
    CellFailure,
    ConfigError,
    RemoteCellError,
    parse_fault_spec,
)
from repro.exec.manifest import RunManifest, list_runs
from repro.exec.progress import CellOutcome, ExecReport
from repro.exec.runner import (
    MaterializeCell,
    MixCell,
    ParallelRunner,
    SearchBatchCell,
    SearchCell,
    SingleCell,
    SuiteSpec,
    TraceSpec,
    default_store,
    resolve_jobs,
    resolve_store,
)
from repro.exec.store import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultStore,
    TieredResultStore,
    make_store,
    resolve_shared,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "stable_hash",
    "task_seed",
    "BACKEND_NAMES",
    "BackendUnavailable",
    "ExecutionBackend",
    "Frame",
    "LocalPoolBackend",
    "SSHBackend",
    "WorkerFleetBackend",
    "parse_worker_spec",
    "resolve_backend_name",
    "CellExecutionError",
    "CellFailure",
    "ConfigError",
    "RemoteCellError",
    "parse_fault_spec",
    "RunManifest",
    "list_runs",
    "CellOutcome",
    "ExecReport",
    "MaterializeCell",
    "MixCell",
    "ParallelRunner",
    "SearchBatchCell",
    "SearchCell",
    "SingleCell",
    "SuiteSpec",
    "TraceSpec",
    "default_store",
    "resolve_jobs",
    "resolve_store",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultStore",
    "TieredResultStore",
    "make_store",
    "resolve_shared",
]
