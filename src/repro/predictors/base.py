"""Common infrastructure for reuse predictors.

All three sampler-based predictors (SDBP, Perceptron, and the paper's
multiperspective predictor) observe a *sample* of LLC sets: a small
number of sets have a shadow structure with partial tags, managed by
true LRU, whose hits and evictions train the prediction tables
(Sections 2 and 3.3).  :class:`SetSampler` implements the sampled-set
selection shared by all of them.

:class:`ReusePredictor` is the interface the ROC harness and the
prediction-driven policies consume: one call per LLC access returning
a signed confidence, positive meaning *predicted dead*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.access import AccessContext


class ReusePredictor(ABC):
    """Dead-block predictor driven once per LLC access."""

    name = "base"

    @abstractmethod
    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> float:
        """Observe one LLC access and return the confidence.

        A return value above zero predicts the block dead (it will not
        be reused before eviction); the magnitude is the predictor's
        confidence.  Implementations also perform any sampler training
        triggered by this access.
        """

    @property
    def confidence_range(self) -> float:
        """Magnitude bound of returned confidences (for ROC sweeps)."""
        return 1.0


class SetSampler:
    """Maps LLC set indices onto a small array of sampled shadow sets.

    Sampled sets are spread uniformly: with ``llc_sets`` sets and
    ``sampler_sets`` samples every ``llc_sets // sampler_sets``-th set
    is sampled.  The paper uses 64 sampled sets per core
    (Section 4.4).
    """

    def __init__(self, llc_sets: int, sampler_sets: int) -> None:
        if sampler_sets < 1:
            raise ValueError("sampler_sets must be positive")
        if sampler_sets > llc_sets:
            sampler_sets = llc_sets
        self.llc_sets = llc_sets
        self.sampler_sets = sampler_sets
        self._stride = max(1, llc_sets // sampler_sets)

    def sampler_index(self, set_idx: int) -> int:
        """Sampler set for ``set_idx``, or -1 when the set is unsampled."""
        if set_idx % self._stride:
            return -1
        index = set_idx // self._stride
        return index if index < self.sampler_sets else -1


def partial_tag(block: int, bits: int = 16) -> int:
    """Reduce a block address to the sampler's partial tag width.

    Samplers tolerate a small aliasing rate (Section 3.3), trading tag
    bits for hardware budget; 16 bits is the paper's choice.
    """
    return (block ^ (block >> bits) ^ (block >> (2 * bits))) & ((1 << bits) - 1)
