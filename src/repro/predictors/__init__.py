"""Baseline reuse predictors: SDBP, Perceptron, and Hawkeye."""

from repro.predictors.base import ReusePredictor, SetSampler, partial_tag
from repro.predictors.hawkeye import HawkeyePolicy, HawkeyePredictor, OptGen
from repro.predictors.perceptron import PerceptronPolicy, PerceptronPredictor
from repro.predictors.sdbp import SDBPPolicy, SDBPPredictor

__all__ = [
    "ReusePredictor",
    "SetSampler",
    "partial_tag",
    "HawkeyePolicy",
    "HawkeyePredictor",
    "OptGen",
    "PerceptronPolicy",
    "PerceptronPredictor",
    "SDBPPolicy",
    "SDBPPredictor",
]
