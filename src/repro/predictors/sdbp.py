"""Sampling Dead Block Prediction (SDBP) [Khan, Tian & Jimenez, MICRO 2010].

SDBP learns the mapping "PC that last touched a block -> block dies"
from a sampled shadow of the cache (Section 2 of the reproduced
paper):

* The sampler keeps partial tags for a few sets, managed by LRU with a
  *reduced associativity* relative to the LLC.
* Three tables of two-bit saturating counters are indexed by three
  differently skewed hashes of the PC (after the skewed branch
  predictor).
* When a sampled block is hit, the counters of the PC that *last*
  touched it are decremented (that PC led to a live block); when a
  sampled block is evicted, the counters of its last-touch PC are
  incremented (that PC led to a dead block).
* To predict, the current PC's three counters are summed; a sum above
  the threshold classifies the accessed block dead.

The policy wrapper applies SDBP's replacement-and-bypass optimization:
predicted-dead blocks are preferred victims, and dead-on-arrival fills
are bypassed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.predictors.base import ReusePredictor, SetSampler, partial_tag
from repro.util.hashing import skewed_hashes


@dataclass
class _SamplerEntry:
    tag: int
    last_pc_hashes: List[int]


class SDBPPredictor(ReusePredictor):
    """Skewed three-table dead block predictor with an LRU sampler."""

    name = "sdbp"

    def __init__(
        self,
        llc_sets: int,
        sampler_sets: int = 64,
        sampler_ways: int = 12,
        table_bits: int = 12,
        num_tables: int = 3,
        threshold: int = 8,
    ) -> None:
        self.sampler = SetSampler(llc_sets, sampler_sets)
        self.sampler_ways = sampler_ways
        self.num_tables = num_tables
        self.table_size = 1 << table_bits
        self.table_bits = table_bits
        self.threshold = threshold
        self.counter_max = 3
        self.tables: List[List[int]] = [
            [0] * self.table_size for _ in range(num_tables)
        ]
        # Each sampler set is a list of entries, MRU first.
        self._sets: List[List[_SamplerEntry]] = [[] for _ in range(sampler_sets)]

    # -- prediction ----------------------------------------------------

    def predict(self, pc: int) -> int:
        """Sum of the three indexed counters; >= threshold means dead."""
        total = 0
        for table, index in zip(self.tables, self._indices(pc)):
            total += table[index]
        return total

    def confidence(self, pc: int) -> float:
        """Signed confidence: positive = predicted dead."""
        return self.predict(pc) - self.threshold + 0.5

    @property
    def confidence_range(self) -> float:
        return float(self.counter_max * self.num_tables)

    # -- training ------------------------------------------------------

    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> float:
        sampler_idx = self.sampler.sampler_index(set_idx)
        if sampler_idx >= 0:
            self._sample(sampler_idx, ctx)
        return self.confidence(ctx.pc)

    def _sample(self, sampler_idx: int, ctx: AccessContext) -> None:
        entries = self._sets[sampler_idx]
        tag = partial_tag(ctx.block)
        pc_hashes = self._indices(ctx.pc)
        for position, entry in enumerate(entries):
            if entry.tag == tag:
                # Sampler hit: the previous last-touch PC led to reuse.
                self._train(entry.last_pc_hashes, dead=False)
                entry.last_pc_hashes = pc_hashes
                entries.pop(position)
                entries.insert(0, entry)
                return
        # Sampler miss: insert, evicting the LRU entry if full.
        if len(entries) >= self.sampler_ways:
            victim = entries.pop()
            self._train(victim.last_pc_hashes, dead=True)
        entries.insert(0, _SamplerEntry(tag=tag, last_pc_hashes=pc_hashes))

    def _train(self, pc_hashes: List[int], dead: bool) -> None:
        delta = 1 if dead else -1
        for table, index in zip(self.tables, pc_hashes):
            value = table[index] + delta
            if 0 <= value <= self.counter_max:
                table[index] = value

    def _indices(self, pc: int) -> List[int]:
        return skewed_hashes(pc >> 2, self.num_tables, self.table_bits)


class SDBPPolicy(ReplacementPolicy):
    """LRU default replacement with SDBP-driven victimization and bypass."""

    name = "sdbp"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        predictor: Optional[SDBPPredictor] = None,
    ) -> None:
        super().__init__(num_sets, ways)
        self.predictor = predictor or SDBPPredictor(num_sets)
        self._lru = LRUPolicy(num_sets, ways)
        # Dead marks, refreshed by the prediction of each access.
        self._dead: List[List[bool]] = [[False] * ways for _ in range(num_sets)]
        self._last_confidence = 0.0

    def on_access(self, set_idx: int, ctx: AccessContext, hit: bool, way: int) -> None:
        self._last_confidence = self.predictor.on_llc_access(set_idx, ctx, hit)
        if hit:
            self._dead[set_idx][way] = self._last_confidence > 0

    def should_bypass(self, set_idx: int, ctx: AccessContext) -> bool:
        return self._last_confidence > 0 and not ctx.is_write

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        dead = self._dead[set_idx]
        for way in range(self.ways):
            if dead[way]:
                return way
        return self._lru.choose_victim(set_idx, ctx)

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._lru.on_fill(set_idx, way, ctx)
        self._dead[set_idx][way] = self._last_confidence > 0

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._lru.on_hit(set_idx, way, ctx)

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        self._lru.on_evict(set_idx, way, block)
        self._dead[set_idx][way] = False

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self._lru.is_mru(set_idx, way)
