"""Perceptron learning for reuse prediction [Teran, Wang & Jimenez,
MICRO 2016] — the "Perceptron" baseline of the reproduced paper.

The predictor is a hashed perceptron (Section 2): each of six fixed
features — the current PC shifted, the three previous memory-access
PCs, and two different shifts of the referenced block's tag — is
hashed into its own table of small signed weights; the sum of the six
selected weights is the prediction, with large positive sums meaning
*dead*.  An LRU sampler provides training events: weights are
incremented when a sampled block is evicted, decremented when it is
reused, and training only fires when the stored prediction was wrong
or its magnitude is below the training threshold theta (the perceptron
learning rule).

The policy wrapper reproduces the MICRO 2016 bypass-and-replacement
optimization: dead-on-arrival fills are bypassed, and each block keeps
one extra *reuse bit* (set when an access to it was predicted dead)
that makes it a preferred victim — the per-block bit the reproduced
paper contrasts with MPPPB's implicit placement-based encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.predictors.base import ReusePredictor, SetSampler, partial_tag
from repro.util.bits import saturate
from repro.util.hashing import combine, hash_to

NUM_FEATURES = 6
WEIGHT_MIN = -32
WEIGHT_MAX = 31


@dataclass
class _SamplerEntry:
    tag: int
    indices: List[int]
    confidence: int


class PerceptronPredictor(ReusePredictor):
    """Hashed-perceptron reuse predictor with six fixed features."""

    name = "perceptron"

    def __init__(
        self,
        llc_sets: int,
        sampler_sets: int = 80,
        sampler_ways: int = 16,
        table_bits: int = 8,
        theta: int = 30,
    ) -> None:
        self.sampler = SetSampler(llc_sets, sampler_sets)
        self.sampler_ways = sampler_ways
        self.table_size = 1 << table_bits
        self.table_bits = table_bits
        self.theta = theta
        self.tables: List[List[int]] = [
            [0] * self.table_size for _ in range(NUM_FEATURES)
        ]
        self._sets: List[List[_SamplerEntry]] = [[] for _ in range(sampler_sets)]

    # -- features and prediction ----------------------------------------

    def feature_indices(self, ctx: AccessContext) -> List[int]:
        """Hash the six features of this access into table indices."""
        bits = self.table_bits
        history = ctx.pc_history
        base = ctx.history_index - (0 if not ctx.is_prefetch else -1)

        def past_pc(depth: int) -> int:
            index = base - depth
            if 0 <= index < len(history):
                return history[index]
            return 0

        tag = ctx.block
        return [
            hash_to(ctx.pc >> 2, bits),
            hash_to(combine(past_pc(1), 1), bits),
            hash_to(combine(past_pc(2), 2), bits),
            hash_to(combine(past_pc(3), 3), bits),
            hash_to(combine(tag >> 4, 4), bits),
            hash_to(combine(tag >> 7, 5), bits),
        ]

    def predict(self, indices: Sequence[int]) -> int:
        return sum(table[index] for table, index in zip(self.tables, indices))

    @property
    def confidence_range(self) -> float:
        return float(NUM_FEATURES * WEIGHT_MAX)

    # -- training --------------------------------------------------------

    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> float:
        indices = self.feature_indices(ctx)
        confidence = self.predict(indices)
        sampler_idx = self.sampler.sampler_index(set_idx)
        if sampler_idx >= 0:
            self._sample(sampler_idx, ctx, indices, confidence)
        return float(confidence)

    def _sample(
        self,
        sampler_idx: int,
        ctx: AccessContext,
        indices: List[int],
        confidence: int,
    ) -> None:
        entries = self._sets[sampler_idx]
        tag = partial_tag(ctx.block)
        for position, entry in enumerate(entries):
            if entry.tag == tag:
                # Reuse: train toward "live" (decrement) if warranted.
                if entry.confidence >= 0 or abs(entry.confidence) < self.theta:
                    self._train(entry.indices, dead=False)
                entry.indices = indices
                entry.confidence = confidence
                entries.pop(position)
                entries.insert(0, entry)
                return
        if len(entries) >= self.sampler_ways:
            victim = entries.pop()
            # Eviction: train toward "dead" (increment) if warranted.
            if victim.confidence <= 0 or abs(victim.confidence) < self.theta:
                self._train(victim.indices, dead=True)
        entries.insert(0, _SamplerEntry(tag=tag, indices=indices,
                                        confidence=confidence))

    def _train(self, indices: Sequence[int], dead: bool) -> None:
        delta = 1 if dead else -1
        for table, index in zip(self.tables, indices):
            table[index] = saturate(table[index] + delta, WEIGHT_MIN, WEIGHT_MAX)


class PerceptronPolicy(ReplacementPolicy):
    """LRU default with perceptron-driven bypass and dead-block victims."""

    name = "perceptron"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        predictor: Optional[PerceptronPredictor] = None,
        tau_bypass: int = 6,
        tau_replace: int = 0,
    ) -> None:
        super().__init__(num_sets, ways)
        self.predictor = predictor or PerceptronPredictor(num_sets)
        self.tau_bypass = tau_bypass
        self.tau_replace = tau_replace
        self._lru = LRUPolicy(num_sets, ways)
        self._reuse_bit: List[List[bool]] = [
            [False] * ways for _ in range(num_sets)
        ]
        self._last_confidence = 0.0

    def on_access(self, set_idx: int, ctx: AccessContext, hit: bool, way: int) -> None:
        self._last_confidence = self.predictor.on_llc_access(set_idx, ctx, hit)
        if hit:
            self._reuse_bit[set_idx][way] = self._last_confidence > self.tau_replace

    def should_bypass(self, set_idx: int, ctx: AccessContext) -> bool:
        return self._last_confidence > self.tau_bypass

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        marks = self._reuse_bit[set_idx]
        for way in range(self.ways):
            if marks[way]:
                return way
        return self._lru.choose_victim(set_idx, ctx)

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._lru.on_fill(set_idx, way, ctx)
        self._reuse_bit[set_idx][way] = self._last_confidence > self.tau_replace

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._lru.on_hit(set_idx, way, ctx)

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        self._lru.on_evict(set_idx, way, block)
        self._reuse_bit[set_idx][way] = False

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self._lru.is_mru(set_idx, way)
