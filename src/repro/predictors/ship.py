"""SHiP: Signature-based Hit Predictor [Wu et al., MICRO 2011].

An extension baseline beyond the paper's main comparison (it appears
in the paper's related work, Section 2, reference [29]).  SHiP
associates each cache block with the *signature* that inserted it — we
use the hashed PC, SHiP-PC — and a table of saturating counters
(SHCT) learns whether blocks inserted by that signature are re-
referenced:

* On a hit, the block's signature counter increments (its ``outcome``
  bit marks the block re-referenced).
* On eviction of a block that was never re-referenced, the signature
  counter decrements.
* On insertion, a zero counter predicts a distant re-reference
  interval: the block is inserted with RRPV max (SRRIP's "distant")
  instead of the default long interval.

SHiP therefore emulates the paper's ``bias(A,1)`` feature in
isolation — a useful calibration point for how much the remaining
fifteen perspectives buy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.predictors.base import SetSampler
from repro.util.hashing import hash_to


class SHCT:
    """Signature history counter table."""

    def __init__(self, table_bits: int = 13, counter_max: int = 7) -> None:
        self.table_bits = table_bits
        self.counter_max = counter_max
        self.counters: List[int] = [1] * (1 << table_bits)

    def index(self, pc: int) -> int:
        return hash_to(pc >> 2, self.table_bits)

    def predicts_reuse(self, pc: int) -> bool:
        return self.counters[self.index(pc)] > 0

    def train_hit(self, pc: int) -> None:
        idx = self.index(pc)
        if self.counters[idx] < self.counter_max:
            self.counters[idx] += 1

    def train_dead(self, pc: int) -> None:
        idx = self.index(pc)
        if self.counters[idx] > 0:
            self.counters[idx] -= 1


class SHiPPolicy(ReplacementPolicy):
    """SRRIP replacement with SHiP-PC signature-driven insertion.

    Training is set-sampled like the original (a fraction of sets keep
    the per-block signature/outcome metadata and update the SHCT).  We
    keep the metadata for all sets — the simulator is not hardware —
    but only sampled sets train, matching the published design.
    """

    name = "ship"

    def __init__(
        self,
        num_sets: int,
        ways: int,
        shct: Optional[SHCT] = None,
        sampler_sets: int = 64,
    ) -> None:
        super().__init__(num_sets, ways)
        self.shct = shct or SHCT()
        self.sampler = SetSampler(num_sets, sampler_sets)
        self._srrip = SRRIPPolicy(num_sets, ways)
        self._signature: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        self._outcome: List[List[bool]] = [
            [False] * ways for _ in range(num_sets)
        ]

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        return self._srrip.choose_victim(set_idx, ctx)

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        if self.shct.predicts_reuse(ctx.pc):
            self._srrip.rrpvs[set_idx][way] = self._srrip.insert_rrpv
        else:
            self._srrip.rrpvs[set_idx][way] = self._srrip.rrpv_max
        self._signature[set_idx][way] = ctx.pc
        self._outcome[set_idx][way] = False

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        self._srrip.on_hit(set_idx, way, ctx)
        if not self._outcome[set_idx][way]:
            self._outcome[set_idx][way] = True
            if self.sampler.sampler_index(set_idx) >= 0:
                self.shct.train_hit(self._signature[set_idx][way])

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        if (not self._outcome[set_idx][way]
                and self.sampler.sampler_index(set_idx) >= 0):
            self.shct.train_dead(self._signature[set_idx][way])
        self._outcome[set_idx][way] = False

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self._srrip.is_mru(set_idx, way)
