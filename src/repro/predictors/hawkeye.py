"""Hawkeye cache replacement [Jain & Lin, ISCA 2016] — baseline.

Hawkeye learns from Belady's MIN rather than from an LRU sampler: a
set-sampled *OPTgen* reconstructs, for a window of past accesses,
whether MIN would have hit each reuse, and a PC-indexed table of 3-bit
counters (the Hawkeye predictor) accumulates those verdicts.  Blocks
loaded by PCs with high counters are "cache-friendly", the rest
"cache-averse".

Replacement uses 3-bit RRPVs: friendly blocks insert at 0, averse at 7;
hits reset friendly blocks to 0; inserting a friendly block ages all
other blocks below 6 by one.  The victim is any block at RRPV 7, else
the oldest (highest-RRPV) block, in which case the evicted block's
loading PC is detrained (it kept a block long enough to be evicted
while predicted friendly).

The reproduced paper notes Hawkeye's false/true positive rates are not
directly comparable to LRU-sampler predictors (Section 6.3), so this
class is used only as a management policy, not in the ROC study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.predictors.base import SetSampler
from repro.util.hashing import hash_to


class OptGen:
    """Per-set occupancy-vector reconstruction of Belady's MIN.

    Time advances by one quantum per access to the set.  An interval
    [t_prev, t) whose occupancy stays below the cache's associativity
    proves MIN would have kept the block, i.e. the reuse was
    OPT-friendly; the occupancy over the interval is then incremented
    to account for the retained block.
    """

    def __init__(self, ways: int, window_factor: int = 8) -> None:
        self.ways = ways
        self.window = window_factor * ways
        self.occupancy = [0] * self.window
        self.time = 0

    def access(self, previous_time: int) -> bool:
        """Was the reuse from ``previous_time`` to now an OPT hit?"""
        now = self.time
        if previous_time < 0 or now - previous_time >= self.window:
            return False
        for t in range(previous_time, now):
            if self.occupancy[t % self.window] >= self.ways:
                return False
        for t in range(previous_time, now):
            self.occupancy[t % self.window] += 1
        return True

    def advance(self) -> int:
        """Open the next time quantum; returns the access's timestamp."""
        stamp = self.time
        self.time += 1
        self.occupancy[self.time % self.window] = 0
        return stamp


@dataclass
class _History:
    last_time: int
    last_pc: int


class HawkeyePredictor:
    """OPTgen-trained PC classifier (3-bit counters)."""

    name = "hawkeye"

    COUNTER_MAX = 7
    FRIENDLY_THRESHOLD = 4

    def __init__(
        self,
        llc_sets: int,
        llc_ways: int,
        sampler_sets: int = 64,
        table_bits: int = 11,
    ) -> None:
        self.sampler = SetSampler(llc_sets, sampler_sets)
        self.table_bits = table_bits
        self.counters = [self.FRIENDLY_THRESHOLD] * (1 << table_bits)
        self._optgens = [OptGen(llc_ways) for _ in range(sampler_sets)]
        self._histories: List[Dict[int, _History]] = [
            {} for _ in range(sampler_sets)
        ]

    def is_friendly(self, pc: int) -> bool:
        return self.counters[self._index(pc)] >= self.FRIENDLY_THRESHOLD

    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> bool:
        """Observe an access; train OPTgen; return current friendliness."""
        sampler_idx = self.sampler.sampler_index(set_idx)
        if sampler_idx >= 0:
            self._sample(sampler_idx, ctx)
        return self.is_friendly(ctx.pc)

    def detrain(self, pc: int) -> None:
        """A friendly-predicted block was evicted unused: push PC averse."""
        index = self._index(pc)
        if self.counters[index] > 0:
            self.counters[index] -= 1

    def _sample(self, sampler_idx: int, ctx: AccessContext) -> None:
        optgen = self._optgens[sampler_idx]
        history = self._histories[sampler_idx]
        record = history.get(ctx.block)
        if record is not None:
            opt_hit = optgen.access(record.last_time)
            self._train(record.last_pc, friendly=opt_hit)
        stamp = optgen.advance()
        history[ctx.block] = _History(last_time=stamp, last_pc=ctx.pc)
        if len(history) > 4 * optgen.window:
            horizon = optgen.time - optgen.window
            for block in [b for b, r in history.items() if r.last_time < horizon]:
                del history[block]

    def _train(self, pc: int, friendly: bool) -> None:
        index = self._index(pc)
        if friendly:
            if self.counters[index] < self.COUNTER_MAX:
                self.counters[index] += 1
        elif self.counters[index] > 0:
            self.counters[index] -= 1

    def _index(self, pc: int) -> int:
        return hash_to(pc >> 2, self.table_bits)


class HawkeyePolicy(ReplacementPolicy):
    """RRIP-style replacement driven by the Hawkeye predictor."""

    name = "hawkeye"

    RRPV_MAX = 7

    def __init__(
        self,
        num_sets: int,
        ways: int,
        predictor: Optional[HawkeyePredictor] = None,
    ) -> None:
        super().__init__(num_sets, ways)
        self.predictor = predictor or HawkeyePredictor(num_sets, ways)
        self.rrpvs: List[List[int]] = [[self.RRPV_MAX] * ways for _ in range(num_sets)]
        self._friendly: List[List[bool]] = [[False] * ways for _ in range(num_sets)]
        self._load_pc: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        self._last_friendly = False

    def on_access(self, set_idx: int, ctx: AccessContext, hit: bool, way: int) -> None:
        self._last_friendly = self.predictor.on_llc_access(set_idx, ctx, hit)

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        rrpvs = self.rrpvs[set_idx]
        for way in range(self.ways):
            if rrpvs[way] == self.RRPV_MAX:
                return way
        victim = max(range(self.ways), key=lambda w: rrpvs[w])
        # Evicting a block believed friendly: its loading PC misled us.
        if self._friendly[set_idx][victim]:
            self.predictor.detrain(self._load_pc[set_idx][victim])
        return victim

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        friendly = self._last_friendly
        rrpvs = self.rrpvs[set_idx]
        if friendly:
            for other in range(self.ways):
                if other != way and rrpvs[other] < self.RRPV_MAX - 1:
                    rrpvs[other] += 1
            rrpvs[way] = 0
        else:
            rrpvs[way] = self.RRPV_MAX
        self._friendly[set_idx][way] = friendly
        self._load_pc[set_idx][way] = ctx.pc

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        friendly = self._last_friendly
        self.rrpvs[set_idx][way] = 0 if friendly else self.RRPV_MAX
        self._friendly[set_idx][way] = friendly
        self._load_pc[set_idx][way] = ctx.pc

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self.rrpvs[set_idx][way] == 0
