"""Statistics used to report results the way the paper does (Section 4.5).

Speedups are reported as geometric means, misses as arithmetic-mean
MPKI, multi-programmed performance as weighted speedup normalized to
LRU, and predictor accuracy as ROC points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def mpki(misses: int, instructions: int) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        raise ValueError("instruction count must be positive")
    return 1000.0 * misses / instructions


def weighted_speedup(ipcs: Sequence[float], single_ipcs: Sequence[float]) -> float:
    """FIESTA-style weighted speedup: sum of IPC_i / SingleIPC_i.

    ``single_ipcs`` are the standalone-LRU IPCs of the same programs
    (Section 4.5); the caller normalizes against the LRU run's weighted
    speedup to obtain the figures plotted in Figure 4.
    """
    if len(ipcs) != len(single_ipcs):
        raise ValueError("ipcs and single_ipcs must have equal length")
    if not ipcs:
        raise ValueError("weighted_speedup of empty sequence")
    return sum(ipc / single for ipc, single in zip(ipcs, single_ipcs))


def s_curve(values: Iterable[float], descending: bool = False) -> List[float]:
    """Sort values to plot an S-curve (Figures 4 and 5)."""
    return sorted(values, reverse=descending)


@dataclass(frozen=True)
class RocPoint:
    """One point of a receiver operating characteristic curve."""

    threshold: float
    false_positive_rate: float
    true_positive_rate: float


def roc_curve(
    confidences: Sequence[float], labels: Sequence[bool], thresholds: Sequence[float]
) -> List[RocPoint]:
    """Compute ROC points for a dead-block predictor.

    ``labels[i]`` is True when access *i*'s block turned out to be dead
    (not reused before eviction).  A block is classified dead when its
    confidence exceeds the threshold.  The false positive rate is the
    fraction of live blocks mispredicted dead; the true positive rate
    is the fraction of dead blocks correctly predicted (Section 6.3).

    Delegates to :func:`roc_curve_fast` when numpy is importable; the
    pure-Python loop remains as the no-dependency fallback.  Both paths
    produce equal points (counting threshold comparisons over the same
    values), which ``tests/test_util_stats.py`` pins with hypothesis.
    """
    if len(confidences) != len(labels):
        raise ValueError("confidences and labels must have equal length")
    try:
        import numpy  # noqa: F401 - availability probe only
    except ImportError:
        return _roc_curve_scalar(confidences, labels, thresholds)
    return roc_curve_fast(confidences, labels, thresholds)


def _roc_curve_scalar(
    confidences: Sequence[float], labels: Sequence[bool], thresholds: Sequence[float]
) -> List[RocPoint]:
    """Pure-Python ROC fallback (and parity oracle for the fast path)."""
    dead_total = sum(1 for label in labels if label)
    live_total = len(labels) - dead_total
    points = []
    for threshold in thresholds:
        tp = fp = 0
        for confidence, label in zip(confidences, labels):
            predicted_dead = confidence > threshold
            if predicted_dead and label:
                tp += 1
            elif predicted_dead and not label:
                fp += 1
        tpr = tp / dead_total if dead_total else 0.0
        fpr = fp / live_total if live_total else 0.0
        points.append(RocPoint(threshold, fpr, tpr))
    return points


def roc_curve_fast(
    confidences: Sequence[float], labels: Sequence[bool], thresholds: Sequence[float]
) -> List[RocPoint]:
    """Vectorized ROC computation for large prediction logs."""
    import numpy as np

    conf = np.asarray(confidences, dtype=np.float64)
    lab = np.asarray(labels, dtype=bool)
    dead_total = int(lab.sum())
    live_total = int(lab.size - dead_total)
    points = []
    for threshold in thresholds:
        predicted = conf > threshold
        tp = int(np.count_nonzero(predicted & lab))
        fp = int(np.count_nonzero(predicted & ~lab))
        tpr = tp / dead_total if dead_total else 0.0
        fpr = fp / live_total if live_total else 0.0
        points.append(RocPoint(float(threshold), fpr, tpr))
    return points


def auc(points: Sequence[RocPoint]) -> float:
    """Area under an ROC curve by the trapezoid rule.

    Points may arrive in any threshold order; they are sorted by false
    positive rate first.  The curve is extended to (0,0) and (1,1).
    """
    coords: List[Tuple[float, float]] = sorted(
        [(p.false_positive_rate, p.true_positive_rate) for p in points]
    )
    coords = [(0.0, 0.0)] + coords + [(1.0, 1.0)]
    area = 0.0
    for (x0, y0), (x1, y1) in zip(coords, coords[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return area
