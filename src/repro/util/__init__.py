"""Shared utilities: bit manipulation, deterministic hashing, statistics."""

from repro.util.bits import (
    bit,
    block_address,
    block_offset,
    extract_bits,
    fold,
    saturate,
    sign_extend,
)
from repro.util.hashing import combine, hash_to, mix64, pc_hash, skewed_hashes
from repro.util.stats import (
    RocPoint,
    arithmetic_mean,
    auc,
    geometric_mean,
    mpki,
    roc_curve,
    roc_curve_fast,
    s_curve,
    weighted_speedup,
)

__all__ = [
    "bit",
    "block_address",
    "block_offset",
    "extract_bits",
    "fold",
    "saturate",
    "sign_extend",
    "combine",
    "hash_to",
    "mix64",
    "pc_hash",
    "skewed_hashes",
    "RocPoint",
    "arithmetic_mean",
    "auc",
    "geometric_mean",
    "mpki",
    "roc_curve",
    "roc_curve_fast",
    "s_curve",
    "weighted_speedup",
]
