"""Bit-field manipulation helpers used throughout the predictor stack.

The paper's features extract arbitrary bit ranges from program counters
and physical addresses (Section 3.2) and fold them down to at most
8 bits to index small prediction tables (Section 3.4).  The published
feature tables contain ranges whose endpoints are reversed (for
instance ``pc(9,11,7,16,0)`` has begin bit 11 and end bit 7), so range
extraction normalizes its endpoints before slicing.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


def bit(value: int, position: int) -> int:
    """Return bit ``position`` (0 = least significant) of ``value``."""
    return (value >> position) & 1


def extract_bits(value: int, lo: int, hi: int) -> int:
    """Return bits ``lo`` through ``hi`` of ``value``, inclusive.

    Endpoints are normalized (``lo`` and ``hi`` may be given in either
    order) and clamped to the 64-bit range, mirroring the lenient
    treatment the published feature tables require.
    """
    if lo > hi:
        lo, hi = hi, lo
    lo = max(0, min(63, lo))
    hi = max(0, min(63, hi))
    width = hi - lo + 1
    return (value >> lo) & ((1 << width) - 1)


def fold(value: int, width: int) -> int:
    """XOR-fold ``value`` down to ``width`` bits.

    Folding preserves entropy from every input bit, unlike truncation,
    which matters when a feature slices high address bits.  ``width``
    must be at least 1.
    """
    if width < 1:
        raise ValueError("fold width must be >= 1")
    value &= MASK64
    mask = (1 << width) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def sign_extend(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= (1 << width) - 1
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def saturate(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into the inclusive range [``lo``, ``hi``]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def block_address(address: int, block_shift: int = 6) -> int:
    """Return the cache-block-aligned address (64 B blocks by default)."""
    return address >> block_shift


def block_offset(address: int, block_shift: int = 6) -> int:
    """Return the byte offset within the cache block."""
    return address & ((1 << block_shift) - 1)
