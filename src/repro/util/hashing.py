"""Deterministic integer hashes for predictor table indexing.

Hardware predictors index their tables with cheap deterministic hashes
(xor folds, multiplicative mixes, CRC-like shuffles).  We mirror that:
all hashes here are pure functions of their inputs so simulations are
reproducible run to run and machine to machine (Python's builtin
``hash`` is salted and therefore unsuitable).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

_GOLDEN64 = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(value: int) -> int:
    """splitmix64 finalizer: a strong, cheap 64-bit mixing function."""
    value = (value + _GOLDEN64) & MASK64
    value = ((value ^ (value >> 30)) * _MIX1) & MASK64
    value = ((value ^ (value >> 27)) * _MIX2) & MASK64
    return value ^ (value >> 31)


def hash_to(value: int, width: int) -> int:
    """Hash ``value`` into ``width`` bits."""
    return mix64(value) & ((1 << width) - 1)


def combine(*values: int) -> int:
    """Order-sensitive combination of several integers into one hash."""
    acc = 0
    for v in values:
        acc = mix64(acc ^ (v & MASK64))
    return acc


def pc_hash(pc: int, width: int = 8) -> int:
    """Hash a program counter into a table index of ``width`` bits.

    Real memory-access PCs share low-bit alignment patterns; mixing
    before masking avoids systematically colliding them.
    """
    return hash_to(pc >> 2, width)


def skewed_hashes(value: int, count: int, width: int) -> list:
    """Return ``count`` independent hashes of ``value``.

    SDBP indexes three tables with differently skewed hashes of the PC
    (following the skewed branch predictor); each table therefore sees
    a different collision pattern and the summed counters tolerate
    aliasing in any single table.
    """
    return [hash_to(combine(value, 0x5EED + 97 * i), width) for i in range(count)]
