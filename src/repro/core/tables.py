"""Prediction weight tables (Section 3.4).

One table per feature, each a small array of 6-bit signed saturating
weights in [-32, +31] — the paper's sweet spot between accuracy and
area.  Tables are *variable sized*: 256 entries for PC/address/XORed
features, up to 64 for offset, 2 for the single-bit features, and a
single weight for the plain bias feature.
"""

from __future__ import annotations

from typing import List, Sequence

WEIGHT_BITS = 6
WEIGHT_MIN = -(1 << (WEIGHT_BITS - 1))   # -32
WEIGHT_MAX = (1 << (WEIGHT_BITS - 1)) - 1  # +31


class WeightTable:
    """One feature's table of saturating signed weights."""

    __slots__ = ("weights",)

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("table size must be positive")
        self.weights: List[int] = [0] * size

    def __len__(self) -> int:
        return len(self.weights)

    def read(self, index: int) -> int:
        return self.weights[index]

    def increment(self, index: int) -> None:
        """Train toward *dead* with saturating arithmetic."""
        value = self.weights[index]
        if value < WEIGHT_MAX:
            self.weights[index] = value + 1

    def decrement(self, index: int) -> None:
        """Train toward *live* with saturating arithmetic."""
        value = self.weights[index]
        if value > WEIGHT_MIN:
            self.weights[index] = value - 1

    def reset(self) -> None:
        for i in range(len(self.weights)):
            self.weights[i] = 0

    def storage_bits(self) -> int:
        """Hardware cost of this table in bits (Section 4.4 accounting)."""
        return WEIGHT_BITS * len(self.weights)


def total_storage_bits(tables: Sequence[WeightTable]) -> int:
    return sum(table.storage_bits() for table in tables)
