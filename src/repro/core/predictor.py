"""The multiperspective reuse predictor (Sections 3.1, 3.4, 3.5).

Organized as a hashed perceptron: each feature indexes its own weight
table; the weights selected by the current access are summed into a
confidence value, saturated to the sampler's 9-bit signed confidence
field.  Positive confidence predicts the block *dead*.

Training is delegated to the sampler (:mod:`repro.core.sampler`),
which calls back into :meth:`train_live` / :meth:`train_dead` for
individual features — the paper's selective per-feature-associativity
training rule.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.cache.access import AccessContext
from repro.core.features import Feature, compile_fused
from repro.core.tables import WeightTable
from repro.predictors.base import ReusePredictor

CONFIDENCE_BITS = 9
CONFIDENCE_MIN = -(1 << (CONFIDENCE_BITS - 1))   # -256
CONFIDENCE_MAX = (1 << (CONFIDENCE_BITS - 1)) - 1  # +255

PIPELINES = ("fused", "legacy")


def default_pipeline() -> str:
    """Index-pipeline selector: ``REPRO_FEATURE_PIPELINE`` or ``fused``.

    ``legacy`` keeps the original one-closure-per-feature path; both
    produce bit-identical indices (the fused compiler is a pure
    strength reduction), so the choice never appears in cache keys.
    The knob exists for the perf harness, which times one against the
    other.
    """
    return os.environ.get("REPRO_FEATURE_PIPELINE", "fused")


class MultiperspectivePredictor(ReusePredictor):
    """Hashed-perceptron dead-block predictor over parameterized features."""

    name = "multiperspective"

    def __init__(self, features: Sequence[Feature],
                 pipeline: Optional[str] = None) -> None:
        if not features:
            raise ValueError("predictor needs at least one feature")
        self.features: Tuple[Feature, ...] = tuple(features)
        self.tables: List[WeightTable] = [
            WeightTable(f.table_size) for f in self.features
        ]
        self.pipeline = pipeline or default_pipeline()
        if self.pipeline not in PIPELINES:
            raise ValueError(
                f"unknown feature pipeline {self.pipeline!r}; "
                f"choose from {PIPELINES}"
            )
        if self.pipeline == "fused":
            # Shadows the method with the compiled fused index function:
            # one call per access instead of one per feature.
            self.indices = compile_fused(self.features)
        else:
            self._index_fns = [f.compile() for f in self.features]
        self.associativities: Tuple[int, ...] = tuple(
            f.associativity for f in self.features
        )
        # The raw weight lists, hoisted once: WeightTable never rebinds
        # its ``weights`` list (reset mutates in place), so predict()
        # can skip one attribute hop per feature per access.
        self._weights: List[List[int]] = [t.weights for t in self.tables]

    @property
    def num_features(self) -> int:
        return len(self.features)

    @property
    def confidence_range(self) -> float:
        return float(CONFIDENCE_MAX)

    def indices(self, ctx: AccessContext) -> List[int]:
        """The per-feature table indices for this access.

        This is the vector stored in a sampler entry (Section 3.3) so
        training can reach the exact weights that produced the block's
        last confidence value.

        On the default ``fused`` pipeline this method is shadowed by an
        instance attribute holding the compiled fused index function
        (:func:`repro.core.features.compile_fused`); this body is the
        ``legacy`` per-closure path the perf harness benchmarks
        against.
        """
        return [fn(ctx) for fn in self._index_fns]

    def predict(self, indices: Sequence[int]) -> int:
        """Sum the selected weights into a saturated 9-bit confidence."""
        total = 0
        for weights, index in zip(self._weights, indices):
            total += weights[index]
        if total > CONFIDENCE_MAX:
            return CONFIDENCE_MAX
        if total < CONFIDENCE_MIN:
            return CONFIDENCE_MIN
        return total

    def on_llc_access(self, set_idx: int, ctx: AccessContext, hit: bool) -> float:
        """Stateless prediction (the :class:`ReusePredictor` interface).

        Sampler-driven training is owned by the policy/probe that also
        owns the sampler; see :class:`repro.core.mpppb.MPPPBPolicy`
        and :class:`repro.sim.roc.RocProbe`.
        """
        return float(self.predict(self.indices(ctx)))

    def train_live(self, feature_idx: int, table_index: int) -> None:
        """The block was reused within this feature's associativity."""
        self.tables[feature_idx].decrement(table_index)

    def train_dead(self, feature_idx: int, table_index: int) -> None:
        """The block was demoted past this feature's associativity."""
        self.tables[feature_idx].increment(table_index)

    def storage_bits(self) -> int:
        """Table storage in bits (the Section 4.4 overhead accounting)."""
        return sum(table.storage_bits() for table in self.tables)

    def reset(self) -> None:
        for table in self.tables:
            table.reset()
