"""MPPPB: Multiperspective Placement, Promotion, and Bypass
(Sections 3.6 and 3.7).

The multiperspective predictor's confidence drives all three cache
management decisions on top of a default replacement policy:

* **Bypass** — on a miss, confidence above tau_bypass keeps the block
  out of the LLC entirely.
* **Placement** — otherwise the fill lands in one of three demoted
  recency positions pi_1..pi_3 chosen by thresholds tau_1 > tau_2 >
  tau_3, or in the MRU position when the confidence is below tau_3.
* **Promotion** — on a hit, confidence above tau_no_promote leaves the
  block in its current position instead of promoting it.

The default policy is static MDPP for single-thread configurations
(16 tree-PLRU positions) and SRRIP for multi-core ones (4 RRPV
levels) — exactly the paper's two variants.  Unlike the Perceptron
baseline, no per-block dead bit exists: a dead prediction is recorded
*implicitly* by where the block sits in the recency stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple, Union

from repro import obs
from repro.cache.access import AccessContext
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.mdpp import MDPPPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.core.features import Feature, parse_feature_set
from repro.core.predictor import MultiperspectivePredictor
from repro.core.sampler import DEFAULT_THETA, MultiperspectiveSampler

#: Telemetry bucket bounds for the predictor-confidence histogram.
#: Confidence is a sum of up to 16 six-bit weights (each in [-32, 31]),
#: so the practical range is roughly [-512, 496]; the buckets are
#: densest around the decision thresholds (tau_3..tau_bypass live in
#: roughly [0, 128]).
CONFIDENCE_BUCKETS = (-256, -128, -64, -32, -16, 0, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class MPPPBConfig:
    """All tunables of one MPPPB instance.

    Thresholds must satisfy tau_bypass >= tau_1 > tau_2 > tau_3 so the
    placement cascade of Section 3.6 is well defined; placements are
    recency positions of the default policy (0..15 for MDPP, RRPV
    0..3 for SRRIP), ordered least-favorable first.
    """

    features: Tuple[Feature, ...]
    default_policy: str = "mdpp"
    tau_bypass: int = 110
    taus: Tuple[int, int, int] = (70, 30, 0)
    placements: Tuple[int, int, int] = (15, 13, 10)
    tau_no_promote: int = 90
    sampler_sets: int = 64
    theta: int = DEFAULT_THETA

    def __post_init__(self) -> None:
        if self.default_policy not in ("mdpp", "srrip"):
            raise ValueError("default_policy must be 'mdpp' or 'srrip'")
        t1, t2, t3 = self.taus
        if not (self.tau_bypass >= t1 > t2 > t3):
            raise ValueError("thresholds must satisfy tau0 >= tau1 > tau2 > tau3")
        if len(self.placements) != 3:
            raise ValueError("exactly three placement positions required")

    @staticmethod
    def from_specs(
        specs: Sequence[str], default_policy: str = "mdpp", **kwargs
    ) -> "MPPPBConfig":
        """Build a config from feature specs in the paper's notation."""
        return MPPPBConfig(
            features=parse_feature_set(specs),
            default_policy=default_policy,
            **kwargs,
        )

    def with_features(self, features: Sequence[Feature]) -> "MPPPBConfig":
        return replace(self, features=tuple(features))


class MPPPBPolicy(ReplacementPolicy):
    """The paper's proposed cache management policy."""

    name = "mpppb"

    def __init__(self, num_sets: int, ways: int, config: MPPPBConfig) -> None:
        super().__init__(num_sets, ways)
        self.config = config
        self.predictor = MultiperspectivePredictor(config.features)
        self.sampler = MultiperspectiveSampler(
            self.predictor,
            llc_sets=num_sets,
            sampler_sets=config.sampler_sets,
            theta=config.theta,
        )
        if config.default_policy == "mdpp":
            self.default: Union[MDPPPolicy, SRRIPPolicy] = MDPPPolicy(
                num_sets, ways
            )
            self._mru_position = 0
            max_position = ways - 1
        else:
            self.default = SRRIPPolicy(num_sets, ways)
            self._mru_position = 0
            max_position = self.default.rrpv_max
        for position in config.placements:
            if not 0 <= position <= max_position:
                raise ValueError(
                    f"placement {position} out of range 0..{max_position} "
                    f"for default policy {config.default_policy!r}"
                )
        self._confidence = 0
        self.bypasses = 0
        self.promotions_suppressed = 0
        # Bound-method caches for the per-access path: on_access runs
        # once per LLC access and these three lookups dominate it.
        self._indices = self.predictor.indices
        self._predict = self.predictor.predict
        self._observe = self.sampler.observe
        # Telemetry: None when disabled, so the per-access cost of the
        # confidence histogram is a single ``is not None`` test.  The
        # histogram observes predictions; it never influences them.
        self._conf_hist = obs.histogram("mpppb/confidence",
                                        CONFIDENCE_BUCKETS)

    # -- prediction plumbing ----------------------------------------------

    def on_access(self, set_idx: int, ctx: AccessContext, hit: bool, way: int) -> None:
        indices = self._indices(ctx)
        self._confidence = confidence = self._predict(indices)
        if self._conf_hist is not None:
            self._conf_hist.observe(confidence)
        self._observe(set_idx, ctx, indices, confidence)

    # -- bypass -------------------------------------------------------------

    def should_bypass(self, set_idx: int, ctx: AccessContext) -> bool:
        if self._confidence > self.config.tau_bypass:
            self.bypasses += 1
            return True
        return False

    # -- placement ------------------------------------------------------------

    def on_fill(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        confidence = self._confidence
        t1, t2, t3 = self.config.taus
        p1, p2, p3 = self.config.placements
        if confidence > t1:
            position = p1
        elif confidence > t2:
            position = p2
        elif confidence > t3:
            position = p3
        else:
            position = self._mru_position
        self.default.place(set_idx, way, position)

    # -- promotion -------------------------------------------------------------

    def on_hit(self, set_idx: int, way: int, ctx: AccessContext) -> None:
        if self._confidence > self.config.tau_no_promote:
            self.promotions_suppressed += 1
            return
        self.default.on_hit(set_idx, way, ctx)

    # -- replacement delegation -------------------------------------------------

    def choose_victim(self, set_idx: int, ctx: AccessContext) -> int:
        return self.default.choose_victim(set_idx, ctx)

    def on_evict(self, set_idx: int, way: int, block: int) -> None:
        self.default.on_evict(set_idx, way, block)

    def is_mru(self, set_idx: int, way: int) -> bool:
        return self.default.is_mru(set_idx, way)

    # -- reporting ----------------------------------------------------------------

    def storage_bits(self) -> int:
        """Predictor + sampler + default-policy state (Section 4.4)."""
        if isinstance(self.default, MDPPPolicy):
            default_bits = 15 * self.num_sets
        else:
            default_bits = 2 * self.ways * self.num_sets
        return (
            self.predictor.storage_bits()
            + self.sampler.storage_bits()
            + default_bits
        )
