"""The paper's primary contribution: multiperspective reuse prediction
and the MPPPB cache management policy."""

from repro.core.features import (
    AddressFeature,
    BiasFeature,
    BurstFeature,
    Feature,
    InsertFeature,
    LastMissFeature,
    OffsetFeature,
    PCFeature,
    parse_feature,
    parse_feature_set,
    perturb_feature,
    random_feature,
    random_feature_set,
    with_associativity,
)
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.predictor import (
    CONFIDENCE_MAX,
    CONFIDENCE_MIN,
    MultiperspectivePredictor,
)
from repro.core.presets import (
    TABLE_1A_SPECS,
    TABLE_1B_SPECS,
    TABLE_2_SPECS,
    multi_core_tuned_config,
    multi_programmed_config,
    single_thread_config,
    table_1a_features,
    table_1b_features,
    table_2_features,
)
from repro.core.sampler import MultiperspectiveSampler, SamplerEntry
from repro.core.tables import WEIGHT_MAX, WEIGHT_MIN, WeightTable

__all__ = [
    "AddressFeature",
    "BiasFeature",
    "BurstFeature",
    "Feature",
    "InsertFeature",
    "LastMissFeature",
    "OffsetFeature",
    "PCFeature",
    "parse_feature",
    "parse_feature_set",
    "perturb_feature",
    "random_feature",
    "random_feature_set",
    "with_associativity",
    "MPPPBConfig",
    "MPPPBPolicy",
    "CONFIDENCE_MAX",
    "CONFIDENCE_MIN",
    "MultiperspectivePredictor",
    "TABLE_1A_SPECS",
    "TABLE_1B_SPECS",
    "TABLE_2_SPECS",
    "multi_core_tuned_config",
    "multi_programmed_config",
    "single_thread_config",
    "table_1a_features",
    "table_1b_features",
    "table_2_features",
    "MultiperspectiveSampler",
    "SamplerEntry",
    "WEIGHT_MAX",
    "WEIGHT_MIN",
    "WeightTable",
]
