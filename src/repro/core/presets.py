"""The published feature sets and tuned parameter presets.

Tables 1(a), 1(b), and 2 of the paper, encoded verbatim in the
paper's own notation (with the two typographic quirks noted in
DESIGN.md: ``pe(...)``/``¢(...)`` OCR artifacts are transcribed as
``pc``, and the five-parameter ``address(9,9,14,5,1)`` entry of
Table 2 is accepted by the lenient parser).

The paper developed Tables 1(a) and 1(b) on two random halves of the
99 single-thread segments by cross-validation — each half is always
*evaluated* with the features developed on the other half — and
Table 2 on the first 100 multi-programmed training mixes
(Sections 5.2 and 5.3).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.features import Feature, parse_feature_set
from repro.core.mpppb import MPPPBConfig

TABLE_1A_SPECS: Tuple[str, ...] = (
    "bias(16,0)",
    "burst(6,0)",
    "insert(16,0)",
    "insert(16,1)",
    "insert(17,1)",
    "insert(8,1)",
    "lastmiss(9,0)",
    "offset(10,0,6,1)",
    "offset(15,1,6,1)",
    "pc(10,1,53,10,0)",
    "pc(16,3,11,16,1)",
    "pc(16,8,16,5,0)",
    "pc(17,6,20,0,1)",
    "pc(17,6,20,0,1)",
    "pc(17,6,20,14,1)",
    "pc(7,14,43,11,0)",
)

TABLE_1B_SPECS: Tuple[str, ...] = (
    "address(11,8,19,0)",
    "bias(6,1)",
    "insert(15,0)",
    "insert(16,1)",
    "insert(6,1)",
    "offset(15,1,6,1)",
    "offset(15,3,7,0)",
    "pc(11,2,24,4,1)",
    "pc(15,14,32,6,0)",
    "pc(15,5,28,0,1)",
    "pc(16,0,16,8,1)",
    "pc(17,6,20,0,1)",
    "pc(6,12,14,10,1)",
    "pc(7,1,24,11,0)",
    "pc(7,14,43,11,0)",
    "pc(8,1,61,11,0)",
)

TABLE_2_SPECS: Tuple[str, ...] = (
    "bias(6,0)",
    "address(9,9,14,5,1)",
    "address(9,12,29,0)",
    "address(13,21,29,0)",
    "address(14,17,25,0)",
    "lastmiss(6,0)",
    "lastmiss(18,0)",
    "offset(13,0,4,0)",
    "offset(14,0,6,0)",
    "offset(16,0,1,0)",
    "pc(6,13,31,4,0)",
    "pc(9,11,7,16,0)",
    "pc(13,16,24,17,0)",
    "pc(16,2,10,2,0)",
    "pc(16,4,46,9,0)",
    "pc(17,0,13,5,0)",
)


def table_1a_features() -> Tuple[Feature, ...]:
    """Single-thread feature set (a) of Table 1."""
    return parse_feature_set(TABLE_1A_SPECS)


def table_1b_features() -> Tuple[Feature, ...]:
    """Single-thread feature set (b) of Table 1."""
    return parse_feature_set(TABLE_1B_SPECS)


def table_2_features() -> Tuple[Feature, ...]:
    """Multi-programmed feature set of Table 2."""
    return parse_feature_set(TABLE_2_SPECS)


def single_thread_config(table: str = "a", **overrides) -> MPPPBConfig:
    """MPPPB over static MDPP with a Table 1 feature set.

    The paper's cross-validation reports each workload half with the
    features developed on the *other* half; callers implementing that
    discipline pick ``table`` per workload (see
    :func:`repro.sim.single.cross_validated_configs`).
    """
    features = table_1a_features() if table == "a" else table_1b_features()
    defaults = dict(
        default_policy="mdpp",
        tau_bypass=90,
        taus=(50, 20, -20),
        placements=(15, 14, 12),
        tau_no_promote=70,
        theta=150,
    )
    defaults.update(overrides)
    return MPPPBConfig(features=features, **defaults)


def multi_core_tuned_config(**overrides) -> MPPPBConfig:
    """The multi-programmed MPPPB preset used for headline results.

    The paper's Table 2 features lean heavily on physical-address bits
    (four ``address`` features), which carry far less signal under this
    reproduction's synthetic address layout than under real SPEC
    physical addresses.  The paper itself observes that the Table 1(a)
    features "provide reasonable performance for the multi-programmed
    workloads: 8.0% speedup versus 8.3%" (Section 6.4), so — mirroring
    the paper's train-mix tuning discipline — the tuned multi-core
    preset runs the Table 1(a) features over SRRIP.  The verbatim
    Table 2 configuration remains available via
    :func:`multi_programmed_config` and is evaluated by
    ``benchmarks/bench_table2_mp_features.py``; the substitution is
    recorded in DESIGN.md and EXPERIMENTS.md.
    """
    defaults = dict(
        features=table_1a_features(),
        default_policy="srrip",
        tau_bypass=90,
        taus=(50, 20, -20),
        placements=(3, 3, 2),
        tau_no_promote=70,
        theta=150,
    )
    defaults.update(overrides)
    return MPPPBConfig(**defaults)


def multi_programmed_config(**overrides) -> MPPPBConfig:
    """MPPPB over SRRIP with the verbatim Table 2 feature set."""
    defaults = dict(
        features=table_2_features(),
        default_policy="srrip",
        tau_bypass=90,
        taus=(50, 20, -20),
        placements=(3, 3, 2),
        tau_no_promote=70,
        theta=150,
    )
    defaults.update(overrides)
    return MPPPBConfig(**defaults)
