"""The seven parameterized feature families of multiperspective reuse
prediction (Section 3.2).

Every feature carries two universal parameters:

* **A** — the recency-stack position beyond which a block counts as
  *dead* for this feature's table.  Each feature thereby simulates a
  cache of a different associativity (Section 3.3), which is the
  paper's key generalization over earlier samplers.
* **X** — when true, the feature bits are exclusive-ORed with a hash
  of the current memory instruction's PC before indexing, letting the
  feature exploit correlations between its value and the accessing PC.

The families and their extra parameters:

=========  =======================  ==========================================
family     parameters               value
=========  =======================  ==========================================
pc         A, B, E, W, X            bits B..E of the W-th most recent
                                    memory-access PC (W = 0 is current)
address    A, B, E, X               bits B..E of the physical address
bias       A, X                     the constant 0 — a global dead/live
                                    counter, or a pure PC table when X is set
burst      A, X                     1 iff the access hits the MRU block
insert     A, X                     1 iff the access is an insertion (miss)
lastmiss   A, X                     1 iff the previous access to this set
                                    missed
offset     A, B, E, X               bits B..E of the block offset (≤ 6 bits)
=========  =======================  ==========================================

Published feature tables contain OCR-era quirks (reversed bit ranges,
an ``address`` entry with a stray fifth parameter); :func:`parse_feature`
accepts them leniently, as documented in DESIGN.md.

Multi-bit values are XOR-folded to at most ``INDEX_BITS`` (8) bits, the
paper's maximum table size of 256 entries (Section 3.4).

For the simulator's hot loop each feature *compiles* to a closure with
its parameters bound to locals; the closures take the
:class:`~repro.cache.access.AccessContext` of an LLC access and return
a table index.
"""

from __future__ import annotations

import random
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from repro.cache.access import AccessContext
from repro.util.hashing import hash_to

INDEX_BITS = 8
MAX_TABLE_SIZE = 1 << INDEX_BITS
MAX_ASSOCIATIVITY = 18  # sampler ways (Section 3.3)
BLOCK_OFFSET_BITS = 6   # 64-byte blocks

IndexFn = Callable[[AccessContext], int]

# Real workloads touch few distinct memory-access PCs, so the hash of
# the current PC — needed by every X-flagged feature on every access —
# is memoized globally rather than recomputed 16 times per access.
_PC_HASH_CACHE: dict = {}


def _hashed_pc(pc: int) -> int:
    cached = _PC_HASH_CACHE.get(pc)
    if cached is None:
        cached = hash_to(pc >> 2, INDEX_BITS)
        if len(_PC_HASH_CACHE) > 1 << 16:
            _PC_HASH_CACHE.clear()
        _PC_HASH_CACHE[pc] = cached
    return cached


def _normalize_range(begin: int, end: int, limit: int) -> Tuple[int, int]:
    """Order and clamp a published bit range."""
    lo, hi = (begin, end) if begin <= end else (end, begin)
    lo = max(0, min(limit, lo))
    hi = max(0, min(limit, hi))
    return lo, hi


def _slice_and_fold(lo: int, hi: int, bits: int) -> Callable[[int], int]:
    """Compile a memoized bits[lo..hi]-then-fold-to-``bits`` extractor."""
    width = hi - lo + 1
    slice_mask = (1 << width) - 1
    fold_mask = (1 << bits) - 1
    if width <= bits:
        return lambda value: (value >> lo) & slice_mask
    cache: dict = {}

    def extract(value: int) -> int:
        sliced = (value >> lo) & slice_mask
        cached = cache.get(sliced)
        if cached is not None:
            return cached
        key = sliced
        folded = 0
        while sliced:
            folded ^= sliced & fold_mask
            sliced >>= bits
        if len(cache) > 1 << 16:
            cache.clear()
        cache[key] = folded
        return folded

    return extract


@dataclass(frozen=True)
class Feature(ABC):
    """A parameterized feature; immutable and hashable."""

    associativity: int
    xor_pc: bool

    def __post_init__(self) -> None:
        if not 1 <= self.associativity <= MAX_ASSOCIATIVITY:
            raise ValueError(
                f"associativity {self.associativity} outside 1..{MAX_ASSOCIATIVITY}"
            )

    @property
    @abstractmethod
    def family(self) -> str:
        """The feature family name (``pc``, ``address``, ...)."""

    @property
    @abstractmethod
    def value_bits(self) -> int:
        """Width of the raw feature value before any PC XOR."""

    @property
    def table_size(self) -> int:
        """Number of weights in this feature's prediction table.

        XORing with the PC spreads any feature over the full 8-bit
        index space; otherwise the table only needs 2^value_bits
        entries (1 for the plain bias feature) — the paper's
        variable-sized tables (Section 3.4).
        """
        if self.xor_pc:
            return MAX_TABLE_SIZE
        return 1 << self.value_bits

    @abstractmethod
    def _extra_params(self) -> Tuple[int, ...]:
        """Family-specific parameters, in published order."""

    @abstractmethod
    def compile(self) -> IndexFn:
        """Build the specialized index closure for the hot loop."""

    def index(self, ctx: AccessContext) -> int:
        """Convenience single-shot index (tests, documentation)."""
        return self.compile()(ctx)

    def spec(self) -> str:
        """Render in the paper's notation, e.g. ``pc(10,1,53,10,0)``."""
        params = (self.associativity, *self._extra_params(), int(self.xor_pc))
        return f"{self.family}({','.join(str(p) for p in params)})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.spec()

    def _xor_wrap(self, raw_fn: Callable[[AccessContext], int]) -> IndexFn:
        """Apply the X parameter and size masking around a raw value fn."""
        if not self.xor_pc:
            mask = self.table_size - 1
            if mask == 0:
                return lambda ctx: 0
            return lambda ctx: raw_fn(ctx) & mask
        hashed_pc = _hashed_pc
        mask = MAX_TABLE_SIZE - 1

        def indexed(ctx: AccessContext) -> int:
            return (raw_fn(ctx) ^ hashed_pc(ctx.pc)) & mask

        return indexed


@dataclass(frozen=True)
class PCFeature(Feature):
    """pc(A, B, E, W, X): PC-history bits (Section 3.2, feature 1)."""

    begin: int
    end: int
    depth: int  # W: which most-recent memory-access PC

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.depth < MAX_ASSOCIATIVITY:
            raise ValueError(f"pc history depth {self.depth} outside 0..17")

    @property
    def family(self) -> str:
        return "pc"

    @property
    def value_bits(self) -> int:
        lo, hi = _normalize_range(self.begin, self.end, 63)
        return min(INDEX_BITS, hi - lo + 1)

    def _extra_params(self) -> Tuple[int, ...]:
        return (self.begin, self.end, self.depth)

    def compile(self) -> IndexFn:
        lo, hi = _normalize_range(self.begin, self.end, 63)
        extract = _slice_and_fold(lo, hi, self.value_bits)
        depth = self.depth

        if depth == 0:
            return self._xor_wrap(lambda ctx: extract(ctx.pc))

        def raw(ctx: AccessContext) -> int:
            # Prefetches are not instructions: depth counts real memory
            # instructions, whose trace position is history_index (the
            # triggering instruction).
            index = ctx.history_index - depth + (1 if ctx.is_prefetch else 0)
            history = ctx.pc_history
            return extract(history[index] if 0 <= index < len(history) else 0)

        return self._xor_wrap(raw)


@dataclass(frozen=True)
class AddressFeature(Feature):
    """address(A, B, E, X): physical-address bits (feature 2)."""

    begin: int
    end: int

    @property
    def family(self) -> str:
        return "address"

    @property
    def value_bits(self) -> int:
        lo, hi = _normalize_range(self.begin, self.end, 63)
        return min(INDEX_BITS, hi - lo + 1)

    def _extra_params(self) -> Tuple[int, ...]:
        return (self.begin, self.end)

    def compile(self) -> IndexFn:
        lo, hi = _normalize_range(self.begin, self.end, 63)
        extract = _slice_and_fold(lo, hi, self.value_bits)
        return self._xor_wrap(lambda ctx: extract(ctx.address))


@dataclass(frozen=True)
class BiasFeature(Feature):
    """bias(A, X): the constant 0 (feature 3).

    Without X this is a single global up/down counter tracking the
    short-term tendency of blocks to be dead; with X it degenerates to
    a pure PC-indexed table, i.e. an SDBP/SHiP-style predictor.
    """

    @property
    def family(self) -> str:
        return "bias"

    @property
    def value_bits(self) -> int:
        return 0

    def _extra_params(self) -> Tuple[int, ...]:
        return ()

    def compile(self) -> IndexFn:
        return self._xor_wrap(lambda ctx: 0)


@dataclass(frozen=True)
class BurstFeature(Feature):
    """burst(A, X): 1 iff the access hits the MRU block (feature 4)."""

    @property
    def family(self) -> str:
        return "burst"

    @property
    def value_bits(self) -> int:
        return 1

    def _extra_params(self) -> Tuple[int, ...]:
        return ()

    def compile(self) -> IndexFn:
        return self._xor_wrap(lambda ctx: 1 if ctx.is_mru_hit else 0)


@dataclass(frozen=True)
class InsertFeature(Feature):
    """insert(A, X): 1 iff the access inserts a missing block (feature 5)."""

    @property
    def family(self) -> str:
        return "insert"

    @property
    def value_bits(self) -> int:
        return 1

    def _extra_params(self) -> Tuple[int, ...]:
        return ()

    def compile(self) -> IndexFn:
        return self._xor_wrap(lambda ctx: 1 if ctx.is_insert else 0)


@dataclass(frozen=True)
class LastMissFeature(Feature):
    """lastmiss(A, X): 1 iff this set's previous access missed (feature 6)."""

    @property
    def family(self) -> str:
        return "lastmiss"

    @property
    def value_bits(self) -> int:
        return 1

    def _extra_params(self) -> Tuple[int, ...]:
        return ()

    def compile(self) -> IndexFn:
        return self._xor_wrap(lambda ctx: 1 if ctx.last_was_miss else 0)


@dataclass(frozen=True)
class OffsetFeature(Feature):
    """offset(A, B, E, X): block-offset bits (feature 7, 1-6 bits)."""

    begin: int
    end: int

    @property
    def family(self) -> str:
        return "offset"

    @property
    def value_bits(self) -> int:
        lo, hi = _normalize_range(self.begin, self.end, BLOCK_OFFSET_BITS - 1)
        return hi - lo + 1

    def _extra_params(self) -> Tuple[int, ...]:
        return (self.begin, self.end)

    def compile(self) -> IndexFn:
        lo, hi = _normalize_range(self.begin, self.end, BLOCK_OFFSET_BITS - 1)
        mask = (1 << (hi - lo + 1)) - 1
        return self._xor_wrap(lambda ctx: (ctx.offset >> lo) & mask)


# Fused index functions are pure functions of the feature tuple, and a
# multi-benchmark compare constructs the same policy once per cell —
# memoizing skips the repeated exec/compile.  Bounded: the feature
# search churns through many random sets.
_FUSED_CACHE: dict = {}


def _fold_into(bits: int, cache: dict) -> Callable[[int], int]:
    """Fold a sliced value to ``bits`` and memoize it in ``cache``.

    The slow path of the inline slice-and-fold sequence emitted by
    :func:`compile_fused`; mirrors :func:`_slice_and_fold` exactly so
    both pipelines stay bit-identical.
    """
    fold_mask = (1 << bits) - 1

    def fold(sliced: int) -> int:
        key = sliced
        folded = 0
        while sliced:
            folded ^= sliced & fold_mask
            sliced >>= bits
        if len(cache) > 1 << 16:
            cache.clear()
        cache[key] = folded
        return folded

    return fold


def compile_fused(features: Sequence[Feature]) -> Callable[[AccessContext], list]:
    """Fuse a whole feature set into one compiled per-access index function.

    :meth:`Feature.compile` produces one closure per feature, so the
    predictor's hot loop pays 16 Python calls plus 16 repeated
    ``ctx``-attribute loads per access.  This compiler emits a single
    function (via ``exec``) that loads each needed ``AccessContext``
    field exactly once, hashes the PC at most once, reuses one
    ``history_index`` base across all pc-history depths, inlines the
    slice-and-fold memo lookups (a dict ``get`` instead of a closure
    call on the hot path, deduplicated across features that slice the
    same bits), and returns the full index vector as a list literal.
    Compiled functions are memoized per feature tuple, so repeated
    policy construction skips the ``exec``.

    The generated function is bit-identical to evaluating each
    feature's :meth:`~Feature.compile` closure in order — the fused
    pipeline is a pure strength reduction, enforced by
    ``tests/test_core_features.py``.
    """
    cache_key = tuple(features)
    cached = _FUSED_CACHE.get(cache_key)
    if cached is not None:
        return cached

    prologue: list = []
    exprs: list = []
    env: dict = {"_hp": _hashed_pc, "_hc": _PC_HASH_CACHE}
    needs: set = set()
    depths: set = set()
    extractors: dict = {}  # (source, lo, hi, bits) -> value expression
    xor_mask = MAX_TABLE_SIZE - 1

    def value_expr(source: str, begin: int, end: int, limit: int,
                   bits: int) -> str:
        """Slice bits [lo..hi] of ``source`` and fold to ``bits``.

        Narrow slices inline to a shift-and-mask; wide slices emit a
        memo-dict probe with :func:`_fold_into` as the miss path.
        Identical (source, range, width) extractions are emitted once.
        """
        lo, hi = _normalize_range(begin, end, limit)
        key = (source, lo, hi, bits)
        known = extractors.get(key)
        if known is not None:
            return known
        width = hi - lo + 1
        slice_mask = (1 << width) - 1
        if width <= bits:
            expr = f"({source} >> {lo}) & {slice_mask}" if lo else \
                f"{source} & {slice_mask}"
            extractors[key] = expr
            return expr
        k = len(extractors)
        memo: dict = {}
        env[f"_g{k}"] = memo.get
        env[f"_f{k}"] = _fold_into(bits, memo)
        sliced = f"({source} >> {lo}) & {slice_mask}" if lo else \
            f"{source} & {slice_mask}"
        prologue.append(f"_s{k} = {sliced}")
        prologue.append(f"_v{k} = _g{k}(_s{k})")
        prologue.append(f"if _v{k} is None: _v{k} = _f{k}(_s{k})")
        extractors[key] = f"_v{k}"
        return f"_v{k}"

    def wrap(raw: str, feature: Feature) -> str:
        if feature.xor_pc:
            if raw == "0":
                return f"_h & {xor_mask}"
            return f"(({raw}) ^ _h) & {xor_mask}"
        if feature.table_size == 1:
            return "0"
        # Non-XOR values are already within the table mask: narrow
        # slices carry at most value_bits bits and folds saturate at
        # the fold mask, so no extra masking is emitted.
        return raw

    def head(feature: Feature) -> None:
        """Record which prologue loads this feature's source needs."""
        family = feature.family
        if feature.xor_pc:
            needs.add("pc_hash")
        if family == "pc" and feature.depth:
            needs.add("history")
            depths.add(feature.depth)
        elif family == "pc":
            needs.add("pc")
        elif family == "address":
            needs.add("address")
        elif family == "offset":
            needs.add("offset")
        elif family == "burst":
            needs.add("burst")
        elif family == "insert":
            needs.add("insert")
        elif family == "lastmiss":
            needs.add("lastmiss")

    # Prologue ordering: all ctx loads first, then the per-depth
    # history values, then the extractor probes (which reference both).
    loads: list = []
    probes = prologue  # value_expr appends probe statements here
    for feature in features:
        head(feature)

    if "pc" in needs or "pc_hash" in needs:
        loads.append("_pc = ctx.pc")
    if "pc_hash" in needs:
        loads.append("_h = _hc.get(_pc)")
        loads.append("if _h is None: _h = _hp(_pc)")
    if "address" in needs:
        loads.append("_addr = ctx.address")
    if "offset" in needs:
        loads.append("_off = ctx.offset")
    if "burst" in needs:
        loads.append("_mru = 1 if ctx.is_mru_hit else 0")
    if "insert" in needs:
        loads.append("_ins = 1 if ctx.is_insert else 0")
    if "lastmiss" in needs:
        loads.append("_lm = 1 if ctx.last_was_miss else 0")
    if "history" in needs:
        loads.append("_hist = ctx.pc_history")
        loads.append("_hlen = len(_hist)")
        loads.append("_b = ctx.history_index + (1 if ctx.is_prefetch else 0)")
        for d in sorted(depths):
            loads.append(f"_i{d} = _b - {d}")
            loads.append(f"_pd{d} = _hist[_i{d}] if 0 <= _i{d} < _hlen else 0")

    for feature in features:
        family = feature.family
        if family == "pc":
            source = "_pc" if feature.depth == 0 else f"_pd{feature.depth}"
            raw = value_expr(source, feature.begin, feature.end, 63,
                             feature.value_bits)
        elif family == "address":
            raw = value_expr("_addr", feature.begin, feature.end, 63,
                             feature.value_bits)
        elif family == "offset":
            raw = value_expr("_off", feature.begin, feature.end,
                             BLOCK_OFFSET_BITS - 1, feature.value_bits)
        elif family == "bias":
            raw = "0"
        elif family == "burst":
            raw = "_mru"
        elif family == "insert":
            raw = "_ins"
        elif family == "lastmiss":
            raw = "_lm"
        else:  # pragma: no cover - new families must be added here
            raise ValueError(f"compile_fused cannot fuse family {family!r}")
        exprs.append(wrap(raw, feature))

    body = "\n    ".join(loads + probes
                         + [f"return [{', '.join(exprs)}]"])
    source = f"def _fused(ctx):\n    {body}\n"
    exec(compile(source, "<fused-features>", "exec"), env)  # noqa: S102
    fused = env["_fused"]
    fused.__source__ = source  # aid debugging/tests
    if len(_FUSED_CACHE) > 256:
        _FUSED_CACHE.clear()
    _FUSED_CACHE[cache_key] = fused
    return fused


_FAMILIES = {
    "pc": PCFeature,
    "address": AddressFeature,
    "bias": BiasFeature,
    "burst": BurstFeature,
    "insert": InsertFeature,
    "lastmiss": LastMissFeature,
    "offset": OffsetFeature,
}

_SPEC_RE = re.compile(r"^\s*([a-z]+)\s*\(\s*([-0-9,\s]*)\)\s*$")


def parse_feature(spec: str) -> Feature:
    """Parse the paper's ``family(p1,p2,...)`` notation.

    Lenient, per DESIGN.md: reversed bit ranges are normalized at use,
    and an ``address`` spec with five parameters (one published entry
    of Table 2) drops the stray fourth parameter.
    """
    match = _SPEC_RE.match(spec)
    if not match:
        raise ValueError(f"malformed feature spec {spec!r}")
    family, body = match.group(1), match.group(2)
    if family not in _FAMILIES:
        raise ValueError(f"unknown feature family {family!r} in {spec!r}")
    params = [int(p) for p in body.split(",") if p.strip()]
    if len(params) < 2:
        raise ValueError(f"feature spec {spec!r} needs at least (A, X)")
    a, x = params[0], bool(params[-1])
    middle = params[1:-1]
    if family == "pc":
        if len(middle) != 3:
            raise ValueError(f"pc feature takes (A,B,E,W,X): {spec!r}")
        return PCFeature(a, x, begin=middle[0], end=middle[1], depth=middle[2])
    if family == "address":
        if len(middle) == 3:
            middle = middle[:2]  # the Table 2 five-parameter quirk
        if len(middle) != 2:
            raise ValueError(f"address feature takes (A,B,E,X): {spec!r}")
        return AddressFeature(a, x, begin=middle[0], end=middle[1])
    if family == "offset":
        if len(middle) != 2:
            raise ValueError(f"offset feature takes (A,B,E,X): {spec!r}")
        return OffsetFeature(a, x, begin=middle[0], end=middle[1])
    if middle:
        raise ValueError(f"{family} feature takes (A,X) only: {spec!r}")
    return _FAMILIES[family](a, x)


def parse_feature_set(specs: Sequence[str]) -> Tuple[Feature, ...]:
    """Parse a whole published feature table."""
    return tuple(parse_feature(spec) for spec in specs)


def random_feature(rng: random.Random) -> Feature:
    """Draw one random parameterized feature (the Section 5.1 search).

    Families are weighted toward pc/address/offset the way the
    published tables are; associativity spans the sampler's 1..18.
    """
    family = rng.choices(
        ["pc", "address", "bias", "burst", "insert", "lastmiss", "offset"],
        weights=[8, 4, 2, 2, 3, 2, 4],
    )[0]
    a = rng.randint(1, MAX_ASSOCIATIVITY)
    x = rng.random() < 0.5
    if family == "pc":
        begin = rng.randint(0, 24)
        end = begin + rng.randint(0, 16)
        return PCFeature(a, x, begin=begin, end=end, depth=rng.randint(0, 17))
    if family == "address":
        begin = rng.randint(0, 32)
        end = begin + rng.randint(0, 16)
        return AddressFeature(a, x, begin=begin, end=end)
    if family == "offset":
        begin = rng.randint(0, BLOCK_OFFSET_BITS - 1)
        end = rng.randint(begin, BLOCK_OFFSET_BITS - 1)
        return OffsetFeature(a, x, begin=begin, end=end)
    return _FAMILIES[family](a, x)


def random_feature_set(rng: random.Random, size: int = 16) -> Tuple[Feature, ...]:
    """Draw a random set of ``size`` features (paper default: 16)."""
    return tuple(random_feature(rng) for _ in range(size))


def with_associativity(feature: Feature, associativity: int) -> Feature:
    """Clone ``feature`` with a different A (the Figure 9 ablation)."""
    from dataclasses import replace

    return replace(feature, associativity=associativity)


def perturb_feature(feature: Feature, rng: random.Random) -> Feature:
    """Slightly perturb one parameter (the hill-climbing move)."""
    from dataclasses import replace

    choices = ["assoc", "xor"]
    if isinstance(feature, (PCFeature, AddressFeature, OffsetFeature)):
        choices += ["begin", "end"]
    if isinstance(feature, PCFeature):
        choices.append("depth")
    move = rng.choice(choices)
    if move == "assoc":
        delta = rng.choice([-2, -1, 1, 2])
        a = min(MAX_ASSOCIATIVITY, max(1, feature.associativity + delta))
        return replace(feature, associativity=a)
    if move == "xor":
        return replace(feature, xor_pc=not feature.xor_pc)
    if move == "depth":
        d = min(17, max(0, feature.depth + rng.choice([-1, 1])))
        return replace(feature, depth=d)
    limit = BLOCK_OFFSET_BITS - 1 if isinstance(feature, OffsetFeature) else 63
    delta = rng.choice([-2, -1, 1, 2])
    if move == "begin":
        return replace(feature, begin=min(limit, max(0, feature.begin + delta)))
    return replace(feature, end=min(limit, max(0, feature.end + delta)))
