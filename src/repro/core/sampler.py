"""The multiperspective sampler (Sections 3.3 and 3.8).

A few LLC sets are shadowed by sampler sets of 18 ways, managed with
**true LRU** regardless of the main cache's default policy.  Each entry
stores a 16-bit partial tag, the vector of per-feature table indices
from the block's most recent access, and the 9-bit confidence computed
at that access.

Training departs from earlier samplers in one crucial way: every
feature has its own associativity parameter A, so

* on a **reuse** at LRU position ``p``, only features with ``p < A``
  train "live" (a cache of associativity A would have hit);
* on any **demotion** that moves a block from position ``A - 1`` to
  ``A``, that feature trains "dead" — evictions carry no special
  meaning because leaving position 17 is just the demotion to
  position 18 for features with A = 18.

Both directions are gated by the hashed-perceptron rule: a table is
only updated when the entry's stored confidence mispredicted the
outcome or its magnitude is below the training threshold theta.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.access import AccessContext
from repro.core.predictor import MultiperspectivePredictor
from repro.predictors.base import SetSampler, partial_tag

SAMPLER_WAYS = 18
DEFAULT_THETA = 40


class SamplerEntry:
    """One sampled block: partial tag + training metadata."""

    __slots__ = ("tag", "indices", "confidence")

    def __init__(self, tag: int, indices: List[int], confidence: int) -> None:
        self.tag = tag
        self.indices = indices
        self.confidence = confidence


class MultiperspectiveSampler:
    """LRU shadow sets that train a multiperspective predictor."""

    def __init__(
        self,
        predictor: MultiperspectivePredictor,
        llc_sets: int,
        sampler_sets: int = 64,
        ways: int = SAMPLER_WAYS,
        theta: int = DEFAULT_THETA,
        tag_bits: int = 16,
    ) -> None:
        if ways < 1:
            raise ValueError("sampler ways must be positive")
        self.predictor = predictor
        self.mapper = SetSampler(llc_sets, sampler_sets)
        self.ways = ways
        self.theta = theta
        self.tag_bits = tag_bits
        # Each sampler set is a list of entries, MRU (position 0) first.
        self._sets: List[List[SamplerEntry]] = [
            [] for _ in range(self.mapper.sampler_sets)
        ]
        # features_at[a] lists the features whose A parameter equals a,
        # so a demotion into position a trains exactly those tables.
        max_a = ways
        self._features_at: List[List[int]] = [[] for _ in range(max_a + 1)]
        for feature_idx, a in enumerate(predictor.associativities):
            if a <= max_a:
                self._features_at[a].append(feature_idx)
        self.trainings_live = 0
        self.trainings_dead = 0

    def observe(
        self,
        set_idx: int,
        ctx: AccessContext,
        indices: List[int],
        confidence: int,
    ) -> None:
        """Feed one LLC access; trains if ``set_idx`` is sampled."""
        sampler_idx = self.mapper.sampler_index(set_idx)
        if sampler_idx >= 0:
            self.access(sampler_idx, partial_tag(ctx.block, self.tag_bits),
                        indices, confidence)

    def access(
        self,
        sampler_idx: int,
        tag: int,
        indices: List[int],
        confidence: int,
    ) -> None:
        """One access to sampler set ``sampler_idx`` with a precomputed tag.

        Split from :meth:`observe` so callers that already resolved the
        sampler set and partial tag (the batched Stage-2 replay engine
        shares both across candidates) skip redundant per-candidate
        work.  All sampler state transitions and training live here.
        """
        entries = self._sets[sampler_idx]
        hit_position = self._find(entries, tag)
        if hit_position is not None:
            entry = entries[hit_position]
            self._train_reuse(entry, hit_position)
            # Promote to MRU; blocks above the hit demote by one.
            self._train_demotions(entries, hit_position)
            entries.pop(hit_position)
            entry.indices = indices
            entry.confidence = confidence
            entries.insert(0, entry)
            return
        # Sampler miss: every resident demotes by one; the block at
        # position ways-1 demotes to position ways, i.e. is evicted.
        self._train_demotions(entries, len(entries))
        if len(entries) >= self.ways:
            entries.pop()
        entries.insert(0, SamplerEntry(tag, indices, confidence))

    @staticmethod
    def _find(entries: List[SamplerEntry], tag: int) -> Optional[int]:
        for position, entry in enumerate(entries):
            if entry.tag == tag:
                return position
        return None

    def _train_reuse(self, entry: SamplerEntry, position: int) -> None:
        """A block was reused at LRU ``position``.

        Features whose associativity exceeds ``position`` saw a hit and
        train live; features with A <= position would have missed and
        are deliberately not trained (Section 3.3).
        """
        if entry.confidence <= -self.theta:
            return  # confidently and correctly predicted live: no update
        predictor = self.predictor
        indices = entry.indices
        for feature_idx, a in enumerate(predictor.associativities):
            if position < a:
                predictor.train_live(feature_idx, indices[feature_idx])
                self.trainings_live += 1

    def _train_demotions(self, entries: List[SamplerEntry], count: int) -> None:
        """Blocks at positions [0, count) each demote by one position.

        A block arriving at position ``a`` is an eviction for every
        feature with associativity ``a``.
        """
        features_at = self._features_at
        predictor = self.predictor
        theta = self.theta
        for old_position in range(min(count, len(entries))):
            trained_features = features_at[old_position + 1]
            if not trained_features:
                continue
            entry = entries[old_position]
            if entry.confidence >= theta:
                continue  # confidently and correctly predicted dead
            for feature_idx in trained_features:
                predictor.train_dead(feature_idx, entry.indices[feature_idx])
                self.trainings_dead += 1

    def storage_bits(self) -> int:
        """Sampler hardware cost (Section 4.4 accounting)."""
        index_bits = sum(
            max(1, (size - 1).bit_length())
            for size in (f.table_size for f in self.predictor.features)
        )
        per_entry = self.tag_bits + 9 + 4 + index_bits
        return per_entry * self.ways * self.mapper.sampler_sets
