#!/usr/bin/env python
"""Author a custom feature set and inspect the predictor it builds.

Demonstrates the feature API end to end: parse the paper's notation,
construct features programmatically, check each table's size and the
hardware budget (the Section 4.4 accounting), and run the resulting
MPPPB configuration against the published Table 1(a) preset.

Run with::

    python examples/custom_features.py
"""

from repro import (
    MPPPBConfig,
    SingleThreadRunner,
    build_segments,
    get_scale,
    parse_feature,
    single_thread_config,
)
from repro.core.features import (
    AddressFeature,
    BiasFeature,
    BurstFeature,
    InsertFeature,
    PCFeature,
)
from repro.core.mpppb import MPPPBPolicy

CUSTOM_SPECS = [
    "bias(16,0)",          # global dead/live tendency counter
    "pc(17,0,12,0,1)",     # current PC, low bits, XORed
    "pc(12,4,20,2,0)",     # PC two loads back
    "address(10,12,26,0)", # physical region bits
    "insert(16,1)",        # insertion bit crossed with the PC
    "burst(8,0)",          # MRU-burst bit
    "offset(14,0,5,1)",    # block offset crossed with the PC
]


def main() -> None:
    features = [parse_feature(spec) for spec in CUSTOM_SPECS]
    # The same set can be built programmatically:
    assert features[0] == BiasFeature(16, False)
    assert features[1] == PCFeature(17, True, begin=0, end=12, depth=0)
    assert features[3] == AddressFeature(10, False, begin=12, end=26)
    assert features[4] == InsertFeature(16, True)
    assert features[5] == BurstFeature(8, False)

    print("Custom feature set:")
    for feature in features:
        print(f"  {feature.spec():24s} table={feature.table_size:4d} weights"
              f"  (A={feature.associativity}, X={int(feature.xor_pc)})")

    config = MPPPBConfig(features=tuple(features))
    scale = get_scale()
    hierarchy = scale.hierarchy
    num_sets = hierarchy.llc_bytes // (hierarchy.llc_ways * 64)
    policy = MPPPBPolicy(num_sets, hierarchy.llc_ways, config)
    print(f"\nHardware budget: {policy.storage_bits() / 8 / 1024:.2f} KiB "
          f"({100 * policy.storage_bits() / 8 / hierarchy.llc_bytes:.2f}% "
          f"of the {hierarchy.llc_kib} KiB LLC)")

    segments = build_segments(
        "mcf", hierarchy.llc_bytes, accesses=scale.segment_accesses
    )
    runner = SingleThreadRunner(hierarchy,
                                warmup_fraction=scale.warmup_fraction)
    custom = runner.run_benchmark(
        "mcf", segments, lambda ns, w: MPPPBPolicy(ns, w, config)
    )
    published = runner.run_benchmark(
        "mcf", segments,
        lambda ns, w: MPPPBPolicy(ns, w, single_thread_config("a")),
    )
    print(f"\nmcf MPKI: custom 7-feature set = {custom.mpki:.3f}, "
          f"published Table 1(a) = {published.mpki:.3f}")


if __name__ == "__main__":
    main()
