#!/usr/bin/env python
"""Mini version of the paper's Section 5 feature search.

Randomly samples feature sets, evaluates each by average MPKI with the
fast (MPKI-only) simulator, then refines the best candidate by
hill-climbing — the same two-stage methodology whose full-size version
consumed "approximately 10 CPU years" (Section 5.1).

Run with::

    python examples/feature_search.py
"""

from repro import get_scale, policy_factory
from repro.search import FeatureSetEvaluator, hill_climb, random_search
from repro.traces.workloads import all_segments

TRAIN_BENCHMARKS = ("soplex", "sphinx3", "lbm", "gamess")


def main() -> None:
    scale = get_scale()
    segments = all_segments(
        scale.hierarchy.llc_bytes,
        max(4_000, scale.segment_accesses // 4),
        names=TRAIN_BENCHMARKS,
    )
    evaluator = FeatureSetEvaluator(
        segments, scale.hierarchy, warmup_fraction=scale.warmup_fraction
    )

    lru = evaluator.baseline_mpki(policy_factory("lru"))
    optimal = evaluator.baseline_mpki(policy_factory("min"))
    print(f"Reference lines: LRU mpki={lru:.3f}, MIN mpki={optimal:.3f}\n")

    num_candidates = max(6, scale.random_feature_sets // 4)
    print(f"Random search over {num_candidates} feature sets...")
    candidates = random_search(evaluator, num_candidates, seed=42)
    print(f"  worst random: {candidates[-1].mpki:.3f} mpki")
    print(f"  best random:  {candidates[0].mpki:.3f} mpki")

    steps = max(4, scale.hillclimb_steps // 2)
    print(f"\nHill-climbing the best candidate for {steps} steps...")
    refined = hill_climb(evaluator, candidates[0].features, steps=steps, seed=7)
    print(f"  refined:      {refined.mpki:.3f} mpki "
          f"({refined.improvements} accepted moves)")

    print("\nBest feature set found:")
    for feature in refined.features:
        print(f"  {feature.spec()}")


if __name__ == "__main__":
    main()
