#!/usr/bin/env python
"""Quickstart: run MPPPB against LRU on one synthetic benchmark.

This is the smallest end-to-end use of the library:

1. Build a workload (a synthetic analog of SPEC's ``soplex``).
2. Run the three-stage simulator under LRU and under MPPPB with the
   paper's Table 1(a) feature set.
3. Report MPKI and speedup, the paper's two headline metrics.

Run with::

    python examples/quickstart.py
"""

from repro import (
    SingleThreadRunner,
    build_segments,
    get_scale,
    policy_factory,
)


def main() -> None:
    scale = get_scale()
    hierarchy = scale.hierarchy
    print(f"Cache hierarchy: L1 {hierarchy.l1_kib} KiB / "
          f"L2 {hierarchy.l2_kib} KiB / LLC {hierarchy.llc_kib} KiB "
          f"({hierarchy.llc_ways}-way), scale={scale.name}")

    segments = build_segments(
        "soplex", hierarchy.llc_bytes, accesses=scale.segment_accesses
    )
    print(f"Workload: soplex ({len(segments)} weighted segments, "
          f"{scale.segment_accesses} accesses each)\n")

    runner = SingleThreadRunner(
        hierarchy, warmup_fraction=scale.warmup_fraction
    )
    results = {}
    for policy in ("lru", "mpppb-1a", "min"):
        results[policy] = runner.run_benchmark(
            "soplex", segments, policy_factory(policy)
        )
        r = results[policy]
        print(f"{policy:10s}  IPC={r.ipc:6.3f}  MPKI={r.mpki:7.3f}")

    lru = results["lru"]
    mpppb = results["mpppb-1a"]
    optimal = results["min"]
    print(f"\nMPPPB speedup over LRU: {mpppb.ipc / lru.ipc:6.3f}x "
          f"(Belady's MIN upper bound: {optimal.ipc / lru.ipc:6.3f}x)")
    print(f"MPPPB removes {100 * (lru.mpki - mpppb.mpki) / lru.mpki:.1f}% "
          f"of LRU's demand misses.")


if __name__ == "__main__":
    main()
