#!/usr/bin/env python
"""Measure reuse-predictor accuracy the way Figure 1 / Figure 8 does.

Each predictor runs in *measure-only* mode: the LLC stays under plain
LRU while the predictor's confidence for every access is logged, then
labeled dead or live by the block's actual fate.  Sweeping a threshold
yields the ROC curve; the paper's claim is that the multiperspective
predictor dominates SDBP and Perceptron in the 25-31% false-positive
region that the bypass optimization operates in (Section 6.3).

Run with::

    python examples/roc_curves.py
"""

from repro import (
    TrainedMultiperspective,
    build_segments,
    get_scale,
    measure_roc,
    single_thread_config,
)
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.sdbp import SDBPPredictor
from repro.sim.hierarchy import UpperLevels
from repro.util.stats import auc


def main() -> None:
    scale = get_scale()
    hierarchy = scale.hierarchy
    num_sets = hierarchy.llc_bytes // (hierarchy.llc_ways * 64)

    segment = build_segments(
        "sphinx3", hierarchy.llc_bytes, accesses=scale.segment_accesses
    )[0]
    upper = UpperLevels(hierarchy).run(segment.trace)
    warmup = len(upper.llc_stream) // 4
    print(f"Workload: {segment.name}, LLC stream of "
          f"{len(upper.llc_stream)} accesses\n")

    predictors = {
        "sdbp": SDBPPredictor(num_sets),
        "perceptron": PerceptronPredictor(num_sets),
        "multiperspective": TrainedMultiperspective(
            single_thread_config("a"), llc_sets=num_sets
        ),
    }

    print(f"{'predictor':18s} {'AUC':>6s}   TPR at FPR = 10% / 25% / 31% / 50%")
    for name, predictor in predictors.items():
        result = measure_roc(
            predictor, upper.llc_stream, segment.trace.pcs,
            hierarchy.llc_bytes, hierarchy.llc_ways, warmup=warmup,
        )
        points = result.curve(result.default_thresholds(65))
        area = auc(points)
        ordered = sorted(points, key=lambda p: p.false_positive_rate)

        def tpr_at(fpr_target: float) -> float:
            feasible = [p for p in ordered if p.false_positive_rate <= fpr_target]
            return max((p.true_positive_rate for p in feasible), default=0.0)

        row = " / ".join(f"{tpr_at(f):.3f}" for f in (0.10, 0.25, 0.31, 0.50))
        print(f"{name:18s} {area:6.3f}   {row}")


if __name__ == "__main__":
    main()
