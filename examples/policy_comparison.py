#!/usr/bin/env python
"""Compare every cache management policy on a slice of the suite.

Reproduces the flavor of the paper's Section 6.2 evaluation on a small
set of benchmarks that span the locality spectrum: a streaming
workload (``lbm``), a pointer-chaser (``mcf``), an LRU-hostile
working set (``sphinx3``), and a cache-friendly one (``gamess``).

Run with::

    python examples/policy_comparison.py [benchmark ...]
"""

import sys

from repro import (
    SingleThreadRunner,
    build_suite,
    geometric_mean,
    get_scale,
    policy_factory,
    speedups_over_lru,
)

POLICIES = ("lru", "srrip", "drrip", "mdpp", "sdbp", "hawkeye",
            "perceptron", "mpppb-1a", "min")
DEFAULT_BENCHMARKS = ("lbm", "mcf", "sphinx3", "gamess", "soplex")


def main() -> None:
    scale = get_scale()
    names = tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS
    suite = build_suite(
        scale.hierarchy.llc_bytes, scale.segment_accesses, names=names
    )
    runner = SingleThreadRunner(
        scale.hierarchy, warmup_fraction=scale.warmup_fraction
    )

    all_results = {}
    for policy in POLICIES:
        all_results[policy] = runner.run_suite(suite, policy_factory(policy))

    width = max(len(n) for n in names)
    print(f"{'MPKI':>{width + 2}s}  " + "  ".join(f"{p:>10s}" for p in POLICIES))
    for name in sorted(names):
        row = "  ".join(
            f"{all_results[p][name].mpki:10.3f}" for p in POLICIES
        )
        print(f"{name:>{width + 2}s}  {row}")

    print(f"\n{'speedup over LRU':>{width + 2}s}")
    lru = all_results["lru"]
    for policy in POLICIES[1:]:
        speedups = speedups_over_lru(all_results[policy], lru)
        gm = geometric_mean(list(speedups.values()))
        per_bench = "  ".join(
            f"{name}={speedups[name]:.3f}" for name in sorted(speedups)
        )
        print(f"{policy:>12s}  geomean={gm:.3f}   {per_bench}")


if __name__ == "__main__":
    main()
