#!/usr/bin/env python
"""Four-core shared-LLC simulation with weighted speedup (Section 6.1).

Builds a handful of FIESTA-style mixes from the workload suite, runs
each under LRU, SRRIP, and the multi-programmed MPPPB preset on the
shared LLC, and reports the normalized weighted speedups that
Figure 4 plots as S-curves.

Run with::

    python examples/multi_programmed.py
"""

from repro import (
    MultiProgrammedRunner,
    build_suite,
    generate_mixes,
    geometric_mean,
    get_scale,
    normalized_weighted_speedups,
    policy_factory,
)

POLICIES = ("lru", "srrip", "mpppb-mp")


def main() -> None:
    scale = get_scale()
    suite = build_suite(
        scale.hierarchy.llc_bytes, max(4_000, scale.segment_accesses // 3)
    )
    segments = [s for name in sorted(suite) for s in suite[name]]
    mixes = generate_mixes(segments, count=min(6, scale.mix_count))
    print(f"{len(mixes)} four-core mixes on a "
          f"{scale.multi_hierarchy.llc_kib} KiB shared LLC\n")

    runner = MultiProgrammedRunner(
        scale.multi_hierarchy, warmup_fraction=scale.warmup_fraction
    )
    results = {
        policy: [runner.run_mix(mix, policy_factory(policy)) for mix in mixes]
        for policy in POLICIES
    }

    normalized = normalized_weighted_speedups(results, baseline="lru")
    for policy in POLICIES:
        values = normalized[policy]
        print(f"{policy:10s} weighted speedup over LRU: "
              f"geomean={geometric_mean(values):.4f}  "
              f"per-mix={[round(v, 3) for v in values]}")

    print("\nPer-mix detail (MPPPB):")
    for mix, result in zip(mixes, results["mpppb-mp"]):
        threads = ", ".join(result.thread_names)
        print(f"  {mix.name}: ws={result.weighted_speedup:.3f} "
              f"mpki={result.mpki:.2f}  [{threads}]")


if __name__ == "__main__":
    main()
