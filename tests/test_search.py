"""Tests for the feature design-space exploration (Section 5.1)."""

import random

import pytest

from repro.core.features import random_feature_set
from repro.core.presets import table_1a_features
from repro.policies import policy_factory
from repro.search.evaluator import FeatureSetEvaluator
from repro.search.hillclimb import hill_climb
from repro.search.random_search import mpki_distribution, random_search
from repro.sim.hierarchy import HierarchyConfig
from repro.traces.workloads import all_segments

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=64, llc_ways=16)


@pytest.fixture(scope="module")
def evaluator():
    segments = all_segments(SMALL.llc_bytes, accesses=2500,
                            names=["soplex", "lbm"])
    return FeatureSetEvaluator(segments, SMALL)


class TestEvaluator:
    def test_rejects_empty_segments(self):
        with pytest.raises(ValueError):
            FeatureSetEvaluator([], SMALL)

    def test_returns_positive_mpki(self, evaluator):
        mpki = evaluator.evaluate(table_1a_features())
        assert mpki > 0

    def test_deterministic_and_cached(self, evaluator):
        features = table_1a_features()
        first = evaluator.evaluate(features)
        count = evaluator.evaluations
        second = evaluator.evaluate(features)
        assert first == second
        assert evaluator.evaluations == count  # cache hit, no rerun

    def test_baseline_mpki(self, evaluator):
        lru = evaluator.baseline_mpki(policy_factory("lru"))
        opt = evaluator.baseline_mpki(policy_factory("min"))
        assert opt <= lru


class TestBatchedEvaluation:
    """evaluate_many routes through the shared-context batch engine."""

    def _fresh(self, **kwargs):
        segments = all_segments(SMALL.llc_bytes, accesses=2500,
                                names=["soplex", "lbm"])
        return FeatureSetEvaluator(segments, SMALL, **kwargs)

    def _candidates(self, seed, count):
        rng = random.Random(seed)
        return [random_feature_set(rng) for _ in range(count)]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            self._fresh(batch_size=0)

    def test_batch_on_off_identical(self, monkeypatch):
        candidates = self._candidates(11, 5)
        monkeypatch.setenv("REPRO_STAGE2_BATCH", "off")
        sequential = self._fresh().evaluate_many(candidates)
        monkeypatch.setenv("REPRO_STAGE2_BATCH", "on")
        batched = self._fresh().evaluate_many(candidates)
        assert batched == sequential

    def test_batch_size_limits_replay_width(self, monkeypatch):
        monkeypatch.delenv("REPRO_STAGE2_BATCH", raising=False)
        evaluator = self._fresh(batch_size=2)
        widths = []
        original = evaluator.runner.run_segment_batch

        def spy(segment, configs):
            widths.append(len(configs))
            return original(segment, configs)

        evaluator.runner.run_segment_batch = spy
        values = evaluator.evaluate_many(self._candidates(3, 5))
        assert len(values) == 5
        assert evaluator.evaluations == 5
        # 5 candidates -> two batches of 2; the leftover singleton goes
        # down the per-candidate path (no width-1 batch replays).
        assert widths and set(widths) == {2}

    def test_knob_off_bypasses_batch_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE2_BATCH", "off")
        evaluator = self._fresh()

        def forbidden(segment, configs):
            raise AssertionError("batch engine used with knob off")

        evaluator.runner.run_segment_batch = forbidden
        values = evaluator.evaluate_many(self._candidates(4, 3))
        assert len(values) == 3

    def test_evaluate_batch_memoizes(self):
        evaluator = self._fresh()
        candidates = self._candidates(5, 3)
        first = evaluator.evaluate_batch(candidates)
        count = evaluator.evaluations
        assert evaluator.evaluate_batch(candidates) == first
        assert evaluator.evaluations == count
        # evaluate() sees the same memo the batch path filled.
        assert evaluator.evaluate(candidates[0]) == first[0]
        assert evaluator.evaluations == count


class TestRandomSearch:
    def test_sorted_ascending(self, evaluator):
        candidates = random_search(evaluator, num_sets=4, seed=3)
        mpkis = [c.mpki for c in candidates]
        assert mpkis == sorted(mpkis)
        assert all(len(c.features) == 16 for c in candidates)

    def test_rejects_zero(self, evaluator):
        with pytest.raises(ValueError):
            random_search(evaluator, num_sets=0)

    def test_distribution_descending(self, evaluator):
        candidates = random_search(evaluator, num_sets=4, seed=3)
        series = mpki_distribution(candidates)
        assert series == sorted(series, reverse=True)

    def test_deterministic(self, evaluator):
        a = random_search(evaluator, num_sets=3, seed=9)
        b = random_search(evaluator, num_sets=3, seed=9)
        assert [c.mpki for c in a] == [c.mpki for c in b]


class TestHillClimb:
    def test_never_worse_than_start(self, evaluator):
        start = random_feature_set(random.Random(5))
        start_mpki = evaluator.evaluate(start)
        result = hill_climb(evaluator, start, steps=6, seed=7)
        assert result.mpki <= start_mpki

    def test_history_monotone_nonincreasing(self, evaluator):
        start = random_feature_set(random.Random(6))
        result = hill_climb(evaluator, start, steps=6, seed=8)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_zero_steps(self, evaluator):
        start = table_1a_features()
        result = hill_climb(evaluator, start, steps=0)
        assert result.features == start
        assert result.steps_taken == 0

    def test_patience_stops_early(self, evaluator):
        start = table_1a_features()
        result = hill_climb(evaluator, start, steps=50, seed=1, patience=2)
        assert result.steps_taken <= 50

    def test_rejects_negative_steps(self, evaluator):
        with pytest.raises(ValueError):
            hill_climb(evaluator, table_1a_features(), steps=-1)
