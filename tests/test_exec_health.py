"""Unit tests for the mesh health layer (DESIGN.md §16).

Covers the knob resolvers in :mod:`repro.exec.health`, the circuit
breaker state machine, the network-chaos clauses of
``REPRO_FAULT_INJECT``, and the tiered store's degraded shared-tier
mode.  Integration with live workers lives in
``test_exec_backends.py``; end-to-end determinism under chaos in
``test_determinism.py``.
"""

import time

import pytest

from repro.exec import faults, health
from repro.exec.faults import ConfigError, FaultPlan, parse_fault_spec
from repro.exec.store import TieredResultStore


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in ("REPRO_HEARTBEAT", "REPRO_HEARTBEAT_TIMEOUT",
                 "REPRO_HEDGE", "REPRO_BREAKER",
                 "REPRO_BREAKER_THRESHOLD", "REPRO_BREAKER_COOLDOWN",
                 "REPRO_SSH_CONNECT_TIMEOUT", "REPRO_MANIFEST_FSYNC",
                 "REPRO_FAULT_INJECT"):
        monkeypatch.delenv(name, raising=False)
    faults.reset_injection_state()


class TestKnobs:
    def test_heartbeat_off_by_default(self):
        assert health.heartbeat_interval() is None
        assert health.heartbeat_timeout() is None

    def test_heartbeat_timeout_defaults_to_intervals(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.2")
        assert health.heartbeat_interval() == 0.2
        assert health.heartbeat_timeout() == pytest.approx(
            0.2 * health.HEARTBEAT_TIMEOUT_INTERVALS)

    def test_explicit_heartbeat_timeout_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.2")
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "3")
        assert health.heartbeat_timeout() == 3.0

    @pytest.mark.parametrize("value", ["abc", "-1", "0.0"])
    def test_bad_heartbeat_raises(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT", value)
        if value == "0.0":
            # "0" is the off sentinel, but "0.0" is a bad duration.
            with pytest.raises(ConfigError):
                health.heartbeat_interval()
        else:
            with pytest.raises(ConfigError):
                health.heartbeat_interval()

    def test_hedge_off_by_default(self):
        assert health.resolve_hedge() is None
        assert health.resolve_hedge(0) is None  # explicit off

    def test_hedge_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEDGE", "3")
        assert health.resolve_hedge(2.0) == 2.0
        assert health.resolve_hedge() == 3.0

    def test_hedge_below_one_rejected(self, monkeypatch):
        with pytest.raises(ConfigError):
            health.resolve_hedge(0.5)
        monkeypatch.setenv("REPRO_HEDGE", "0.5")
        with pytest.raises(ConfigError):
            health.resolve_hedge()

    def test_breaker_defaults_and_disable(self, monkeypatch):
        assert health.breaker_threshold() == health.BREAKER_THRESHOLD
        assert health.breaker_cooldown() == health.BREAKER_COOLDOWN_S
        monkeypatch.setenv("REPRO_BREAKER", "off")
        assert health.breaker_threshold() is None
        assert health.make_breaker() is None

    def test_breaker_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "5")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "0.25")
        breaker = health.make_breaker()
        assert breaker is not None
        assert breaker.threshold == 5
        assert breaker.cooldown == 0.25

    @pytest.mark.parametrize("value", ["zero", "0", "-2"])
    def test_bad_breaker_threshold_raises(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", value)
        with pytest.raises(ConfigError):
            health.breaker_threshold()

    def test_ssh_connect_timeout(self, monkeypatch):
        assert health.ssh_connect_timeout() == health.SSH_CONNECT_TIMEOUT_S
        monkeypatch.setenv("REPRO_SSH_CONNECT_TIMEOUT", "3")
        assert health.ssh_connect_timeout() == 3.0
        monkeypatch.setenv("REPRO_SSH_CONNECT_TIMEOUT", "off")
        assert health.ssh_connect_timeout() is None

    def test_manifest_fsync(self, monkeypatch):
        assert health.manifest_fsync() is False
        monkeypatch.setenv("REPRO_MANIFEST_FSYNC", "1")
        assert health.manifest_fsync() is True


class TestCircuitBreaker:
    def _breaker(self, threshold=3, cooldown=10.0):
        clock = [0.0]
        breaker = health.CircuitBreaker(threshold=threshold,
                                        cooldown=cooldown,
                                        clock=lambda: clock[0])
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.allow()
        assert breaker.record_failure() is True  # third: opens
        assert breaker.state == health.OPEN
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.skips == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # streak restarted
        assert breaker.state == health.CLOSED

    def test_halfopen_probe_success_closes(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 11.0
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == health.HALF_OPEN
        assert not breaker.allow()  # no second probe this window
        breaker.record_success()
        assert breaker.state == health.CLOSED
        assert breaker.allow()

    def test_halfopen_probe_failure_reopens(self):
        breaker, clock = self._breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed
        assert breaker.state == health.OPEN
        assert breaker.trips == 2
        clock[0] = 20.0  # new cooldown started at t=11
        assert not breaker.allow()
        clock[0] = 21.5
        assert breaker.allow()


class TestChaosSpecs:
    def test_new_kinds_parse(self):
        rules = parse_fault_spec(
            "frame-drop:every=6;frame-trunc:key=ab;frame-delay:seconds=2;"
            "frame-dup:every=5;hb-loss:every=4;shared-fail:times=3")
        assert [rule.kind for rule in rules] == [
            "frame-drop", "frame-trunc", "frame-delay", "frame-dup",
            "hb-loss", "shared-fail"]

    def test_shared_fail_defaults_to_unlimited(self):
        [rule] = parse_fault_spec("shared-fail")
        assert rule.times == 0
        [cell_rule] = parse_fault_spec("frame-drop")
        assert cell_rule.times == 1

    def test_frame_action_respects_attempt_bound(self):
        plan = FaultPlan(parse_fault_spec("frame-drop:every=1"))
        rule = plan.frame_action("f" * 64, 1)
        assert rule is not None and rule.kind == "frame-drop"
        # The hedge clone (and any requeue) carries attempt+1, so a
        # times=1 chaos rule never re-fires on it.
        assert plan.frame_action("f" * 64, 2) is None

    def test_heartbeat_suppression(self):
        plan = FaultPlan(parse_fault_spec("hb-loss:key=ab"))
        assert plan.suppresses_heartbeat("ab" + "0" * 62, 1)
        assert not plan.suppresses_heartbeat("cd" + "0" * 62, 1)

    def test_shared_fail_charges_per_operation(self):
        plan = FaultPlan(parse_fault_spec("shared-fail:times=2"))
        assert plan.shared_fail("k1")
        assert plan.shared_fail("k2")
        assert not plan.shared_fail("k3")  # budget exhausted
        faults.reset_injection_state()
        assert plan.shared_fail("k4")  # fresh budget

    def test_shared_fail_key_filter(self):
        plan = FaultPlan(parse_fault_spec("shared-fail:key=ab,times=1"))
        assert not plan.shared_fail("cd0000")
        assert plan.shared_fail("ab0000")

    def test_shared_tier_fault_raises_oserror(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "shared-fail:times=1")
        with pytest.raises(OSError):
            faults.shared_tier_fault("k")
        faults.shared_tier_fault("k")  # budget spent: no-op

    def test_execution_kinds_ignore_chaos_clauses(self):
        # fire() must not raise for chaos kinds — they have their own
        # hooks (worker frame path, store ops).
        plan = FaultPlan(parse_fault_spec(
            "frame-drop:every=1;hb-loss:every=1;shared-fail"))
        plan.fire("a" * 64, 1)  # no InjectedFault, no exit, no sleep


class TestSharedTierBreaker:
    def test_dead_shared_tier_degrades_to_local_only(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "shared-fail")
        store = TieredResultStore(tmp_path / "local", tmp_path / "shared")
        assert store.breaker is not None
        for index in range(health.BREAKER_THRESHOLD + 2):
            store.put(f"{index:02d}" + "0" * 62, {"kind": "t", "result": 1})
        counts = store.tier_counts()
        assert counts["breaker_open"] == 1
        assert counts["breaker_trips"] == 1
        assert counts["breaker_skips"] >= 2  # ops past the threshold skip
        assert counts["shared_fills"] == 0
        # Exactly one degradation notice, printed at the open transition.
        err = capsys.readouterr().err
        assert err.count("degraded to local-only") == 1
        # The local tier still serves every blob.
        assert store.get("000" + "0" * 61) is not None

    def test_halfopen_probe_recovers_healthy_tier(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "0.05")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "shared-fail")
        store = TieredResultStore(tmp_path / "local", tmp_path / "shared")
        for index in range(health.BREAKER_THRESHOLD):
            store.put(f"{index:02d}" + "0" * 62, {"kind": "t", "result": 1})
        assert store.breaker.state == health.OPEN
        # The mount comes back; the next op after the cooldown is the
        # half-open probe, succeeds, and closes the breaker.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        time.sleep(0.06)
        store.put("ff" + "0" * 62, {"kind": "t", "result": 2})
        assert store.breaker.state == health.CLOSED
        assert store.tier_counts()["shared_fills"] == 1
        assert store.shared.get("ff" + "0" * 62) is not None

    def test_absence_is_a_miss_not_a_failure(self, tmp_path):
        store = TieredResultStore(tmp_path / "local", tmp_path / "shared")
        assert store.get("aa" + "0" * 62) is None
        assert store.breaker.state == health.CLOSED
        assert store.breaker.failures == 0

    def test_breaker_disabled_keeps_trying(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER", "off")
        monkeypatch.setenv("REPRO_FAULT_INJECT", "shared-fail")
        store = TieredResultStore(tmp_path / "local", tmp_path / "shared")
        assert store.breaker is None
        for index in range(10):
            store.put(f"{index:02d}" + "0" * 62, {"kind": "t", "result": 1})
        counts = store.tier_counts()
        assert counts["breaker_open"] == 0
        assert counts["shared_fills"] == 0  # every op failed, none skipped
