"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.policies == ["lru", "mpppb-1a", "min"]
        assert args.scale == ""

    def test_compare_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--policies", "clock"])

    def test_roc_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["roc", "--benchmark", "nope"])

    def test_search_arguments(self):
        args = build_parser().parse_args(
            ["search", "--candidates", "5", "--steps", "3", "--seed", "1"])
        assert (args.candidates, args.steps, args.seed) == (5, 3, 1)

    def test_mix_arguments(self):
        args = build_parser().parse_args(["mix", "--mixes", "2"])
        assert args.mixes == 2

    def test_telemetry_flag(self):
        args = build_parser().parse_args(["compare", "--telemetry"])
        assert args.telemetry is True
        assert build_parser().parse_args(["compare"]).telemetry is False

    def test_stats_arguments(self):
        args = build_parser().parse_args(["stats"])
        assert not args.run_id
        assert args.top == 12
        args = build_parser().parse_args(["stats", "abc123", "--top", "0"])
        assert args.run_id == "abc123"
        assert args.top == 0


class TestExecution:
    def test_compare_unknown_benchmark_fails_cleanly(self, capsys):
        code = main(["compare", "--benchmarks", "not_a_benchmark",
                     "--scale", "tiny"])
        assert code == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_compare_runs_tiny(self, capsys):
        code = main(["compare", "--benchmarks", "gamess",
                     "--policies", "lru", "min", "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gamess" in out
        assert "geomean" in out

    def test_mix_without_lru_prints_raw(self, capsys):
        code = main(["mix", "--mixes", "2", "--policies", "srrip",
                     "--scale", "tiny"])
        assert code == 0
        assert "raw weighted speedups" in capsys.readouterr().out


class TestStats:
    def _record(self, tmp_path, capsys):
        """One telemetry-enabled compare; returns its cache dir."""
        cache = str(tmp_path / "cache")
        code = main(["compare", "--benchmarks", "gamess", "soplex",
                     "--policies", "lru", "mpppb-1a", "--scale", "tiny",
                     "--telemetry", "--cache-dir", cache])
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry:" in err
        assert "repro.cli stats" in err
        return cache

    def test_list_mode(self, tmp_path, capsys):
        cache = self._record(tmp_path, capsys)
        assert main(["stats", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "run id" in out
        assert "compare/mpppb-1a" in out

    def test_render_mode(self, tmp_path, capsys):
        cache = self._record(tmp_path, capsys)
        from repro.obs.events import list_event_logs

        run_ids = [run_id for run_id, _ in list_event_logs(cache)]
        assert run_ids
        assert main(["stats", run_ids[-1][:12], "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "span coverage" in out
        assert "cell" in out
        assert "llc/accesses" in out
        assert "mpppb/confidence" in out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["stats", "--cache-dir", str(tmp_path / "none")]) == 0
        assert "no recorded telemetry" in capsys.readouterr().out

    def test_unknown_prefix(self, tmp_path, capsys):
        cache = self._record(tmp_path, capsys)
        assert main(["stats", "zzzz", "--cache-dir", cache]) == 2
        assert "no telemetry matches" in capsys.readouterr().err

    def test_telemetry_does_not_leak_across_commands(self, tmp_path, capsys):
        from repro import obs

        self._record(tmp_path, capsys)
        assert not obs.enabled()
        # A later command without the flag must not record anything.
        cache2 = str(tmp_path / "cache2")
        code = main(["compare", "--benchmarks", "gamess", "soplex",
                     "--policies", "lru", "--scale", "tiny",
                     "--cache-dir", cache2])
        assert code == 0
        assert "telemetry:" not in capsys.readouterr().err


class TestFailureHandling:
    def test_malformed_jobs_env_is_a_clean_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        code = main(["compare", "--benchmarks", "gamess", "--policies", "lru",
                     "--scale", "tiny", "--cache-dir", "off"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: REPRO_JOBS")
        assert "Traceback" not in err

    def test_malformed_fault_spec_is_a_clean_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=two")
        code = main(["compare", "--benchmarks", "gamess", "--policies", "lru",
                     "--scale", "tiny", "--cache-dir", "off"])
        assert code == 2
        assert "REPRO_FAULT_INJECT" in capsys.readouterr().err

    def test_keyboard_interrupt_prints_partial_report(self, monkeypatch,
                                                      capsys):
        from repro.exec import runner as exec_runner

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(exec_runner, "_execute_cell", interrupt)
        code = main(["compare", "--benchmarks", "gamess", "soplex",
                     "--policies", "lru", "--scale", "tiny",
                     "--cache-dir", "off"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "pending" in err

    def test_failed_cells_exit_nonzero_with_table(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:every=1,times=99")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        code = main(["compare", "--benchmarks", "gamess", "--policies", "lru",
                     "--scale", "tiny", "--cache-dir", "off"])
        assert code == 1
        err = capsys.readouterr().err
        assert "failed cell" in err
        assert "InjectedFault" in err
