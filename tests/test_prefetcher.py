"""Tests for the stream prefetcher (Section 4.1 parameters)."""

import pytest

from repro.cpu.prefetcher import StreamPrefetcher


class TestStreamPrefetcher:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(num_streams=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)

    def test_first_miss_allocates_no_prefetch(self):
        pf = StreamPrefetcher()
        assert pf.on_l1_miss(100) == []
        assert pf.active_streams == 1

    def test_second_miss_trains_direction_up(self):
        # "Waits for at most two misses to decide on the direction."
        pf = StreamPrefetcher(degree=2)
        pf.on_l1_miss(100)
        assert pf.on_l1_miss(101) == [102, 103]

    def test_second_miss_trains_direction_down(self):
        pf = StreamPrefetcher(degree=2)
        pf.on_l1_miss(100)
        assert pf.on_l1_miss(99) == [98, 97]

    def test_trained_stream_keeps_prefetching(self):
        pf = StreamPrefetcher(degree=1)
        pf.on_l1_miss(10)
        pf.on_l1_miss(11)
        assert pf.on_l1_miss(12) == [13]
        assert pf.on_l1_miss(13) == [14]

    def test_stride_within_window_matches(self):
        pf = StreamPrefetcher(degree=1, match_window=4)
        pf.on_l1_miss(10)
        pf.on_l1_miss(11)
        # Skipping ahead 3 blocks still continues the stream.
        assert pf.on_l1_miss(14) == [15]

    def test_far_miss_starts_new_stream(self):
        pf = StreamPrefetcher()
        pf.on_l1_miss(10)
        assert pf.on_l1_miss(10_000) == []
        assert pf.active_streams == 2

    def test_sixteen_stream_capacity_with_lru(self):
        pf = StreamPrefetcher(num_streams=16)
        for i in range(17):
            pf.on_l1_miss(1000 * i)
        assert pf.active_streams == 16
        # Stream 0 (block 0) was LRU-evicted; a miss at block 1 now
        # matches nothing and allocates rather than training stream 0.
        assert pf.on_l1_miss(1) == []

    def test_descending_stream_never_prefetches_negative(self):
        pf = StreamPrefetcher(degree=4)
        pf.on_l1_miss(3)
        prefetches = pf.on_l1_miss(2)
        assert all(p >= 0 for p in prefetches)

    def test_issued_counter(self):
        pf = StreamPrefetcher(degree=2)
        pf.on_l1_miss(5)
        pf.on_l1_miss(6)
        pf.on_l1_miss(7)
        assert pf.issued == 4

    def test_interleaved_streams_tracked_independently(self):
        pf = StreamPrefetcher(degree=1)
        pf.on_l1_miss(100)
        pf.on_l1_miss(5000)
        assert pf.on_l1_miss(101) == [102]
        assert pf.on_l1_miss(5001) == [5002]

    def test_duplicate_miss_does_not_train(self):
        pf = StreamPrefetcher()
        pf.on_l1_miss(7)
        # Same block again: delta 0 matches nothing (distance must be > 0),
        # so a new stream is allocated and nothing is issued.
        assert pf.on_l1_miss(7) == []
