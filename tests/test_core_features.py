"""Tests for the seven parameterized features and their parsing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.access import AccessContext
from repro.core.features import (
    AddressFeature,
    BiasFeature,
    BurstFeature,
    InsertFeature,
    LastMissFeature,
    OffsetFeature,
    PCFeature,
    compile_fused,
    parse_feature,
    parse_feature_set,
    perturb_feature,
    random_feature,
    random_feature_set,
    with_associativity,
)
from repro.core.presets import TABLE_1A_SPECS, TABLE_1B_SPECS, TABLE_2_SPECS


def ctx(pc=0x401000, address=0x1234, history=(), history_index=0, **kwargs):
    return AccessContext(
        pc=pc, address=address, block=address >> 6, offset=address & 63,
        pc_history=history, history_index=history_index, **kwargs)


class TestFeatureValidation:
    def test_associativity_range_enforced(self):
        with pytest.raises(ValueError):
            BiasFeature(0, False)
        with pytest.raises(ValueError):
            BiasFeature(19, False)

    def test_pc_depth_range_enforced(self):
        with pytest.raises(ValueError):
            PCFeature(5, False, begin=0, end=7, depth=18)


class TestTableSizes:
    def test_bias_plain_single_weight(self):
        assert BiasFeature(16, False).table_size == 1

    def test_bias_xor_full_table(self):
        assert BiasFeature(6, True).table_size == 256

    def test_single_bit_features(self):
        assert BurstFeature(6, False).table_size == 2
        assert InsertFeature(16, False).table_size == 2
        assert LastMissFeature(9, False).table_size == 2

    def test_offset_size_follows_bits(self):
        assert OffsetFeature(13, False, begin=0, end=4).table_size == 32
        assert OffsetFeature(16, False, begin=0, end=1).table_size == 4

    def test_offset_clamped_to_six_bits(self):
        # offset(15,3,7,0): E=7 exceeds the 6-bit block offset.
        feature = OffsetFeature(15, False, begin=3, end=7)
        assert feature.value_bits == 3  # bits 3..5

    def test_pc_always_256(self):
        assert PCFeature(10, False, begin=1, end=53, depth=10).table_size == 256

    def test_wide_range_folds_to_8_bits(self):
        feature = AddressFeature(9, False, begin=12, end=29)
        assert feature.value_bits == 8


class TestFeatureValues:
    def test_bias_is_zero(self):
        assert BiasFeature(16, False).index(ctx()) == 0

    def test_burst_reads_mru_flag(self):
        feature = BurstFeature(6, False)
        assert feature.index(ctx(is_mru_hit=True)) == 1
        assert feature.index(ctx(is_mru_hit=False)) == 0

    def test_insert_reads_insert_flag(self):
        feature = InsertFeature(16, False)
        assert feature.index(ctx(is_insert=True)) == 1
        assert feature.index(ctx(is_insert=False)) == 0

    def test_lastmiss_reads_set_bit(self):
        feature = LastMissFeature(9, False)
        assert feature.index(ctx(last_was_miss=True)) == 1

    def test_offset_extracts_bits(self):
        feature = OffsetFeature(15, False, begin=1, end=3)
        assert feature.index(ctx(address=0b1010)) == 0b101

    def test_address_extracts_bits(self):
        feature = AddressFeature(11, False, begin=8, end=11)
        assert feature.index(ctx(address=0xA00)) == 0xA

    def test_reversed_range_equivalent(self):
        fwd = AddressFeature(9, False, begin=7, end=11)
        rev = AddressFeature(9, False, begin=11, end=7)
        sample = ctx(address=0xDEAD40)
        assert fwd.index(sample) == rev.index(sample)

    def test_pc_depth_zero_uses_current_pc(self):
        feature = PCFeature(17, False, begin=2, end=9, depth=0)
        a = feature.index(ctx(pc=0x1004))
        b = feature.index(ctx(pc=0x10F0))
        assert a != b

    def test_pc_depth_reads_history(self):
        history = [0x100, 0x200, 0x300, 0x400]
        feature = PCFeature(17, False, begin=0, end=9, depth=2)
        # Current access is history[3]; depth 2 reaches history[1].
        value = feature.index(ctx(pc=0x400, history=history, history_index=3))
        expected = feature.index(ctx(pc=0x200, history=[0x200], history_index=0,
                                     ), )
        # depth-2 on index 3 reads history[1] == 0x200; compare against
        # a depth-0 read of that PC with identical bit slicing.
        depth0 = PCFeature(17, False, begin=0, end=9, depth=0)
        assert value == depth0.index(ctx(pc=0x200))

    def test_pc_history_underflow_yields_zero_pc(self):
        feature = PCFeature(17, False, begin=0, end=9, depth=5)
        value = feature.index(ctx(pc=0x400, history=[0x400], history_index=0))
        depth0 = PCFeature(17, False, begin=0, end=9, depth=0)
        assert value == depth0.index(ctx(pc=0))

    def test_prefetch_history_offset(self):
        # A prefetch's "most recent instruction" is the trigger itself.
        history = [0x100, 0x200]
        feature = PCFeature(17, False, begin=0, end=9, depth=1)
        value = feature.index(ctx(pc=0xFA4E, history=history, history_index=1,
                                  is_prefetch=True))
        depth0 = PCFeature(17, False, begin=0, end=9, depth=0)
        assert value == depth0.index(ctx(pc=0x200))

    def test_xor_mixes_pc(self):
        plain = OffsetFeature(10, False, begin=0, end=5)
        xored = OffsetFeature(10, True, begin=0, end=5)
        sample_a = ctx(pc=0x400, address=0x15)
        sample_b = ctx(pc=0x999C, address=0x15)
        assert plain.index(sample_a) == plain.index(sample_b)
        assert xored.index(sample_a) != xored.index(sample_b)

    def test_indices_within_table(self):
        rng = random.Random(5)
        for _ in range(200):
            feature = random_feature(rng)
            sample = ctx(pc=rng.randrange(1 << 30), address=rng.randrange(1 << 40),
                         history=[rng.randrange(1 << 30) for _ in range(20)],
                         history_index=19,
                         is_insert=bool(rng.random() < 0.5),
                         is_mru_hit=bool(rng.random() < 0.5),
                         last_was_miss=bool(rng.random() < 0.5))
            assert 0 <= feature.index(sample) < feature.table_size


class TestSpecRoundtrip:
    @pytest.mark.parametrize("spec", TABLE_1A_SPECS + TABLE_1B_SPECS + TABLE_2_SPECS)
    def test_published_specs_parse(self, spec):
        feature = parse_feature(spec)
        assert 1 <= feature.associativity <= 18

    def test_roundtrip_canonical(self):
        assert parse_feature("pc(10,1,53,10,0)").spec() == "pc(10,1,53,10,0)"
        assert parse_feature("bias(16,0)").spec() == "bias(16,0)"
        assert parse_feature("offset(15,1,6,1)").spec() == "offset(15,1,6,1)"

    def test_table2_address_quirk(self):
        feature = parse_feature("address(9,9,14,5,1)")
        assert feature.family == "address"
        assert feature.associativity == 9
        assert feature.xor_pc is True
        assert (feature.begin, feature.end) == (9, 14)

    def test_malformed_specs_rejected(self):
        for bad in ("pc", "pc()", "nope(1,0)", "pc(1,2,3,4,5,6,7)", "bias(1,2,3)"):
            with pytest.raises(ValueError):
                parse_feature(bad)

    def test_parse_feature_set_counts(self):
        assert len(parse_feature_set(TABLE_1A_SPECS)) == 16
        assert len(parse_feature_set(TABLE_1B_SPECS)) == 16
        assert len(parse_feature_set(TABLE_2_SPECS)) == 16


class TestSearchHelpers:
    def test_random_feature_set_size(self):
        rng = random.Random(1)
        assert len(random_feature_set(rng)) == 16

    def test_random_features_deterministic(self):
        a = random_feature_set(random.Random(3))
        b = random_feature_set(random.Random(3))
        assert a == b

    def test_with_associativity(self):
        feature = parse_feature("pc(10,1,53,10,0)")
        changed = with_associativity(feature, 3)
        assert changed.associativity == 3
        assert changed.begin == feature.begin

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_perturb_preserves_validity(self, seed):
        rng = random.Random(seed)
        feature = random_feature(rng)
        perturbed = perturb_feature(feature, rng)
        assert 1 <= perturbed.associativity <= 18
        assert perturbed.family == feature.family
        # And the perturbed feature still produces in-range indices.
        assert 0 <= perturbed.index(ctx()) < perturbed.table_size


def _random_ctx(rng):
    history = tuple(rng.getrandbits(48) for _ in range(rng.randint(0, 24)))
    address = rng.getrandbits(48)
    return AccessContext(
        pc=rng.getrandbits(48), address=address,
        block=address >> 6, offset=address & 63,
        is_write=rng.random() < 0.3, is_prefetch=rng.random() < 0.2,
        stream_index=rng.randint(0, 10_000),
        pc_history=history,
        history_index=rng.randint(-2, len(history) + 2),
        is_insert=rng.random() < 0.5, is_mru_hit=rng.random() < 0.5,
        last_was_miss=rng.random() < 0.5,
    )


# One exemplar per family, covering narrow and wide bit ranges, PC
# history depths, and both X settings.
_FAMILY_EXEMPLARS = [
    PCFeature(10, False, begin=1, end=53, depth=0),   # wide, folds
    PCFeature(4, True, begin=2, end=7, depth=3),      # narrow, history
    PCFeature(18, False, begin=0, end=63, depth=17),  # deepest history
    AddressFeature(5, False, begin=6, end=30),
    AddressFeature(12, True, begin=50, end=12),       # reversed range
    BiasFeature(3, False),
    BiasFeature(3, True),
    BurstFeature(7, True),
    InsertFeature(2, False),
    LastMissFeature(9, True),
    OffsetFeature(6, False, begin=1, end=5),
    OffsetFeature(6, True, begin=0, end=5),
]


class TestFusedPipeline:
    """The fused compiler is a pure strength reduction: for every
    feature family and parameterization it must produce exactly the
    indices the per-feature ``compile()`` closures produce."""

    @pytest.mark.parametrize(
        "feature", _FAMILY_EXEMPLARS, ids=lambda f: f.spec()
    )
    def test_each_family_matches_compile(self, feature):
        rng = random.Random(hash(feature.spec()) & 0xFFFF)
        fused = compile_fused([feature])
        closure = feature.compile()
        for _ in range(300):
            sample = _random_ctx(rng)
            assert fused(sample) == [closure(sample)]

    @pytest.mark.parametrize("specs", [TABLE_1A_SPECS, TABLE_1B_SPECS,
                                       TABLE_2_SPECS],
                             ids=["1a", "1b", "2"])
    def test_published_tables_match_compile(self, specs):
        features = parse_feature_set(specs)
        fused = compile_fused(features)
        closures = [f.compile() for f in features]
        rng = random.Random(2017)
        for _ in range(300):
            sample = _random_ctx(rng)
            assert fused(sample) == [fn(sample) for fn in closures]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_sets_match_compile(self, seed):
        rng = random.Random(seed)
        features = random_feature_set(rng, size=rng.randint(1, 16))
        fused = compile_fused(features)
        closures = [f.compile() for f in features]
        for _ in range(50):
            sample = _random_ctx(rng)
            assert fused(sample) == [fn(sample) for fn in closures]

    def test_duplicate_features_share_extractors(self):
        feature = PCFeature(10, True, begin=1, end=53, depth=0)
        fused = compile_fused([feature, feature, feature])
        sample = ctx()
        index = feature.compile()(sample)
        assert fused(sample) == [index, index, index]

    def test_compiled_function_is_memoized(self):
        features = parse_feature_set(TABLE_1A_SPECS)
        assert compile_fused(features) is compile_fused(tuple(features))
