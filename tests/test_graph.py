"""Cost-aware experiment-graph scheduler (repro.graph).

Covers the three layers independently — the persistent cost model, the
SIGMOD-2020 forward/backward passes on hand-built graphs, and the
planner's lowering of real cells — plus the end-to-end execution
contracts: shared Stage-1 nodes compute exactly once, deny-load plans
recompute instead of reading the store, corrupt or truncated blobs
degrade to misses, and results are bit-identical with the scheduler on
or off (the full pinned-hash matrix lives in test_determinism.py).
"""

import pytest

from repro.config import TINY
from repro.exec import ParallelRunner, SingleCell, TraceSpec
from repro.exec.artifacts import stage1_key, scope_payload, trace_key
from repro.exec.cachekey import stable_hash
from repro.exec.store import ResultStore
from repro.graph import (
    COSTS_KEY,
    CostModel,
    ExperimentGraph,
    GraphNode,
    graph_enabled,
    plan_cells,
)
from repro.graph.costs import (
    COSTS_KIND,
    DEFAULT_RATES,
    DEFAULT_READ_BPS,
    EWMA_ALPHA,
    READ_OVERHEAD_S,
)
from repro.traces.workloads import segment_names

ACCESSES = 2_000
POLICIES = ("lru", "mpppb-1a", "srrip")


def _clear_memos():
    from repro.exec import runner as exec_runner

    exec_runner._SEGMENTS.clear()
    exec_runner._RUNNERS.clear()
    exec_runner._ARTIFACTS.clear()


def _cells(benchmark="gamess", policies=POLICIES):
    return [
        SingleCell(
            trace=TraceSpec(benchmark, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in policies
    ]


def _result_hash(cells, results):
    return stable_hash({"results": [r.to_dict() for r in results]})


# -- cost model ------------------------------------------------------------


class TestCostModel:
    def test_default_costs(self):
        model = CostModel()
        assert model.compute_cost("trace", 1000) == pytest.approx(
            DEFAULT_RATES["trace"] * 1000)
        assert model.load_cost(10_000) == pytest.approx(
            READ_OVERHEAD_S + 10_000 / DEFAULT_READ_BPS)
        assert model.compute_cost("unknown-kind", 1000) == 0.0

    def test_cold_model_prefers_loading_existing_blobs(self):
        """Defaults must reproduce pre-scheduler behavior: load what
        exists.  A typical Stage-1 blob loads far cheaper than the
        default compute rate recreates it."""
        model = CostModel()
        blob_bytes = 50 * ACCESSES
        assert model.load_cost(blob_bytes) < model.compute_cost(
            "stage1", ACCESSES)

    def test_observe_compute_ewma(self):
        model = CostModel()
        old = model.rates["stage1"]
        model.observe_compute("stage1", 1000, 1.0)  # 1e-3 s/access
        assert model.rates["stage1"] == pytest.approx(
            (1 - EWMA_ALPHA) * old + EWMA_ALPHA * 1e-3)
        assert model.samples == 1
        # Degenerate samples are ignored.
        model.observe_compute("stage1", 0, 1.0)
        model.observe_compute("stage1", 1000, 0.0)
        assert model.samples == 1

    def test_observe_load_ewma(self):
        model = CostModel()
        model.observe_load(1_000_000, 0.01)  # 100 MB/s
        assert model.read_bps == pytest.approx(
            (1 - EWMA_ALPHA) * DEFAULT_READ_BPS + EWMA_ALPHA * 1e8)

    def test_persistence_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        model = CostModel()
        model.observe_compute("stage1", 1000, 2.5)
        model.observe_load(500_000, 0.02)
        model.save(store)
        loaded = CostModel.load(store)
        assert loaded.to_payload() == model.to_payload()

    def test_corrupt_payload_degrades_to_defaults(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(COSTS_KEY, {"kind": COSTS_KIND, "result": "not-a-dict"})
        model = CostModel.load(store)
        assert model.to_payload() == CostModel().to_payload()
        store.put(COSTS_KEY, {"kind": "something-else", "result": {}})
        assert CostModel.load(store).samples == 0

    def test_eviction_survival(self, tmp_path):
        """Losing the blob to GC degrades to defaults, never crashes."""
        store = ResultStore(tmp_path / "cache")
        model = CostModel()
        model.observe_compute("trace", 1000, 1.0)
        model.save(store)
        assert store.gc(max_entries=0) >= 1
        loaded = CostModel.load(store)
        assert loaded.to_payload() == CostModel().to_payload()
        # And saving again after eviction works.
        model.save(store)
        assert CostModel.load(store).samples == model.samples


# -- forward/backward passes on synthetic graphs ---------------------------


def _chain(materialized_stage1=False, blob_bytes=0):
    """trace -> stage1 -> cell, with optional materialized stage1."""
    graph = ExperimentGraph()
    graph.add(GraphNode(key="t", kind="trace", label="t", accesses=1000))
    graph.add(GraphNode(key="s", kind="stage1", label="s", parents=("t",),
                        accesses=1000, materialized=materialized_stage1,
                        blob_bytes=blob_bytes))
    graph.add(GraphNode(key="c", kind="cell", label="c", parents=("s",)))
    return graph


class TestReusePasses:
    def test_parent_after_child_rejected(self):
        graph = ExperimentGraph()
        with pytest.raises(ValueError):
            graph.add(GraphNode(key="s", kind="stage1", label="s",
                                parents=("t",)))

    def test_cheap_load_beats_recompute(self):
        graph = _chain(materialized_stage1=True, blob_bytes=1000)
        graph.plan(CostModel())
        assert graph.nodes["s"].action == "load"
        # The load cuts recomputation: the trace above it is pruned.
        assert not graph.nodes["t"].needed
        assert graph.counts() == {
            "nodes": 2, "loads": 1, "computes": 0, "shared": 0, "pruned": 1,
        }

    def test_expensive_load_recomputes(self):
        """A blob on pathologically slow storage is planned for
        recompute, which keeps its parents needed."""
        graph = _chain(materialized_stage1=True, blob_bytes=10**12)
        graph.plan(CostModel(read_bps=1.0))
        assert graph.nodes["s"].action == "compute"
        assert graph.nodes["t"].needed
        assert graph.counts()["computes"] == 2

    def test_recreation_cost_includes_parents(self):
        """Loading pays off as soon as it beats compute + upstream
        recreation, even if it loses against the node's own compute."""
        model = CostModel(rates={"trace": 1.0, "stage1": 1e-9},
                          read_bps=DEFAULT_READ_BPS)
        graph = _chain(materialized_stage1=True, blob_bytes=1000)
        graph.plan(model)
        # stage1's own compute (~1e-6 s) is cheaper than the load, but
        # recreating it would also recreate the 1000 s trace.
        assert graph.nodes["s"].load_cost > graph.nodes["s"].compute_cost
        assert graph.nodes["s"].action == "load"

    def test_loaded_parent_collapses_recreation(self):
        graph = ExperimentGraph()
        graph.add(GraphNode(key="t", kind="trace", label="t", accesses=1000,
                            materialized=True, blob_bytes=100))
        graph.add(GraphNode(key="s", kind="stage1", label="s", parents=("t",),
                            accesses=1000, materialized=True,
                            blob_bytes=10**10))
        graph.add(GraphNode(key="c", kind="cell", label="c", parents=("s",)))
        graph.plan(CostModel())
        # The trace loads, so stage1's recreation chain is tiny and its
        # huge blob loses to recompute; the loaded trace stays needed.
        assert graph.nodes["t"].action == "load"
        assert graph.nodes["s"].action == "compute"
        assert graph.nodes["t"].needed


# -- planner lowering ------------------------------------------------------


class TestPlanner:
    def test_shared_nodes_deduplicated(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        cells = _cells()
        items = [(cell, stable_hash(cell.key_payload())) for cell in cells]
        plan = plan_cells(items, store, CostModel())
        names = segment_names("gamess")
        # One trace + one stage1 node per segment, regardless of the
        # number of policies sharing them.
        assert plan.counts["nodes"] == 1 + len(names)
        assert plan.counts["shared"] == 1 + len(names)
        spec = cells[0].trace
        tkey = trace_key(spec.payload())
        assert plan.graph.nodes[tkey].consumers == len(POLICIES)
        # Cold store: everything computes, shared nodes join the prelude.
        assert plan.counts["computes"] == plan.counts["nodes"]
        assert len(plan.prelude) == 1
        assert plan.prelude[0].segments == tuple(sorted(names))
        assert plan.deny == frozenset()

    def test_disjoint_benchmarks_not_shared(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        cells = _cells("gamess", ("lru",)) + _cells("soplex", ("lru",))
        items = [(cell, stable_hash(cell.key_payload())) for cell in cells]
        plan = plan_cells(items, store, CostModel())
        assert plan.counts["shared"] == 0
        assert plan.prelude == ()

    def test_materialized_blobs_load_with_default_costs(self, tmp_path):
        _clear_memos()  # the seed run must write to *this* store
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run(_cells(), label="seed")
        cells = _cells(policies=("drrip",))
        items = [(cell, stable_hash(cell.key_payload())) for cell in cells]
        plan = plan_cells(items, store, CostModel())
        assert plan.counts["loads"] > 0
        assert plan.counts["computes"] == 0
        assert plan.deny == frozenset()
        assert plan.prelude == ()

    def test_slow_store_denies_loads(self, tmp_path):
        """A cost model that rates the store pathologically slow plans
        recompute for materialized blobs — the deny set."""
        _clear_memos()  # the seed run must write to *this* store
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run(_cells(), label="seed")
        cells = _cells(policies=("drrip",))
        items = [(cell, stable_hash(cell.key_payload())) for cell in cells]
        plan = plan_cells(items, store, CostModel(read_bps=1.0))
        assert plan.counts["loads"] == 0
        assert len(plan.deny) == plan.counts["computes"] > 0


# -- end-to-end execution contracts ----------------------------------------


class TestGraphExecution:
    def test_shared_stage1_computes_exactly_once(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "on")
        _clear_memos()
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=2, store=store, verbose=False)
        cells = _cells()
        engine.run(cells, label="graph/once")
        report = engine.last_report
        names = segment_names("gamess")
        # The prelude materializes each shared Stage-1 node exactly
        # once; every consumer cell then hits the store.
        assert report.stage1_misses == len(names)
        assert report.stage1_hits >= len(names)
        assert report.graph_shared == 1 + len(names)
        assert report.graph_prelude == 1

    def test_graph_off_reports_no_plan(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "off")
        _clear_memos()
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run(_cells(), label="graph/off")
        assert engine.last_report.graph_nodes == 0
        assert engine.last_report.graph_prelude == 0

    def test_deny_load_recomputes_identically(self, tmp_path, monkeypatch):
        """With a persisted cost model that forbids loading, a warm
        artifact cache is bypassed — and results do not change."""
        monkeypatch.setenv("REPRO_GRAPH", "on")
        _clear_memos()
        store = ResultStore(tmp_path / "cache")
        cells = _cells()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        baseline = _result_hash(cells, engine.run(cells, label="seed"))

        # Drop result blobs so cells re-execute, then (after — the model
        # is itself a .json blob) persist a model that forbids loading.
        for blob in list(store.root.glob("??/*.json")):
            blob.unlink()
        CostModel(read_bps=1e-9).save(store)
        _clear_memos()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        rerun = _result_hash(cells, engine.run(cells, label="deny"))
        report = engine.last_report
        assert rerun == baseline
        assert report.graph_denied > 0
        # Denied lookups are misses: the artifacts recompute.
        assert report.stage1_misses > 0 or report.trace_misses > 0

    @pytest.mark.parametrize("damage", ["truncate", "corrupt"])
    def test_damaged_stage1_blob_is_a_miss(self, damage, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "on")
        _clear_memos()
        store = ResultStore(tmp_path / "cache")
        cells = _cells()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        baseline = _result_hash(cells, engine.run(cells, label="seed"))

        spec = cells[0].trace
        scope = scope_payload(spec.llc_bytes, spec.accesses, spec.seed)
        import dataclasses
        hpayload = dataclasses.asdict(TINY.hierarchy)
        name = segment_names("gamess")[0]
        key = stage1_key(scope, name, hpayload, True)
        blob = store.get_bytes(key)
        assert blob is not None
        if damage == "truncate":
            store.put_bytes(key, blob[: len(blob) // 2])
        else:
            store.put_bytes(key, b"XXXX" + blob[4:])

        for result in list(store.root.glob("??/*.json")):
            result.unlink()
        _clear_memos()
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        rerun = _result_hash(cells, engine.run(cells, label="damaged"))
        assert rerun == baseline
        # The damaged blob registered as a miss and was rebuilt.
        assert engine.last_report.stage1_misses >= 1
        rebuilt = store.get_bytes(key)
        assert rebuilt is not None and rebuilt != blob[: len(blob) // 2]

    def test_costs_persist_and_refine_across_runs(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "on")
        _clear_memos()
        store = ResultStore(tmp_path / "cache")
        engine = ParallelRunner(jobs=1, store=store, verbose=False)
        engine.run(_cells(), label="learn")
        model = CostModel.load(store)
        # The prelude's measured compute samples reached the store.
        assert model.samples > 0
        assert model.to_payload() != CostModel().to_payload()


class TestKnob:
    @pytest.mark.parametrize("value,expected", [
        ("on", True), ("", True), ("anything", True),
        ("off", False), ("0", False), ("none", False),
        ("false", False), ("no", False), ("OFF", False),
    ])
    def test_graph_enabled(self, value, expected, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", value)
        assert graph_enabled() is expected

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH", raising=False)
        assert graph_enabled() is True
