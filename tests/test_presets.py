"""Tests for the published feature-set presets and tuned configs."""

from repro.core.features import (
    AddressFeature,
    BiasFeature,
    InsertFeature,
    PCFeature,
)
from repro.core.presets import (
    TABLE_1A_SPECS,
    TABLE_1B_SPECS,
    multi_core_tuned_config,
    multi_programmed_config,
    single_thread_config,
    table_1a_features,
    table_1b_features,
    table_2_features,
)


class TestPublishedTables:
    def test_all_tables_have_sixteen_features(self):
        # The paper settled on 16 features per set (Section 5).
        assert len(table_1a_features()) == 16
        assert len(table_1b_features()) == 16
        assert len(table_2_features()) == 16

    def test_table_1a_duplicate_preserved(self):
        """pc(17,6,20,0,1) appears twice in Table 1(a) — the paper
        explains hill-climbing may duplicate a feature."""
        assert TABLE_1A_SPECS.count("pc(17,6,20,0,1)") == 2

    def test_shared_features_across_tables(self):
        """The two single-thread sets share elements (Section 5.4)."""
        shared = set(TABLE_1A_SPECS) & set(TABLE_1B_SPECS)
        assert "pc(17,6,20,0,1)" in shared
        assert "pc(7,14,43,11,0)" in shared
        assert "offset(15,1,6,1)" in shared

    def test_table_1a_has_no_plain_address_feature(self):
        """Section 5.4 observation 1: single-thread sets barely use
        address (it appears once, in set (b) only)."""
        families_a = [f.family for f in table_1a_features()]
        assert "address" not in families_a
        families_b = [f.family for f in table_1b_features()]
        assert families_b.count("address") == 1

    def test_table_2_has_four_address_features(self):
        """Section 5.4 observation 1: the multi-programmed set uses
        four instances of address."""
        families = [f.family for f in table_2_features()]
        assert families.count("address") == 4

    def test_table_2_has_no_insert_or_burst(self):
        """Section 5.4 observations 3 and 6."""
        families = [f.family for f in table_2_features()]
        assert "insert" not in families
        assert "burst" not in families

    def test_insert_prominent_in_single_thread_sets(self):
        families_a = [f.family for f in table_1a_features()]
        families_b = [f.family for f in table_1b_features()]
        assert families_a.count("insert") == 4
        assert families_b.count("insert") == 3

    def test_global_bias_counter_present(self):
        """Section 5.4 observation 5: bias without XOR in 1(a) and
        Table 2."""
        assert BiasFeature(16, False) in table_1a_features()
        assert BiasFeature(6, False) in table_2_features()


class TestConfigs:
    def test_single_thread_default_policy(self):
        assert single_thread_config("a").default_policy == "mdpp"
        assert single_thread_config("b").default_policy == "mdpp"

    def test_single_thread_tables_differ(self):
        assert single_thread_config("a").features != \
            single_thread_config("b").features

    def test_multi_programmed_uses_table2_over_srrip(self):
        config = multi_programmed_config()
        assert config.default_policy == "srrip"
        assert config.features == table_2_features()

    def test_tuned_multi_uses_table1a(self):
        """The documented substitution (EXPERIMENTS.md deviation #1)."""
        config = multi_core_tuned_config()
        assert config.default_policy == "srrip"
        assert config.features == table_1a_features()

    def test_tau0_below_theta(self):
        """The tuning invariant DESIGN.md records: bypass threshold
        must sit below the training threshold or bypass never fires."""
        for config in (single_thread_config("a"), single_thread_config("b"),
                       multi_core_tuned_config(), multi_programmed_config()):
            assert config.tau_bypass < config.theta

    def test_overrides_respected(self):
        config = single_thread_config("a", sampler_sets=32, theta=99)
        assert config.sampler_sets == 32
        assert config.theta == 99

    def test_specific_published_entries_parse_exactly(self):
        features = table_1b_features()
        assert PCFeature(15, False, begin=14, end=32, depth=6) in features
        assert AddressFeature(11, False, begin=8, end=19) in features
        assert InsertFeature(15, False) in features
