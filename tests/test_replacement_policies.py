"""Tests for LRU, random, tree-PLRU, MDPP, SRRIP/BRRIP/DRRIP, and Belady."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.access import AccessContext
from repro.cache.replacement.belady import NEVER, BeladyPolicy, compute_next_uses
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.mdpp import MDPPPolicy
from repro.cache.replacement.plru import PLRUTree, TreePLRUPolicy
from repro.cache.replacement.random_ import RandomPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, DRRIPPolicy, SRRIPPolicy
from repro.sim.llc import LLCAccess, LLCSimulator


def ctx(block=0, pc=0x400, stream_index=0):
    return AccessContext(pc=pc, address=block << 6, block=block, offset=0,
                         stream_index=stream_index)


def make_stream(blocks):
    return [
        LLCAccess(pc=0x400 + 4 * (b % 16), block=b, offset=0, is_write=False,
                  is_prefetch=False, mem_index=i, instr_index=4 * i)
        for i, b in enumerate(blocks)
    ]


def run_policy(policy_cls, blocks, sets=4, ways=4, **kwargs):
    policy = policy_cls(sets, ways, **kwargs)
    sim = LLCSimulator(sets * ways * 64, ways, policy)
    return sim.run(make_stream(blocks))


class TestLRUPolicy:
    def test_stack_order_after_fills(self):
        policy = LRUPolicy(1, 4)
        for way, block in enumerate([10, 20, 30]):
            policy.on_fill(0, way, ctx(block))
        assert policy.stack(0) == (2, 1, 0)

    def test_hit_promotes_to_mru(self):
        policy = LRUPolicy(1, 4)
        for way in range(3):
            policy.on_fill(0, way, ctx())
        policy.on_hit(0, 0, ctx())
        assert policy.stack(0) == (0, 2, 1)
        assert policy.is_mru(0, 0)

    def test_victim_is_stack_bottom(self):
        policy = LRUPolicy(1, 4)
        for way in range(4):
            policy.on_fill(0, way, ctx())
        assert policy.choose_victim(0, ctx()) == 0

    def test_position(self):
        policy = LRUPolicy(1, 4)
        for way in range(2):
            policy.on_fill(0, way, ctx())
        assert policy.position(0, 1) == 0
        assert policy.position(0, 0) == 1
        assert policy.position(0, 3) == -1

    def test_victim_on_empty_raises(self):
        policy = LRUPolicy(1, 4)
        with pytest.raises(RuntimeError):
            policy.choose_victim(0, ctx())

    def test_end_to_end_lru_semantics(self):
        # Working set of 4 in a 4-way set: second pass must fully hit.
        blocks = [0, 4, 8, 12] * 2  # all map to set 0 with 4 sets
        result = run_policy(LRUPolicy, blocks)
        assert result.stats.hits == 4
        assert result.stats.misses == 4

    def test_thrashes_on_cyclic_overflow(self):
        # Cyclic working set of 5 in a 4-way set: LRU hits nothing.
        blocks = [0, 4, 8, 12, 16] * 4
        result = run_policy(LRUPolicy, blocks)
        assert result.stats.hits == 0


class TestPLRUTree:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PLRUTree(6)

    def test_initial_victim_is_way_zero(self):
        assert PLRUTree(8).victim() == 0

    def test_promote_protects_way(self):
        tree = PLRUTree(8)
        tree.promote(0)
        assert tree.victim() != 0

    def test_place_at_last_position_makes_victim(self):
        tree = PLRUTree(16)
        for way in range(16):
            tree.promote(way)
        tree.place(5, 15)
        assert tree.victim() == 5

    def test_position_roundtrip(self):
        tree = PLRUTree(16)
        for position in range(16):
            tree.place(7, position)
            assert tree.position(7) == position

    def test_position_zero_is_mru(self):
        tree = PLRUTree(16)
        tree.promote(3)
        assert tree.position(3) == 0

    def test_place_rejects_out_of_range(self):
        tree = PLRUTree(8)
        with pytest.raises(ValueError):
            tree.place(0, 8)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=64))
    def test_victim_has_maximal_position(self, touches):
        """The victim is always the way at position ways-1."""
        tree = PLRUTree(16)
        for way in touches:
            tree.promote(way)
        victim = tree.victim()
        assert tree.position(victim) == 15

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=64))
    def test_plru_never_evicts_most_recent(self, touches):
        tree = PLRUTree(8)
        for way in touches:
            tree.promote(way)
        assert tree.victim() != touches[-1]


class TestTreePLRUPolicy:
    def test_full_loop_hits_like_lru(self):
        blocks = [0, 4, 8, 12] * 3
        result = run_policy(TreePLRUPolicy, blocks)
        assert result.stats.hits == 8

    def test_is_mru_after_fill(self):
        policy = TreePLRUPolicy(1, 8)
        policy.on_fill(0, 3, ctx())
        assert policy.is_mru(0, 3)


class TestMDPP:
    def test_insertion_position_honored(self):
        policy = MDPPPolicy(1, 16, insert_position=11, promote_position=1)
        policy.on_fill(0, 4, ctx())
        assert policy.position(0, 4) == 11

    def test_promotion_position_honored(self):
        policy = MDPPPolicy(1, 16, insert_position=11, promote_position=1)
        policy.on_fill(0, 4, ctx())
        policy.on_hit(0, 4, ctx())
        assert policy.position(0, 4) == 1

    def test_promotion_never_demotes(self):
        policy = MDPPPolicy(1, 16, insert_position=11, promote_position=5)
        policy.on_fill(0, 4, ctx())
        policy.place(0, 4, 0)
        policy.on_hit(0, 4, ctx())
        assert policy.position(0, 4) == 0

    def test_rejects_bad_positions(self):
        with pytest.raises(ValueError):
            MDPPPolicy(1, 16, insert_position=16)
        with pytest.raises(ValueError):
            MDPPPolicy(1, 16, promote_position=-1)

    def test_place_hook(self):
        policy = MDPPPolicy(1, 16)
        policy.place(0, 9, 13)
        assert policy.position(0, 9) == 13

    def test_scan_resistance_vs_lru(self):
        """Mid-stack insertion keeps a reused set alive through a scan."""
        hot = [0, 4, 8]                      # 3 hot blocks in set 0 (4 sets)
        scan = [4 * k for k in range(10, 60)]  # one-shot scan, same set
        blocks = hot * 5 + scan + hot * 5
        lru = run_policy(LRUPolicy, blocks, sets=4, ways=4)
        mdpp = run_policy(MDPPPolicy, blocks, sets=4, ways=4,
                          insert_position=3, promote_position=0)
        assert mdpp.stats.hits > lru.stats.hits


class TestSRRIP:
    def test_insert_long_not_mru(self):
        policy = SRRIPPolicy(1, 4)
        policy.on_fill(0, 0, ctx())
        assert policy.rrpvs[0][0] == 2
        assert not policy.is_mru(0, 0)

    def test_hit_promotes_to_zero(self):
        policy = SRRIPPolicy(1, 4)
        policy.on_fill(0, 0, ctx())
        policy.on_hit(0, 0, ctx())
        assert policy.rrpvs[0][0] == 0
        assert policy.is_mru(0, 0)

    def test_victim_prefers_distant(self):
        policy = SRRIPPolicy(1, 4)
        for way in range(4):
            policy.on_fill(0, way, ctx())
        policy.place(0, 2, 3)
        assert policy.choose_victim(0, ctx()) == 2

    def test_aging_when_no_distant_block(self):
        policy = SRRIPPolicy(1, 2)
        policy.on_fill(0, 0, ctx())
        policy.on_fill(0, 1, ctx())
        policy.on_hit(0, 0, ctx())
        policy.on_hit(0, 1, ctx())
        victim = policy.choose_victim(0, ctx())
        assert victim == 0  # both aged from 0 to 3 together; way 0 scanned first
        assert policy.rrpvs[0][1] == 3

    def test_place_rejects_out_of_range(self):
        policy = SRRIPPolicy(1, 4)
        with pytest.raises(ValueError):
            policy.place(0, 0, 4)

    def test_scan_resistance_vs_lru(self):
        # Short one-shot scans (fresh blocks each round) interleaved
        # with hot reuse: LRU loses the hot set to every scan, SRRIP
        # keeps it at RRPV 0 while scan blocks enter at 2 and die first.
        hot = [0, 4, 8]
        blocks = list(hot) * 5
        for round_idx in range(10):
            scan = [4 * (10 + 6 * round_idx + k) for k in range(6)]
            blocks += scan + hot * 3
        lru = run_policy(LRUPolicy, blocks, sets=4, ways=4)
        srrip = run_policy(SRRIPPolicy, blocks, sets=4, ways=4)
        assert srrip.stats.hits > lru.stats.hits


class TestBRRIPDRRIP:
    def test_brrip_mostly_inserts_distant(self):
        policy = BRRIPPolicy(1, 4)
        rrpvs = []
        for _ in range(200):
            policy.on_fill(0, 0, ctx())
            rrpvs.append(policy.rrpvs[0][0])
        distant = sum(1 for r in rrpvs if r == 3)
        assert distant > 150

    def test_drrip_psel_moves_toward_winner(self):
        policy = DRRIPPolicy(64, 4)
        start = policy._psel
        # Misses in SRRIP leader sets push PSEL up.
        for _ in range(50):
            policy.on_fill(0, 0, ctx())
        assert policy._psel > start

    def test_drrip_follower_uses_psel(self):
        policy = DRRIPPolicy(64, 4)
        policy._psel = 0  # strongly favors BRRIP
        rrpvs = set()
        for _ in range(100):
            policy.on_fill(5, 0, ctx())  # set 5 is a follower
            rrpvs.add(policy.rrpvs[5][0])
        assert 3 in rrpvs


class TestRandomPolicy:
    def test_victim_in_range(self):
        policy = RandomPolicy(1, 8)
        for _ in range(100):
            assert 0 <= policy.choose_victim(0, ctx()) < 8

    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=1)
        b = RandomPolicy(1, 8, seed=1)
        assert [a.choose_victim(0, ctx()) for _ in range(20)] == \
            [b.choose_victim(0, ctx()) for _ in range(20)]


class TestComputeNextUses:
    def test_basic(self):
        assert compute_next_uses([1, 2, 1]) == [2, NEVER, NEVER]

    def test_all_distinct(self):
        assert compute_next_uses([1, 2, 3]) == [NEVER] * 3

    def test_empty(self):
        assert compute_next_uses([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=50))
    def test_pointers_are_consistent(self, blocks):
        next_uses = compute_next_uses(blocks)
        for i, nxt in enumerate(next_uses):
            if nxt != NEVER:
                assert blocks[nxt] == blocks[i]
                assert nxt > i
                assert all(blocks[j] != blocks[i] for j in range(i + 1, nxt))


class TestBelady:
    def test_requires_prepare(self):
        policy = BeladyPolicy(1, 2)
        with pytest.raises(RuntimeError):
            policy.should_bypass(0, ctx(stream_index=0))

    def test_optimal_on_cyclic_pattern(self):
        # Cyclic working set of 5 over 4 ways: LRU gets 0 hits, MIN
        # keeps 3 blocks resident and hits 3 of every 5 accesses.
        blocks = [0, 4, 8, 12, 16] * 8
        lru = run_policy(LRUPolicy, blocks)
        minimum = run_policy(BeladyPolicy, blocks)
        assert lru.stats.hits == 0
        assert minimum.stats.hits >= 20

    def test_bypasses_never_reused_blocks(self):
        # A one-shot scan through a live working set: MIN must bypass
        # the scan blocks rather than evict live ones.
        hot = [0, 4, 8, 12]
        scan = [4 * k for k in range(10, 30)]
        blocks = hot * 2 + scan + hot
        result = run_policy(BeladyPolicy, blocks)
        assert result.stats.bypasses >= len(scan) - 4
        # All final hot accesses hit.
        assert result.outcomes[-4:] == [True] * 4

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=10, max_size=300))
    def test_min_never_worse_than_lru_or_srrip(self, raw_blocks):
        """The defining property: MIN's misses lower-bound online policies."""
        blocks = [b * 4 for b in raw_blocks]
        lru = run_policy(LRUPolicy, blocks)
        srrip = run_policy(SRRIPPolicy, blocks)
        minimum = run_policy(BeladyPolicy, blocks)
        assert minimum.stats.misses <= lru.stats.misses
        assert minimum.stats.misses <= srrip.stats.misses
