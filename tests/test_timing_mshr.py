"""Tests for the MSHR-occupancy and dependent-load timing extensions."""

import pytest

from repro.cpu.timing import TimingConfig, TimingModel


def simulate(events, instructions, **cfg):
    return TimingModel(TimingConfig(**cfg)).simulate(events, instructions)


class TestDependentLoads:
    def test_dependent_misses_serialize(self):
        # Two misses 4 instructions apart: independent they overlap,
        # dependent the second waits for the first to complete.
        independent = simulate([(0, 230, False), (4, 230, False)], 100)
        dependent = simulate([(0, 230, False), (4, 230, True)], 100)
        assert dependent.cycles >= independent.cycles + 200

    def test_chain_of_dependent_misses(self):
        # A pointer chase of 5 misses costs ~5 latencies.
        events = [(4 * i, 230, True) for i in range(5)]
        result = simulate(events, 100)
        assert result.cycles >= 5 * 230

    def test_dependent_hit_cheap(self):
        # Dependence on a fast L1 hit barely matters.
        events = [(0, 3, False), (4, 230, True)]
        result = simulate(events, 100)
        assert result.cycles < 300

    def test_two_tuple_events_still_accepted(self):
        # Backward-compatible event format without the depends flag.
        result = simulate([(0, 230), (4, 230)], 100)
        assert result.cycles < 300


class TestMSHRLimit:
    def test_more_mshrs_never_slower(self):
        events = [(i, 230, False) for i in range(0, 64, 2)]
        small = simulate(events, 200, mshr_limit=2)
        large = simulate(events, 200, mshr_limit=32)
        assert large.cycles <= small.cycles

    def test_single_mshr_serializes_misses(self):
        events = [(i, 230, False) for i in range(8)]
        result = simulate(events, 100, mshr_limit=1)
        assert result.cycles >= 8 * 230

    def test_hits_do_not_occupy_mshrs(self):
        # L1/L2 hits (latency below llc_latency) bypass the MSHR pool.
        hits = [(i, 12, False) for i in range(32)]
        result = simulate(hits, 200, mshr_limit=1)
        assert result.cycles < 100

    def test_rejects_zero_mshrs(self):
        with pytest.raises(ValueError):
            TimingConfig(mshr_limit=0)

    def test_completed_requests_release_mshrs(self):
        # Misses far apart in time reuse the same MSHR without penalty.
        events = [(i * 2000, 230, False) for i in range(4)]
        result = simulate(events, 10_000, mshr_limit=1)
        # Each miss completes long before the next dispatches, so the
        # single MSHR never stalls anything: the front end dominates.
        assert result.cycles == pytest.approx(10_000 / 4)
