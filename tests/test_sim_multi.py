"""Tests for the multi-programmed (shared-LLC) runner."""

import pytest

from repro.policies import policy_factory
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.multi import MultiProgrammedRunner, normalized_weighted_speedups
from repro.traces.mixes import generate_mixes
from repro.traces.workloads import all_segments

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=128, llc_ways=16)
LLC = SMALL.llc_bytes


@pytest.fixture(scope="module")
def mixes():
    segments = all_segments(LLC, accesses=2500,
                            names=["mcf", "lbm", "gamess", "soplex", "astar"])
    return generate_mixes(segments, count=3, seed=11)


@pytest.fixture(scope="module")
def runner():
    return MultiProgrammedRunner(SMALL, warmup_fraction=0.25)


class TestThreadData:
    def test_memoized(self, runner, mixes):
        segment = mixes[0].segments[0]
        assert runner.thread_data(segment) is runner.thread_data(segment)

    def test_single_ipc_positive(self, runner, mixes):
        data = runner.thread_data(mixes[0].segments[0])
        assert data.single_ipc > 0
        assert data.single_cycles > 0

    def test_timestamps_monotone(self, runner, mixes):
        data = runner.thread_data(mixes[0].segments[0])
        assert all(a <= b for a, b in zip(data.timestamps, data.timestamps[1:]))


class TestRunMix:
    def test_result_shape(self, runner, mixes):
        result = runner.run_mix(mixes[0], policy_factory("lru"))
        assert len(result.ipcs) == 4
        assert len(result.single_ipcs) == 4
        assert result.mpki >= 0
        assert result.weighted_speedup > 0

    def test_weighted_speedup_at_most_ncores(self, runner, mixes):
        # Sharing a cache can only hurt relative to standalone runs.
        result = runner.run_mix(mixes[0], policy_factory("lru"))
        assert result.weighted_speedup <= 4.0 + 1e-6

    def test_deterministic(self, runner, mixes):
        a = runner.run_mix(mixes[0], policy_factory("lru"))
        b = runner.run_mix(mixes[0], policy_factory("lru"))
        assert a == b

    def test_all_threads_contribute(self, runner, mixes):
        result = runner.run_mix(mixes[0], policy_factory("lru"))
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_mpppb_multiprogrammed_runs(self, runner, mixes):
        result = runner.run_mix(mixes[0], policy_factory("mpppb-mp"))
        assert result.weighted_speedup > 0


class TestNormalization:
    def test_lru_normalizes_to_one(self, runner, mixes):
        results = {
            "lru": [runner.run_mix(m, policy_factory("lru")) for m in mixes],
            "srrip": [runner.run_mix(m, policy_factory("srrip")) for m in mixes],
        }
        normalized = normalized_weighted_speedups(results, baseline="lru")
        assert all(v == pytest.approx(1.0) for v in normalized["lru"])
        assert len(normalized["srrip"]) == len(mixes)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_weighted_speedups({"srrip": []}, baseline="lru")

    def test_mismatched_counts_rejected(self, runner, mixes):
        results = {
            "lru": [runner.run_mix(m, policy_factory("lru")) for m in mixes],
            "srrip": [runner.run_mix(mixes[0], policy_factory("srrip"))],
        }
        with pytest.raises(ValueError):
            normalized_weighted_speedups(results, baseline="lru")
