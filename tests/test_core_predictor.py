"""Tests for weight tables, the multiperspective predictor, and sampler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.access import AccessContext
from repro.core.features import (
    BiasFeature,
    InsertFeature,
    OffsetFeature,
    PCFeature,
    parse_feature_set,
)
from repro.core.predictor import (
    CONFIDENCE_MAX,
    CONFIDENCE_MIN,
    MultiperspectivePredictor,
)
from repro.core.presets import TABLE_1A_SPECS, table_1b_features
from repro.core.sampler import MultiperspectiveSampler
from repro.core.tables import WEIGHT_MAX, WEIGHT_MIN, WeightTable, total_storage_bits


def ctx(pc=0x401000, block=0x1000, **kwargs):
    return AccessContext(pc=pc, address=block << 6, block=block, offset=0,
                         **kwargs)


class TestWeightTable:
    def test_starts_zeroed(self):
        table = WeightTable(4)
        assert table.weights == [0, 0, 0, 0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeightTable(0)

    def test_increment_saturates_at_31(self):
        table = WeightTable(1)
        for _ in range(100):
            table.increment(0)
        assert table.read(0) == WEIGHT_MAX == 31

    def test_decrement_saturates_at_minus_32(self):
        table = WeightTable(1)
        for _ in range(100):
            table.decrement(0)
        assert table.read(0) == WEIGHT_MIN == -32

    def test_reset(self):
        table = WeightTable(2)
        table.increment(1)
        table.reset()
        assert table.weights == [0, 0]

    def test_storage_bits(self):
        assert WeightTable(256).storage_bits() == 1536
        assert total_storage_bits([WeightTable(2), WeightTable(1)]) == 18

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=200))
    def test_weights_always_in_range(self, operations):
        table = WeightTable(4)
        for up, index in operations:
            (table.increment if up else table.decrement)(index)
        assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights)


class TestMultiperspectivePredictor:
    def _simple(self):
        return MultiperspectivePredictor([
            BiasFeature(16, False),
            InsertFeature(16, False),
            OffsetFeature(10, False, begin=0, end=5),
        ])

    def test_rejects_empty_features(self):
        with pytest.raises(ValueError):
            MultiperspectivePredictor([])

    def test_tables_sized_per_feature(self):
        predictor = self._simple()
        assert [len(t) for t in predictor.tables] == [1, 2, 64]

    def test_initial_prediction_is_zero(self):
        predictor = self._simple()
        assert predictor.predict(predictor.indices(ctx())) == 0

    def test_prediction_sums_weights(self):
        predictor = self._simple()
        indices = predictor.indices(ctx(is_insert=True))
        predictor.tables[0].weights[indices[0]] = 5
        predictor.tables[1].weights[indices[1]] = -2
        predictor.tables[2].weights[indices[2]] = 7
        assert predictor.predict(indices) == 10

    def test_confidence_saturates_to_9_bits(self):
        features = parse_feature_set(TABLE_1A_SPECS)
        predictor = MultiperspectivePredictor(features)
        sample = ctx()
        indices = predictor.indices(sample)
        for table, index in zip(predictor.tables, indices):
            table.weights[index] = WEIGHT_MAX
        assert predictor.predict(indices) == CONFIDENCE_MAX == 255
        for table, index in zip(predictor.tables, indices):
            table.weights[index] = WEIGHT_MIN
        assert predictor.predict(indices) == CONFIDENCE_MIN == -256

    def test_train_live_and_dead(self):
        predictor = self._simple()
        predictor.train_dead(0, 0)
        assert predictor.tables[0].read(0) == 1
        predictor.train_live(0, 0)
        assert predictor.tables[0].read(0) == 0

    def test_associativities_exposed(self):
        predictor = self._simple()
        assert predictor.associativities == (16, 16, 10)

    def test_reset(self):
        predictor = self._simple()
        predictor.train_dead(1, 1)
        predictor.reset()
        assert all(w == 0 for t in predictor.tables for w in t.weights)

    def test_storage_accounting_table_1b(self):
        """Sanity-check the Section 4.4 budget: tables are a few KB."""
        predictor = MultiperspectivePredictor(table_1b_features())
        kib = predictor.storage_bits() / 8 / 1024
        assert 1.0 < kib < 4.0   # the paper reports 2.64 KB for 1(b)


class TestMultiperspectiveSampler:
    def _setup(self, features=None, theta=40, ways=18, sampler_sets=4):
        predictor = MultiperspectivePredictor(features or [
            BiasFeature(16, False),
            InsertFeature(4, False),
            PCFeature(18, False, begin=0, end=9, depth=0),
        ])
        sampler = MultiperspectiveSampler(
            predictor, llc_sets=64, sampler_sets=sampler_sets,
            ways=ways, theta=theta)
        return predictor, sampler

    def _observe(self, sampler, set_idx, sample):
        indices = sampler.predictor.indices(sample)
        confidence = sampler.predictor.predict(indices)
        sampler.observe(set_idx, sample, indices, confidence)

    def test_unsampled_set_ignored(self):
        predictor, sampler = self._setup()
        self._observe(sampler, 1, ctx(block=5))  # set 1 is unsampled
        assert all(not entries for entries in sampler._sets)

    def test_insertion_fills_sampler(self):
        predictor, sampler = self._setup()
        self._observe(sampler, 0, ctx(block=5))
        assert len(sampler._sets[0]) == 1

    def test_reuse_trains_live_within_associativity(self):
        predictor, sampler = self._setup()
        sample = ctx(block=5, pc=0x400)
        self._observe(sampler, 0, sample)
        self._observe(sampler, 0, sample)  # immediate reuse at position 0
        # All three features have A > 0, so all train live (decrement).
        assert all(any(w < 0 for w in t.weights) for t in predictor.tables)
        assert sampler.trainings_live == 3

    def test_reuse_beyond_feature_associativity_not_trained_live(self):
        # insert has A=4: a reuse at position >= 4 must not train it.
        predictor, sampler = self._setup()
        target = ctx(block=99, pc=0x500)
        self._observe(sampler, 0, target)
        for filler in range(5):  # demote target to position 5
            self._observe(sampler, 0, ctx(block=200 + filler, pc=0x600))
        live_before = sampler.trainings_live
        self._observe(sampler, 0, target)  # reuse at position 5
        # bias (A=16) and pc (A=18) train live; insert (A=4) must not.
        assert sampler.trainings_live == live_before + 2

    def test_demotion_past_associativity_trains_dead(self):
        # insert has A=4; pushing a block from position 3 to 4 trains it dead.
        predictor, sampler = self._setup()
        self._observe(sampler, 0, ctx(block=1, pc=0x700, is_insert=True))
        dead_before = sampler.trainings_dead
        for filler in range(4):
            self._observe(sampler, 0, ctx(block=50 + filler, pc=0x710))
        assert sampler.trainings_dead > dead_before
        # The insert table's "1" weight took the dead increments.
        insert_table = predictor.tables[1]
        assert insert_table.read(1) > 0

    def test_eviction_equals_demotion_to_ways(self):
        predictor, sampler = self._setup(ways=4, features=[
            BiasFeature(4, False)])  # A == sampler ways
        dead_before = sampler.trainings_dead
        for block in range(5):  # fifth insertion evicts the first
            self._observe(sampler, 0, ctx(block=block, pc=0x720))
        assert sampler.trainings_dead == dead_before + 1
        assert len(sampler._sets[0]) == 4

    def test_theta_gates_confident_correct_predictions(self):
        predictor, sampler = self._setup(theta=5)
        # Saturate the bias weight to "dead" far beyond theta.
        predictor.tables[0].weights[0] = 31
        predictor.tables[1].weights[0] = 31
        predictor.tables[1].weights[1] = 31
        pc_table = predictor.tables[2]
        for i in range(len(pc_table)):
            pc_table.weights[i] = 31
        snapshot = [list(t.weights) for t in predictor.tables]
        # Stream of dead blocks, confidently predicted dead: no training.
        for block in range(30):
            self._observe(sampler, 0, ctx(block=1000 + block, pc=0x730))
        assert [list(t.weights) for t in predictor.tables] == snapshot

    def test_occupancy_capped_at_ways(self):
        predictor, sampler = self._setup(ways=6)
        for block in range(50):
            self._observe(sampler, 0, ctx(block=block))
        assert len(sampler._sets[0]) == 6

    def test_lru_order_maintained(self):
        predictor, sampler = self._setup()
        a, b = ctx(block=1), ctx(block=2)
        self._observe(sampler, 0, a)
        self._observe(sampler, 0, b)
        self._observe(sampler, 0, a)  # a back to MRU
        from repro.predictors.base import partial_tag
        tags = [e.tag for e in sampler._sets[0]]
        assert tags == [partial_tag(1), partial_tag(2)]

    def test_storage_bits_positive(self):
        predictor, sampler = self._setup()
        assert sampler.storage_bits() > 0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300))
    def test_weights_bounded_under_random_traffic(self, blocks):
        predictor, sampler = self._setup()
        for i, block in enumerate(blocks):
            sample = ctx(block=block, pc=0x400 + 4 * (block % 7))
            self._observe(sampler, 0, sample)
        for table in predictor.tables:
            assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights)
