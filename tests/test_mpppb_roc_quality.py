"""Accuracy-ordering tests on a realistic workload (mini Figure 8).

The paper's central accuracy claim is that the multiperspective
predictor beats SDBP and Perceptron in the operating region of the
bypass optimization.  The bench harness verifies this over the full
suite; here a single mixed workload checks the ordering holds at unit
test scale, keeping the claim protected by the fast suite too.
"""

import pytest

from repro.core.presets import single_thread_config
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.sdbp import SDBPPredictor
from repro.sim.hierarchy import HierarchyConfig, UpperLevels
from repro.sim.roc import TrainedMultiperspective, measure_roc
from repro.traces.workloads import build_segments
from repro.util.stats import auc

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=128, llc_ways=16)


@pytest.fixture(scope="module")
def llc_inputs():
    segment = build_segments("sphinx3", SMALL.llc_bytes, accesses=25_000)[0]
    upper = UpperLevels(SMALL).run(segment.trace)
    return upper.llc_stream, segment.trace.pcs


def roc_auc(predictor, llc_inputs):
    stream, pcs = llc_inputs
    result = measure_roc(predictor, stream, pcs, SMALL.llc_bytes,
                         SMALL.llc_ways, warmup=len(stream) // 4)
    return auc(result.curve(result.default_thresholds(49)))


@pytest.fixture(scope="module")
def aucs(llc_inputs):
    num_sets = SMALL.llc_bytes // (SMALL.llc_ways * 64)
    return {
        "sdbp": roc_auc(SDBPPredictor(num_sets, sampler_sets=32), llc_inputs),
        "perceptron": roc_auc(
            PerceptronPredictor(num_sets, sampler_sets=32), llc_inputs),
        "multiperspective": roc_auc(
            TrainedMultiperspective(
                single_thread_config("a", sampler_sets=32),
                llc_sets=num_sets),
            llc_inputs),
    }


class TestAccuracyOrdering:
    def test_all_predictors_beat_chance(self, aucs):
        for name, value in aucs.items():
            assert value > 0.55, f"{name} AUC {value:.3f}"

    def test_multiperspective_at_least_competitive(self, aucs):
        # The paper's Figure 8: multiperspective matches or beats the
        # single-perspective baselines (small slack for one workload).
        assert aucs["multiperspective"] >= aucs["sdbp"] - 0.05
        assert aucs["multiperspective"] >= aucs["perceptron"] - 0.05

    def test_multiperspective_strong_in_absolute_terms(self, aucs):
        assert aucs["multiperspective"] > 0.7
