"""Edge-case tests for the multi-programmed interleaver."""

from repro.policies import policy_factory
from repro.sim.hierarchy import HierarchyConfig
from repro.sim.multi import MultiProgrammedRunner
from repro.traces.mixes import Mix
from repro.traces.trace import Segment, Trace
from repro.traces.workloads import build_segments

SMALL = HierarchyConfig(l1_kib=4, l1_ways=4, l2_kib=16, l2_ways=8,
                        llc_kib=128, llc_ways=16)


def tiny_segment(name, blocks, pc=0x400):
    trace = Trace.from_accesses(
        name, [(pc + 4 * (i % 4), 64 * b, False, 2) for i, b in enumerate(blocks)]
    )
    return Segment(name, trace, 1.0)


class TestInterleaverEdgeCases:
    def test_thread_with_all_l1_hits_contributes_no_llc_traffic(self):
        # One thread's working set fits entirely in L1: its LLC stream
        # is (nearly) empty, and the mix must still complete.
        runner = MultiProgrammedRunner(SMALL, warmup_fraction=0.1)
        l1_resident = tiny_segment("tiny_hot", [0, 1] * 500)
        others = [
            tiny_segment(f"s{i}", list(range(i * 1000, i * 1000 + 400)) * 2)
            for i in range(3)
        ]
        mix = Mix("m", (l1_resident, *others))
        result = runner.run_mix(mix, policy_factory("lru"))
        assert len(result.ipcs) == 4
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_threads_of_unequal_length_all_measured(self):
        runner = MultiProgrammedRunner(SMALL, warmup_fraction=0.1)
        short = tiny_segment("short", list(range(100)))
        long_segments = [
            tiny_segment(f"l{i}", list(range(2000 + i * 500, 3200 + i * 500)))
            for i in range(3)
        ]
        mix = Mix("m", (short, *long_segments))
        result = runner.run_mix(mix, policy_factory("lru"))
        # The short thread restarts (FIESTA style) until the others
        # finish; every thread reports an IPC.
        assert all(ipc > 0 for ipc in result.ipcs)

    def test_same_segment_name_reuses_cached_thread_data(self):
        runner = MultiProgrammedRunner(SMALL, warmup_fraction=0.1)
        segments = build_segments("gamess", SMALL.llc_bytes, accesses=1500)
        first = runner.thread_data(segments[0])
        second = runner.thread_data(segments[0])
        assert first is second

    def test_interleaving_orders_by_timestamp(self):
        runner = MultiProgrammedRunner(SMALL, warmup_fraction=0.1)
        segs = tuple(
            tiny_segment(f"t{i}", list(range(1000 * i, 1000 * i + 300)))
            for i in range(4)
        )
        threads = [runner.thread_data(s) for s in segs]
        merged, origins, merged_pcs, offsets = runner._interleave(threads)
        # Lap-0 entries of each thread appear in local order.
        last_local = {}
        for thread_idx, local_idx, lap in origins:
            if lap == 0:
                assert local_idx >= last_local.get(thread_idx, -1)
                last_local[thread_idx] = local_idx
        # Every thread's full lap-0 stream is present.
        for idx, thread in enumerate(threads):
            lap0 = sum(1 for t, _, lap in origins if t == idx and lap == 0)
            assert lap0 == len(thread.upper.llc_stream)
