"""Tests for the measure-only ROC harness (Section 6.3)."""

import pytest

from repro.core.presets import single_thread_config
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.sdbp import SDBPPredictor
from repro.sim.llc import LLCAccess
from repro.sim.roc import RocResult, TrainedMultiperspective, measure_roc
from repro.util.stats import auc

SETS, WAYS = 16, 4
CAPACITY = SETS * WAYS * 64


def stream(blocks, pcs):
    return [
        LLCAccess(pc=pcs[i], block=b, offset=0, is_write=False,
                  is_prefetch=False, mem_index=i, instr_index=4 * i)
        for i, b in enumerate(blocks)
    ]


def hot_cold_workload(rounds=300):
    """Hot loop (always reused) + cold stream (never reused).

    Three hot blocks plus one cold block per round share a 4-way set,
    so the hot blocks survive (live labels) while every cold block is
    evicted without reuse (dead labels).
    """
    blocks, pcs = [], []
    cold = 10_000
    for _ in range(rounds):
        for k in range(3):
            blocks.append(k * SETS)       # hot: 3 blocks, set 0
            pcs.append(0x500 + 4 * k)
        blocks.append(cold * SETS)        # cold: one-shot, set 0
        pcs.append(0x900)
        cold += 1
    return stream(blocks, pcs), pcs


class TestMeasureRoc:
    def _roc(self, predictor):
        llc_stream, pcs = hot_cold_workload()
        return measure_roc(predictor, llc_stream, pcs, CAPACITY, WAYS,
                           warmup=len(llc_stream) // 3)

    def test_lengths_match(self):
        result = self._roc(SDBPPredictor(SETS, sampler_sets=8, sampler_ways=4))
        assert len(result.confidences) == len(result.labels)
        assert len(result.confidences) > 0

    def test_labels_contain_both_classes(self):
        result = self._roc(SDBPPredictor(SETS, sampler_sets=8, sampler_ways=4))
        assert any(result.labels) and not all(result.labels)

    @pytest.mark.parametrize("make", [
        lambda: SDBPPredictor(SETS, sampler_sets=8, sampler_ways=4),
        lambda: PerceptronPredictor(SETS, sampler_sets=8, sampler_ways=4,
                                    theta=20),
        lambda: TrainedMultiperspective(
            single_thread_config("a", sampler_sets=8), llc_sets=SETS),
    ])
    def test_predictors_beat_coin_flip(self, make):
        """On a separable workload every predictor's AUC must beat 0.5."""
        result = self._roc(make())
        points = result.curve(result.default_thresholds(33))
        assert auc(points) > 0.6, f"{result.predictor_name} AUC too low"

    def test_multiperspective_auc_strong(self):
        result = self._roc(TrainedMultiperspective(
            single_thread_config("a", sampler_sets=8), llc_sets=SETS))
        points = result.curve(result.default_thresholds(33))
        assert auc(points) > 0.8

    def test_curve_rates_monotone(self):
        result = self._roc(SDBPPredictor(SETS, sampler_sets=8, sampler_ways=4))
        points = result.curve(result.default_thresholds(21))
        fprs = [p.false_positive_rate for p in points]
        tprs = [p.true_positive_rate for p in points]
        assert fprs == sorted(fprs, reverse=True)
        assert tprs == sorted(tprs, reverse=True)

    def test_default_thresholds_span_confidences(self):
        result = self._roc(SDBPPredictor(SETS, sampler_sets=8, sampler_ways=4))
        thresholds = result.default_thresholds(11)
        assert thresholds[0] < min(result.confidences)
        assert thresholds[-1] > max(result.confidences)

    def test_empty_result_thresholds(self):
        result = RocResult("x", (), ())
        assert result.default_thresholds() == [0.0]
