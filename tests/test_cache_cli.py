"""Tests for the ``cache`` maintenance subcommand."""

import pytest

from repro.cli import _format_bytes, _parse_size, build_parser, main
from repro.exec.artifacts import pack_artifact
from repro.exec.store import ResultStore


def _key(index: int) -> str:
    return f"{index:064x}"


def _seed(root, results=3, artifacts=2, kind="stage1"):
    """Populate a store with result and artifact blobs; returns it."""
    store = ResultStore(root)
    for i in range(results):
        store.put(_key(i), {"kind": "cell", "result": {"index": i}})
    blob = pack_artifact(kind, {"accesses": 8},
                         [("tags", "q", list(range(64)))])
    for i in range(artifacts):
        store.put_bytes(_key(100 + i), blob)
    return store


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("512", 512),
        ("2k", 2048),
        ("2K", 2048),
        ("1.5M", int(1.5 * 1024 ** 2)),
        ("1G", 1024 ** 3),
        ("500KB", 500 * 1024),
    ])
    def test_suffixes(self, text, expected):
        assert _parse_size(text) == expected

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            _parse_size("lots")

    def test_format_roundtrip_units(self):
        assert _format_bytes(512) == "512 B"
        assert _format_bytes(2048) == "2.0 KiB"
        assert "MiB" in _format_bytes(3 * 1024 ** 2)


class TestParser:
    def test_cache_arguments(self):
        args = build_parser().parse_args(
            ["cache", "gc", "--max-entries", "4", "--max-bytes", "1M"])
        assert args.action == "gc"
        assert args.max_entries == 4
        assert args.max_bytes == "1M"

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "defrag"])


class TestCacheCli:
    def test_stats_empty_store(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 blobs" in out
        assert "no recorded telemetry" in out

    def test_stats_reports_kind_breakdown(self, tmp_path, capsys):
        _seed(tmp_path, results=2, artifacts=3, kind="trace")
        code = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "5 blobs" in out
        assert "trace" in out
        assert "results: 2" in out

    def test_gc_without_target_errors(self, tmp_path, capsys):
        code = main(["cache", "gc", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "needs --max-entries" in capsys.readouterr().err

    def test_gc_to_entry_target(self, tmp_path, capsys):
        store = _seed(tmp_path, results=4, artifacts=2)
        code = main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-entries", "2"])
        assert code == 0
        assert "remain" in capsys.readouterr().out
        assert store.usage()["entries"] == 2

    def test_gc_to_byte_target_with_suffix(self, tmp_path):
        store = _seed(tmp_path, results=8, artifacts=4)
        code = main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "1K"])
        assert code == 0
        assert store.usage()["bytes"] <= 1024

    def test_clear_removes_everything(self, tmp_path, capsys):
        store = _seed(tmp_path)
        code = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "cleared 5 blobs" in capsys.readouterr().out
        assert store.usage()["entries"] == 0

    def test_disabled_cache_errors(self, capsys):
        code = main(["cache", "stats", "--cache-dir", "off"])
        assert code == 2
        assert "cache maintenance needs" in capsys.readouterr().err

    def test_stats_aggregates_recorded_counters(self, tmp_path, capsys):
        """A --telemetry run leaves counter events the stats view sums."""
        # Two benchmarks: manifests (and the event log beside them)
        # are only written for batches of at least two cells.
        code = main(["compare", "--benchmarks", "gamess", "soplex",
                     "--policies", "lru", "--scale", "tiny",
                     "--telemetry", "--cache-dir", str(tmp_path)])
        assert code == 0
        capsys.readouterr()
        code = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters over" in out
        assert "exec/" in out
