"""Tests for the holdout (SPEC CPU 2017 analog) suite and ShuffledLoop."""

import random

import pytest

from repro.traces.holdout import (
    build_holdout_segments,
    build_holdout_suite,
    holdout_names,
)
from repro.traces.synth import ShuffledLoop
from repro.traces.workloads import benchmark_names, build_segments

LLC = 512 * 1024


class TestShuffledLoop:
    def _take(self, kernel, n, seed=1):
        stream = kernel(random.Random(seed))
        return [next(stream) for _ in range(n)]

    def test_covers_whole_loop(self):
        kernel = ShuffledLoop(base=0, size=64 * 64, touches_per_block=1)
        records = self._take(kernel, 64)
        blocks = {rec[1] >> 6 for rec in records}
        assert len(blocks) == 64

    def test_same_order_every_pass(self):
        kernel = ShuffledLoop(base=0, size=32 * 64, touches_per_block=1)
        records = self._take(kernel, 64)
        first = [rec[1] >> 6 for rec in records[:32]]
        second = [rec[1] >> 6 for rec in records[32:]]
        assert first == second

    def test_order_is_shuffled(self):
        kernel = ShuffledLoop(base=0, size=256 * 64, touches_per_block=1)
        records = self._take(kernel, 256)
        blocks = [rec[1] >> 6 for rec in records]
        deltas = [b - a for a, b in zip(blocks, blocks[1:])]
        sequential = sum(1 for d in deltas if d == 1)
        assert sequential < 32  # a stream prefetcher cannot latch on

    def test_addresses_stay_in_region(self):
        kernel = ShuffledLoop(base=0x1000, size=16 * 64)
        for rec in self._take(kernel, 200):
            assert 0x1000 <= rec[1] < 0x1000 + 16 * 64

    def test_deterministic_across_rngs_with_same_seed(self):
        kernel = ShuffledLoop(base=0, size=32 * 64)
        assert self._take(kernel, 50, seed=9) == self._take(kernel, 50, seed=9)


class TestHoldoutSuite:
    def test_names_disjoint_from_main_suite(self):
        assert not set(holdout_names()) & set(benchmark_names())

    def test_has_twelve_benchmarks(self):
        assert len(holdout_names()) == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_holdout_segments("nope", LLC, 100)

    def test_segments_materialize(self):
        segments = build_holdout_segments("mcf_17", LLC, accesses=500)
        assert len(segments) == 1
        assert len(segments[0].trace) == 500

    def test_deterministic(self):
        a = build_holdout_segments("gcc_17", LLC, 300)[0].trace
        b = build_holdout_segments("gcc_17", LLC, 300)[0].trace
        assert a.addresses == b.addresses

    def test_address_space_disjoint_from_main_suite(self):
        holdout = build_holdout_segments("mcf_17", LLC, 300)[0].trace
        main = build_segments("mcf", LLC, 300)[0].trace
        holdout_regions = {a >> 40 for a in holdout.addresses}
        main_regions = {a >> 40 for a in main.addresses}
        assert not holdout_regions & main_regions

    def test_build_suite_subset(self):
        suite = build_holdout_suite(LLC, 200, names=["lbm_17", "xz_17"])
        assert set(suite) == {"lbm_17", "xz_17"}

    def test_streaming_holdout_exceeds_llc(self):
        trace = build_holdout_segments("lbm_17", LLC, 20_000)[0].trace
        footprint = len({a >> 6 for a in trace.addresses}) * 64
        assert footprint > LLC
