"""Tests for the ``repro.obs`` observability layer.

Unit-level coverage of spans, metrics, and the JSONL event sink, plus
the engine-level contracts: serial and parallel drives emit the same
per-cell span sets, events land beside the run manifest, and the
disabled path stays a no-op.
"""

import json
import threading

import pytest

from repro import obs
from repro.config import TINY
from repro.exec import ParallelRunner, SingleCell, TraceSpec
from repro.exec.store import ResultStore
from repro.obs.events import (
    EVENT_SCHEMA,
    events_path,
    list_event_logs,
    read_events,
    write_events,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_counters,
    merge_hists,
)
from repro.obs.spans import NULL_SPAN, SpanCollector

ACCESSES = 1_500


@pytest.fixture(autouse=True)
def telemetry_off_after():
    """The obs switch is process-global: never leak it between tests."""
    yield
    obs.disable()


def _cells():
    return [
        SingleCell(
            trace=TraceSpec(name, TINY.hierarchy.llc_bytes, ACCESSES),
            policy=policy,
            hierarchy=TINY.hierarchy,
            warmup_fraction=TINY.warmup_fraction,
        )
        for policy in ("lru", "mpppb-1a")
        for name in ("gamess", "soplex")
    ]


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        from repro.obs.spans import Span

        collector = SpanCollector()
        with Span(collector, "outer"):
            with Span(collector, "inner"):
                pass
        paths = [r.path for r in collector.snapshot()]
        assert paths == ["outer/inner", "outer"]  # inner closes first

    def test_sibling_spans_share_parent(self):
        from repro.obs.spans import Span

        collector = SpanCollector()
        with Span(collector, "cell"):
            with Span(collector, "stage1"):
                pass
            with Span(collector, "stage2"):
                pass
        assert [r.path for r in collector.snapshot()] == [
            "cell/stage1", "cell/stage2", "cell"]

    def test_durations_nonnegative_and_nested_fit(self):
        from repro.obs.spans import Span

        collector = SpanCollector()
        with Span(collector, "outer"):
            with Span(collector, "inner"):
                pass
        inner, outer = collector.snapshot()
        assert inner.dur_s >= 0.0
        assert outer.dur_s >= inner.dur_s

    def test_threads_keep_separate_stacks(self):
        from repro.obs.spans import Span

        collector = SpanCollector()

        def worker():
            with Span(collector, "thread-root"):
                pass

        with Span(collector, "main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        paths = {r.path for r in collector.snapshot()}
        # The thread's span must not nest under the main thread's.
        assert paths == {"thread-root", "main-root"}

    def test_drain_cursor_yields_each_record_once(self):
        from repro.obs.spans import Span

        collector = SpanCollector()
        with Span(collector, "a"):
            pass
        assert [r.name for r in collector.drain_new()] == ["a"]
        assert collector.drain_new() == []
        with Span(collector, "b"):
            pass
        assert [r.name for r in collector.drain_new()] == ["b"]
        # snapshot is unaffected by draining
        assert [r.name for r in collector.snapshot()] == ["a", "b"]


class TestHistogram:
    def test_bucket_edges(self):
        hist = Histogram([0, 10])
        for value, bucket in ((-5, 0), (0, 0), (1, 1), (10, 1), (11, 2)):
            before = list(hist.counts)
            hist.observe(value)
            changed = [i for i, (a, b) in
                       enumerate(zip(before, hist.counts)) if a != b]
            assert changed == [bucket], f"value {value}"
        assert hist.count == 5
        assert hist.min == -5 and hist.max == 11

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([3, 1, 2])

    def test_roundtrip_and_merge(self):
        a = Histogram([0, 10])
        b = Histogram([0, 10])
        for v in (-1, 5):
            a.observe(v)
        for v in (7, 20):
            b.observe(v)
        a.merge(b.to_dict())
        assert a.count == 4
        assert a.counts == [1, 2, 1]
        assert a.min == -1 and a.max == 20
        assert a.mean == pytest.approx((-1 + 5 + 7 + 20) / 4)
        again = Histogram.from_dict(a.to_dict())
        assert again.to_dict() == a.to_dict()

    def test_merge_ignores_mismatched_bounds(self):
        a = Histogram([0, 10])
        a.observe(5)
        other = Histogram([0, 100])
        other.observe(50)
        a.merge(other.to_dict())  # silently ignored, never raises
        assert a.count == 1


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.payload()["counters"] == {"x": 5}

    def test_histogram_get_or_create(self):
        reg = MetricsRegistry()
        first = reg.histogram("h", [0, 1])
        second = reg.histogram("h", [5, 6])  # first bounds win
        assert first is second
        assert first.bounds == [0, 1]

    def test_merge_helpers(self):
        totals = {}
        merge_counters(totals, {"a": 1, "b": 2})
        merge_counters(totals, {"a": 3})
        assert totals == {"a": 4, "b": 2}
        hists = {}
        payload = MetricsRegistry()
        payload.histogram("h", [0]).observe(1)
        shipped = payload.payload()["hists"]
        merge_hists(hists, shipped)
        merge_hists(hists, shipped)
        assert hists["h"].count == 2


class TestSwitchboard:
    def test_disabled_is_noop(self):
        obs.disable()
        assert not obs.enabled()
        assert obs.span("anything") is NULL_SPAN
        obs.inc("nope")  # no context, no error
        assert obs.histogram("nope", [0]) is None
        with obs.capture() as ctx:
            assert ctx is None

    def test_enabled_records(self):
        ctx = obs.enable()
        assert obs.enabled()
        with obs.span("outer"):
            obs.inc("n", 2)
            obs.histogram("h", [0]).observe(1)
        payload = ctx.payload()
        assert payload["counters"] == {"n": 2}
        assert payload["hists"]["h"]["count"] == 1
        assert [s["path"] for s in payload["spans"]] == ["outer"]

    def test_capture_isolates_and_restores(self):
        outer = obs.enable()
        with obs.span("drive"):
            with obs.capture() as inner:
                assert inner is not outer
                assert obs.current() is inner
                with obs.span("cell"):
                    pass
        assert obs.current() is outer
        # The cell span belongs to the inner context only, and the
        # inner context never saw the outer's ancestry.
        assert [s["path"] for s in inner.payload()["spans"]] == ["cell"]
        assert [s["path"] for s in outer.payload()["spans"]] == ["drive"]

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("on", True), ("TRUE", True), ("yes", True),
        ("", False), ("0", False), ("off", False),
    ])
    def test_telemetry_default_env(self, value, expected, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert obs.telemetry_default() is expected


class TestEventSink:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "runs" / "abc.events.jsonl"
        events = [{"type": "run", "schema": EVENT_SCHEMA, "run_id": "abc"},
                  {"type": "counter", "cell": None, "name": "x", "value": 1}]
        assert write_events(path, events) == path
        assert read_events(path) == events

    def test_reader_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "x.events.jsonl"
        path.write_text('{"type":"counter","name":"ok","value":1}\n'
                        "not json\n"
                        "[1,2,3]\n")
        assert [e["name"] for e in read_events(path)] == ["ok"]

    def test_reader_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "x.events.jsonl"
        path.write_text(json.dumps(
            {"type": "run", "schema": EVENT_SCHEMA + 999}) + "\n")
        assert read_events(path) == []

    def test_read_missing_file(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []

    def test_list_event_logs(self, tmp_path):
        assert list(list_event_logs(tmp_path)) == []
        write_events(events_path(tmp_path, "aa"), [{"type": "run"}])
        write_events(events_path(tmp_path, "bb"), [{"type": "run"}])
        listed = dict(list_event_logs(tmp_path))
        assert set(listed) == {"aa", "bb"}


class TestEngineTelemetry:
    def _run(self, tmp_path, jobs):
        store = ResultStore(tmp_path / f"cache-{jobs}")
        engine = ParallelRunner(jobs=jobs, store=store, verbose=False)
        engine.run(_cells(), label="obs-test")
        return engine

    def test_no_events_when_disabled(self, tmp_path):
        obs.disable()
        engine = self._run(tmp_path, 1)
        assert engine.last_events_path is None

    def test_events_written_beside_manifest(self, tmp_path):
        obs.enable()
        engine = self._run(tmp_path, 1)
        path = engine.last_events_path
        assert path is not None and path.exists()
        assert path.parent == engine.last_manifest.path.parent
        events = read_events(path)
        assert events[0]["type"] == "run"
        assert events[0]["cells"] == len(_cells())

    def test_span_coverage_and_metrics(self, tmp_path):
        obs.enable()
        engine = self._run(tmp_path, 1)
        events = read_events(engine.last_events_path)
        wall = events[0]["wall_s"]
        [drive] = [e for e in events
                   if e["type"] == "span" and e["path"] == "drive"]
        assert drive["cell"] is None
        assert drive["dur_s"] >= 0.9 * wall
        counters = {e["name"]: e["value"] for e in events
                    if e["type"] == "counter" and e["cell"] is None}
        assert counters["exec/cells"] == len(_cells())
        per_cell = {e["name"] for e in events
                    if e["type"] == "counter" and e["cell"] is not None}
        assert {"llc/accesses", "llc/hits", "llc/misses",
                "llc/evictions"} <= per_cell
        hists = [e for e in events if e["type"] == "hist"]
        assert any(e["name"] == "mpppb/confidence" and e["count"] > 0
                   for e in hists)

    def test_serial_and_parallel_span_sets_match(self, tmp_path):
        obs.enable()
        serial = self._run(tmp_path, 1)
        parallel = self._run(tmp_path, 2)

        def span_set(engine):
            return sorted(
                (e["cell"] or "", e["path"])
                for e in read_events(engine.last_events_path)
                if e["type"] == "span"
            )

        assert span_set(serial) == span_set(parallel)

    def test_warm_run_still_covers_cells(self, tmp_path):
        obs.enable()
        cold = self._run(tmp_path, 1)
        store = ResultStore(tmp_path / "cache-1")
        warm_engine = ParallelRunner(jobs=1, store=store, verbose=False)
        warm_engine.run(_cells(), label="obs-test")
        warm = read_events(warm_engine.last_events_path)
        # Cache hits skip compute, so no per-cell spans — but the run
        # event and drive span must still be there, and the hit total
        # must land in the run counters.
        counters = {e["name"]: e["value"] for e in warm
                    if e["type"] == "counter" and e["cell"] is None}
        assert counters["exec/result-cache-hits"] == len(_cells())
        # Same cells + label = same run identity: the warm drive
        # rewrote the cold run's log in place.
        assert warm_engine.last_events_path == cold.last_events_path
