"""Cross-module property-based tests (hypothesis).

Each property pins an invariant of the system rather than a single
behavior: replacement-policy state machines never corrupt, predictors
never leave their numeric ranges, and the cache never reports
impossible statistics — for *any* access sequence.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.access import AccessContext
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.replacement.mdpp import MDPPPolicy
from repro.cache.replacement.srrip import SRRIPPolicy
from repro.core.features import random_feature_set
from repro.core.mpppb import MPPPBConfig, MPPPBPolicy
from repro.core.predictor import (
    CONFIDENCE_MAX,
    CONFIDENCE_MIN,
    MultiperspectivePredictor,
)
from repro.core.tables import WEIGHT_MAX, WEIGHT_MIN
from repro.policies import make_policy
from repro.sim.llc import LLCAccess, LLCSimulator

SETS, WAYS = 4, 4
CAPACITY = SETS * WAYS * 64

block_lists = st.lists(st.integers(min_value=0, max_value=63),
                       min_size=1, max_size=250)


def make_stream(blocks):
    return [
        LLCAccess(pc=0x400 + 4 * (b % 8), block=b, offset=8 * (b % 8),
                  is_write=bool(b % 5 == 0), is_prefetch=False,
                  mem_index=i, instr_index=3 * i)
        for i, b in enumerate(blocks)
    ]


class TestCacheOccupancyProperties:
    @settings(max_examples=25, deadline=None)
    @given(block_lists)
    def test_resident_blocks_unique_per_set(self, blocks):
        sim = LLCSimulator(CAPACITY, WAYS, LRUPolicy(SETS, WAYS))
        sim.run(make_stream(blocks))
        for set_idx in range(SETS):
            tags = [t for _, t in sim.cache.resident_blocks(set_idx)]
            assert len(tags) == len(set(tags))
            assert all(t & (SETS - 1) == set_idx for t in tags)

    @settings(max_examples=25, deadline=None)
    @given(block_lists)
    def test_second_access_to_resident_block_hits(self, blocks):
        """Immediately repeating an access always hits (no bypass)."""
        doubled = [b for block in blocks for b in (block, block)]
        sim = LLCSimulator(CAPACITY, WAYS, LRUPolicy(SETS, WAYS))
        outcomes = sim.run(make_stream(doubled)).outcomes
        assert all(outcomes[i] for i in range(1, len(outcomes), 2))


class TestPolicyStateProperties:
    @settings(max_examples=25, deadline=None)
    @given(block_lists)
    def test_srrip_rrpvs_stay_in_range(self, blocks):
        policy = SRRIPPolicy(SETS, WAYS)
        sim = LLCSimulator(CAPACITY, WAYS, policy)
        sim.run(make_stream(blocks))
        for rrpvs in policy.rrpvs:
            assert all(0 <= r <= policy.rrpv_max for r in rrpvs)

    @settings(max_examples=25, deadline=None)
    @given(block_lists)
    def test_mdpp_positions_stay_in_range(self, blocks):
        policy = MDPPPolicy(SETS, 16)
        sim = LLCSimulator(SETS * 16 * 64, 16, policy)
        stream = make_stream(blocks)
        sim.run(stream)
        for set_idx in range(SETS):
            for way in range(16):
                assert 0 <= policy.position(set_idx, way) <= 15

    @settings(max_examples=25, deadline=None)
    @given(block_lists)
    def test_lru_stack_is_permutation_of_filled_ways(self, blocks):
        policy = LRUPolicy(SETS, WAYS)
        sim = LLCSimulator(CAPACITY, WAYS, policy)
        sim.run(make_stream(blocks))
        for set_idx in range(SETS):
            stack = policy.stack(set_idx)
            assert len(stack) == len(set(stack))
            resident = {w for w, _ in sim.cache.resident_blocks(set_idx)}
            assert set(stack) == resident


class TestPredictorNumericProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), block_lists)
    def test_random_feature_predictor_bounded(self, seed, blocks):
        features = random_feature_set(random.Random(seed), size=8)
        predictor = MultiperspectivePredictor(features)
        for i, block in enumerate(blocks):
            ctx = AccessContext(
                pc=0x400 + 4 * (block % 8), address=block << 6, block=block,
                offset=8 * (block % 8), is_insert=bool(block % 2),
                is_mru_hit=bool(block % 3 == 0), last_was_miss=bool(block % 7),
            )
            indices = predictor.indices(ctx)
            assert all(
                0 <= idx < feature.table_size
                for idx, feature in zip(indices, features)
            )
            confidence = predictor.predict(indices)
            assert CONFIDENCE_MIN <= confidence <= CONFIDENCE_MAX

    @settings(max_examples=10, deadline=None)
    @given(block_lists)
    def test_mpppb_weights_bounded_after_traffic(self, blocks):
        config = MPPPBConfig(
            features=random_feature_set(random.Random(3), size=8),
            sampler_sets=SETS,
        )
        policy = MPPPBPolicy(SETS, 16, config)
        sim = LLCSimulator(SETS * 16 * 64, 16, policy)
        sim.run(make_stream(blocks))
        for table in policy.predictor.tables:
            assert all(WEIGHT_MIN <= w <= WEIGHT_MAX for w in table.weights)
        for entries in policy.sampler._sets:
            assert len(entries) <= policy.sampler.ways


class TestUniversalPolicyProperties:
    @settings(max_examples=10, deadline=None)
    @given(block_lists, st.sampled_from(
        ["lru", "srrip", "mdpp", "plru", "random", "ship", "sdbp"]))
    def test_any_policy_produces_consistent_stats(self, blocks, name):
        sim = LLCSimulator(CAPACITY, WAYS, make_policy(name, SETS, WAYS))
        result = sim.run(make_stream(blocks))
        stats = result.stats
        assert stats.accesses == len(blocks)
        assert stats.hits + stats.misses == stats.accesses
        assert 0 <= stats.bypasses <= stats.misses
        assert stats.evictions <= stats.misses
