"""Tests for the streaming real-trace ingestion front-end."""

import gzip
import struct

import pytest

from repro.config import TINY
from repro.exec import ConfigError, ParallelRunner, SingleCell, TraceSpec
from repro.exec.artifacts import ingest_scope, stage1_key, trace_key
from repro.exec.cachekey import stable_hash
from repro.graph.planner import plan_cells
from repro.traces.ingest import (
    IngestSpec,
    detect_format,
    open_source,
    resolve_ingest,
    trace_digest,
)
from repro.traces.ingest.readers import CHAMPSIM_RECORD_SIZE

RECORDS = [
    (0x400 + 4 * i, 0x10000 + 64 * (i % 37), i % 3 == 0, i % 5, i % 7 == 0)
    for i in range(300)
]


def _write_text(path, records, gz=False):
    lines = ["# synthetic fixture", ""]
    for pc, addr, write, gap, dep in records:
        lines.append(f"0x{pc:x} 0x{addr:x} {'w' if write else 'r'} "
                     f"{gap} {1 if dep else 0}")
    body = ("\n".join(lines) + "\n").encode()
    path.write_bytes(gzip.compress(body) if gz else body)
    return path


def _write_champsim(path, records):
    with open(path, "wb") as handle:
        for pc, addr, write, gap, dep in records:
            flags = (1 if write else 0) | (2 if dep else 0)
            handle.write(struct.pack("<QQIB3x", pc, addr, gap, flags))
    return path


def _write_csv(path, records):
    lines = ["pc,addr,is_write,gap,dep"]
    for pc, addr, write, gap, dep in records:
        lines.append(f"{pc},0x{addr:x},{1 if write else 0},{gap},"
                     f"{1 if dep else 0}")
    path.write_text("\n".join(lines) + "\n")
    return path


class TestReaders:
    def test_text_roundtrip(self, tmp_path):
        path = _write_text(tmp_path / "t.trace", RECORDS)
        assert list(open_source(str(path), "text").records()) == RECORDS

    def test_text_gzip_roundtrip(self, tmp_path):
        path = _write_text(tmp_path / "t.trace.gz", RECORDS, gz=True)
        assert list(open_source(str(path), "text").records()) == RECORDS

    def test_champsim_roundtrip(self, tmp_path):
        path = _write_champsim(tmp_path / "t.bin", RECORDS)
        assert list(open_source(str(path), "champsim").records()) == RECORDS

    def test_csv_roundtrip(self, tmp_path):
        path = _write_csv(tmp_path / "t.csv", RECORDS)
        assert list(open_source(str(path), "csv").records()) == RECORDS

    def test_formats_agree(self, tmp_path):
        decoded = [
            list(open_source(str(p), fmt).records())
            for p, fmt in (
                (_write_text(tmp_path / "t.trace.gz", RECORDS, gz=True),
                 "text"),
                (_write_champsim(tmp_path / "t.bin", RECORDS), "champsim"),
                (_write_csv(tmp_path / "t.csv", RECORDS), "csv"),
            )
        ]
        assert decoded[0] == decoded[1] == decoded[2] == RECORDS

    def test_text_defaults_gap_and_dep(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0x400 0x1000 r\n")
        assert list(open_source(str(path), "text").records()) == \
            [(0x400, 0x1000, False, 0, False)]

    def test_chunk_size_is_invisible(self, tmp_path):
        path = _write_champsim(tmp_path / "t.bin", RECORDS)
        small = list(open_source(str(path), "champsim", chunk=3).records())
        large = list(open_source(str(path), "champsim", chunk=65536).records())
        assert small == large == RECORDS

    def test_detect_format(self):
        assert detect_format("a/b.trace.gz") == "text"
        assert detect_format("b.champsimtrace") == "champsim"
        assert detect_format("b.bin") == "champsim"
        assert detect_format("c.csv.gz") == "csv"
        with pytest.raises(ConfigError):
            detect_format("mystery.dat")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            open_source(str(tmp_path / "t.bin"), "elf")


class TestCorruptInputs:
    def test_missing_file(self):
        with pytest.raises(ConfigError):
            list(open_source("/nonexistent/t.trace", "text").records())

    def test_short_binary_record(self, tmp_path):
        path = _write_champsim(tmp_path / "t.bin", RECORDS[:10])
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 5])  # torn final record
        with pytest.raises(ConfigError, match="short binary record"):
            list(open_source(str(path), "champsim").records())

    def test_torn_gzip_member(self, tmp_path):
        path = _write_text(tmp_path / "t.trace.gz", RECORDS, gz=True)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ConfigError, match="gzip"):
            list(open_source(str(path), "text").records())

    def test_malformed_text_line_names_lineno(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0x400 0x1000 r 1\nnot a record\n")
        with pytest.raises(ConfigError, match="line 2"):
            list(open_source(str(path), "text").records())

    def test_text_rejects_negative_gap(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0x400 0x1000 r -3\n")
        with pytest.raises(ConfigError, match="negative"):
            list(open_source(str(path), "text").records())

    def test_csv_missing_columns(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigError, match="header"):
            list(open_source(str(path), "csv").records())

    def test_csv_malformed_row(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("pc,addr,is_write\n1,2,maybe\n")
        with pytest.raises(ConfigError, match="line 2"):
            list(open_source(str(path), "csv").records())

    def test_error_is_one_line(self, tmp_path):
        path = _write_champsim(tmp_path / "t.bin", RECORDS[:4])
        path.write_bytes(path.read_bytes()[:-1])
        with pytest.raises(ConfigError) as excinfo:
            list(open_source(str(path), "champsim").records())
        assert "\n" not in str(excinfo.value)


class TestStreaming:
    def test_windowed_decode_never_reads_whole_file(self, tmp_path):
        path = _write_champsim(tmp_path / "big.bin",
                               [(1, 64 * i, False, 0, False)
                                for i in range(50_000)])
        spec = IngestSpec(path=str(path), format="champsim", digest="x" * 64,
                          name="big", accesses=100, chunk=64)
        segments = spec.build()
        assert len(segments[0].trace) == 100
        file_size = path.stat().st_size
        assert file_size == 50_000 * CHAMPSIM_RECORD_SIZE
        # The window is 100 records; file I/O must stop after at most a
        # couple of readahead buffers, never near the 50k-record file.
        source = open_source(str(path), "champsim", chunk=64)
        taken = 0
        for _ in source.records():
            taken += 1
            if taken == 100:
                break
        assert source.bytes_read() <= 2 * (1 << 16)  # readahead-bounded
        assert source.bytes_read() < file_size // 5

    def test_build_reads_chunk_bounded_prefix(self, tmp_path):
        records = [(1, 64 * i, False, 0, False) for i in range(20_000)]
        path = _write_champsim(tmp_path / "big.bin", records)
        spec = IngestSpec(path=str(path), format="champsim", digest="x" * 64,
                          name="big", skip=50, accesses=200, segments=2,
                          chunk=128)
        segments = spec.build()
        assert [len(s.trace) for s in segments] == [200, 200]
        assert segments[0].trace.pcs == [1] * 200
        assert segments[0].trace.addresses[0] == 64 * 50

    def test_too_short_trace_fails_cleanly(self, tmp_path):
        path = _write_champsim(tmp_path / "small.bin", RECORDS[:20])
        spec = IngestSpec(path=str(path), format="champsim", digest="x" * 64,
                          name="small", accesses=100)
        with pytest.raises(ConfigError, match="too short"):
            spec.build()


class TestDigestSidecar:
    def test_digest_persisted_and_reused(self, tmp_path):
        path = _write_text(tmp_path / "t.trace", RECORDS)
        first = trace_digest(str(path))
        sidecar = tmp_path / "t.trace.repro-digest.json"
        assert sidecar.exists()
        # Poison the sidecar hash: a matching (size, mtime) must win.
        poisoned = sidecar.read_text().replace(first, "f" * 64)
        sidecar.write_text(poisoned)
        assert trace_digest(str(path)) == "f" * 64

    def test_modified_file_rehashes(self, tmp_path):
        path = _write_text(tmp_path / "t.trace", RECORDS)
        first = trace_digest(str(path))
        _write_text(path, RECORDS[:10])
        assert trace_digest(str(path)) != first


class TestIngestSpec:
    def test_resolve_infers_format_and_name(self, tmp_path):
        path = _write_text(tmp_path / "leela_s1.trace.gz", RECORDS, gz=True)
        spec = resolve_ingest(str(path), accesses=100)
        assert spec.format == "text"
        assert spec.name == "leela_s1"
        assert len(spec.digest) == 64

    def test_resolve_rejects_reserved_name(self, tmp_path):
        path = _write_text(tmp_path / "mcf.trace", RECORDS)
        with pytest.raises(ConfigError, match="collides"):
            resolve_ingest(str(path), accesses=100, reserved=("mcf",))

    def test_name_must_be_dot_free(self):
        with pytest.raises(ConfigError):
            IngestSpec(path="p", format="text", digest="d", name="a.b")

    def test_weights_validated(self):
        with pytest.raises(ConfigError):
            IngestSpec(path="p", format="text", digest="d", name="w",
                       segments=2, weights=(1.0,))
        spec = IngestSpec(path="p", format="text", digest="d", name="w",
                          segments=2, weights=(3.0, 1.0))
        assert spec.segment_weights() == (3.0, 1.0)

    def test_payload_excludes_path_and_chunk(self, tmp_path):
        a = _write_text(tmp_path / "a.trace", RECORDS)
        spec1 = IngestSpec(path=str(a), format="text", digest="d" * 64,
                           name="a", chunk=512)
        spec2 = IngestSpec(path="/elsewhere/a.trace", format="text",
                           digest="d" * 64, name="a", chunk=65536)
        assert spec1.payload() == spec2.payload()
        assert trace_key(spec1.payload()) == trace_key(spec2.payload())

    def test_segment_names_are_static(self):
        spec = IngestSpec(path="p", format="text", digest="d", name="w",
                          segments=3)
        assert spec.segment_names() == ["w.s0", "w.s1", "w.s2"]


class TestExecIntegration:
    def _cell(self, tmp_path, chunk=65536):
        path = _write_text(tmp_path / "real.trace.gz", RECORDS, gz=True)
        spec = resolve_ingest(str(path), accesses=120, chunk=chunk)
        trace = TraceSpec(spec.name, TINY.hierarchy.llc_bytes, 120,
                          ingest=spec)
        return SingleCell(trace=trace, policy="lru",
                          hierarchy=TINY.hierarchy,
                          warmup_fraction=TINY.warmup_fraction)

    def test_runs_through_engine(self, tmp_path):
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        [result] = engine.run([self._cell(tmp_path)], label="ingest")
        assert result.benchmark == "real"
        assert result.segments[0].instructions > 0

    def test_missing_file_is_structured_failure(self, tmp_path):
        cell = self._cell(tmp_path)
        (tmp_path / "real.trace.gz").unlink()
        from repro.exec import runner as exec_runner
        exec_runner._SEGMENTS.clear()
        exec_runner._RUNNERS.clear()
        engine = ParallelRunner(jobs=1, store=None, verbose=False)
        [result] = engine.run([cell], label="ingest")
        assert result is None
        [failure] = engine.last_report.failures
        assert "cannot open trace file" in failure.message

    def test_graph_planner_prices_ingested_cells(self, tmp_path):
        from repro.graph.costs import CostModel
        from repro.exec.store import ResultStore

        cell = self._cell(tmp_path)
        store = ResultStore(tmp_path / "cache")
        plan = plan_cells([(cell, stable_hash(cell.key_payload()))], store,
                          CostModel())
        kinds = {node.kind for node in plan.graph.nodes.values()}
        assert kinds == {"trace", "stage1", "cell"}
        tkey = trace_key(cell.trace.payload())
        skey = stage1_key(ingest_scope(cell.trace.ingest.payload()),
                          "real.s0", cell.key_payload()["hierarchy"],
                          cell.prefetch)
        assert tkey in plan.graph.nodes
        assert skey in plan.graph.nodes
