"""Unit and property tests for repro.util.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit,
    block_address,
    block_offset,
    extract_bits,
    fold,
    saturate,
    sign_extend,
)


class TestBit:
    def test_low_bit(self):
        assert bit(0b1011, 0) == 1
        assert bit(0b1011, 2) == 0

    def test_high_bit(self):
        assert bit(1 << 63, 63) == 1


class TestExtractBits:
    def test_simple_range(self):
        assert extract_bits(0b11010110, 1, 3) == 0b011

    def test_single_bit_range(self):
        assert extract_bits(0b100, 2, 2) == 1

    def test_reversed_endpoints_normalized(self):
        # The published feature tables contain ranges with begin > end,
        # e.g. pc(9,11,7,16,0); both orders must agree.
        assert extract_bits(0xDEADBEEF, 11, 7) == extract_bits(0xDEADBEEF, 7, 11)

    def test_clamped_to_64_bits(self):
        assert extract_bits(0xFFFF, 0, 200) == 0xFFFF

    def test_negative_lo_clamped(self):
        assert extract_bits(0b101, -3, 2) == 0b101

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_extract_matches_shift_mask(self, value, a, b):
        lo, hi = min(a, b), max(a, b)
        expected = (value >> lo) & ((1 << (hi - lo + 1)) - 1)
        assert extract_bits(value, a, b) == expected


class TestFold:
    def test_identity_when_value_fits(self):
        assert fold(0b101, 8) == 0b101

    def test_folds_high_bits(self):
        # 0x1_00 folded to 8 bits XORs the carry bit back in.
        assert fold(0x100, 8) == 0x1

    def test_width_one(self):
        # Parity of all bits.
        assert fold(0b1011, 1) == 1
        assert fold(0b1111, 1) == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            fold(5, 0)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=16))
    def test_result_in_range(self, value, width):
        assert 0 <= fold(value, width) < (1 << width)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=16))
    def test_deterministic(self, value, width):
        assert fold(value, width) == fold(value, width)


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0b0101, 4) == 5

    def test_negative(self):
        assert sign_extend(0b1111, 4) == -1
        assert sign_extend(0b1000, 4) == -8

    @given(st.integers(min_value=-32, max_value=31))
    def test_roundtrip_six_bit(self, value):
        assert sign_extend(value & 0x3F, 6) == value


class TestSaturate:
    def test_within(self):
        assert saturate(5, -32, 31) == 5

    def test_clamps_low(self):
        assert saturate(-100, -32, 31) == -32

    def test_clamps_high(self):
        assert saturate(100, -32, 31) == 31

    @given(st.integers(), st.integers(min_value=-64, max_value=0),
           st.integers(min_value=1, max_value=64))
    def test_always_in_range(self, value, lo, hi):
        assert lo <= saturate(value, lo, hi) <= hi


class TestBlockAddressing:
    def test_block_address_strips_offset(self):
        assert block_address(0x1234) == 0x1234 >> 6

    def test_block_offset(self):
        assert block_offset(0x1234) == 0x34

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_reconstruction(self, addr):
        assert (block_address(addr) << 6) | block_offset(addr) == addr
