"""Tests for the result-formatting module."""

import pytest

from repro.report import (
    format_table,
    mix_mpki_summary,
    mpki_table,
    speedup_table,
    weighted_speedup_summary,
)
from repro.sim.multi import MixResult
from repro.sim.single import BenchmarkResult, SegmentResult


def bench_result(name, ipc, mpki):
    segment = SegmentResult(
        segment_name=f"{name}.p0", weight=1.0, ipc=ipc, mpki=mpki,
        llc_accesses=100, llc_hits=50, llc_misses=50, llc_bypasses=0,
        demand_misses=50, instructions=1000,
    )
    return BenchmarkResult(benchmark=name, segments=(segment,))


def mix_result(name, ws_ipcs, mpki):
    return MixResult(
        mix_name=name, thread_names=("a", "b", "c", "d"),
        ipcs=tuple(ws_ipcs), single_ipcs=(1.0,) * 4, mpki=mpki,
        llc_misses=10, llc_bypasses=0,
    )


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["x", 1.5], ["long", 2.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_precision(self):
        table = format_table(["v"], [[1.23456]], precision=2)
        assert "1.23" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestSpeedupTable:
    def _results(self):
        return {
            "lru": {"x": bench_result("x", 1.0, 10.0),
                    "y": bench_result("y", 2.0, 5.0)},
            "mpppb": {"x": bench_result("x", 1.2, 8.0),
                      "y": bench_result("y", 2.2, 4.0)},
        }

    def test_contains_speedups_and_geomean(self):
        table = speedup_table(self._results())
        assert "1.200" in table
        assert "1.100" in table
        assert "geomean" in table

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            speedup_table({"mpppb": {}}, baseline="lru")

    def test_ragged_benchmark_sets_rejected(self):
        # Previously a bare KeyError from inside the row loop.
        results = self._results()
        del results["mpppb"]["y"]
        with pytest.raises(ValueError, match="speedup_table.*mpppb"):
            speedup_table(results)


class TestMpkiTable:
    def test_contains_means(self):
        results = {
            "lru": {"x": bench_result("x", 1.0, 10.0),
                    "y": bench_result("y", 1.0, 20.0)},
        }
        table = mpki_table(results)
        assert "15.000" in table  # mean of 10 and 20
        assert "mean" in table

    def test_empty_results_rejected(self):
        # Previously surfaced as StopIteration from next(iter(...)).
        with pytest.raises(ValueError, match="empty results"):
            mpki_table({})

    def test_ragged_benchmark_sets_rejected(self):
        # Previously a bare KeyError from inside the row loop.
        results = {
            "lru": {"x": bench_result("x", 1.0, 10.0),
                    "y": bench_result("y", 1.0, 20.0)},
            "srrip": {"x": bench_result("x", 1.0, 9.0)},
        }
        with pytest.raises(ValueError, match="mpki_table.*srrip"):
            mpki_table(results)


class TestMultiSummaries:
    def test_weighted_speedup_summary(self):
        table = weighted_speedup_summary({"mpppb": [1.1, 0.9, 1.2]})
        assert "mpppb" in table
        assert "1" in table  # below-LRU count column

    def test_mix_mpki_summary(self):
        table = mix_mpki_summary({
            "lru": [mix_result("m0", [1.0] * 4, 12.0),
                    mix_result("m1", [1.0] * 4, 14.0)],
        })
        assert "13.000" in table
